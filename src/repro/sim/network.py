"""Simulated message channels.

A :class:`NetworkChannel` moves messages between nodes under a
:class:`ChannelPolicy`:

* ``latency``/``jitter`` — base delay plus uniform random extra delay;
* ``fifo`` — when true, deliveries between the same endpoints never
  overtake each other (order preservation, the reliable case of the
  "Message Sequence" scenario); when false, jitter may reorder messages;
* ``drop_rate`` — probability a message is silently lost;
* ``failure_detection`` — when delivery reaches a dead node, whether the
  network sends a failure message back to the sender (the availability
  mechanism the "Entity Availability" walkthrough probes: "if the
  architecture provides a mechanism for detecting the availability of the
  entities, then [the sender] will receive an error message", paper §4.2).

All randomness comes from an explicitly seeded generator, so runs are
reproducible.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Optional

from repro.errors import SimulationError
from repro.obs.events import SimMessageFate, current_event_bus
from repro.obs.recorder import current_recorder
from repro.sim.engine import Simulator
from repro.sim.node import Message, Node
from repro.sim.trace import MessageTrace, TraceEventKind


def _emit_message_fate(
    fate: str, element: str, message: Message, detail: str = ""
) -> None:
    """Stream one message fate to the live event bus (free when off)."""
    bus = current_event_bus()
    if bus.enabled:
        bus.emit(
            SimMessageFate(
                fate=fate,
                element=element,
                message=message.name,
                detail=detail,
            )
        )

FAILURE_MESSAGE = "failure"


@dataclass(frozen=True)
class ChannelPolicy:
    """Delivery characteristics of a channel."""

    latency: float = 1.0
    jitter: float = 0.0
    fifo: bool = True
    drop_rate: float = 0.0
    failure_detection: bool = False
    detection_delay: float = 1.0

    def __post_init__(self) -> None:
        if self.latency < 0:
            raise SimulationError("channel latency cannot be negative")
        if self.jitter < 0:
            raise SimulationError("channel jitter cannot be negative")
        if not 0.0 <= self.drop_rate <= 1.0:
            raise SimulationError("drop_rate must be within [0, 1]")
        if self.detection_delay < 0:
            raise SimulationError("detection_delay cannot be negative")


class NetworkChannel:
    """Delivers messages between registered nodes through the simulator."""

    _FIFO_EPSILON = 1e-9

    def __init__(
        self,
        simulator: Simulator,
        trace: MessageTrace,
        policy: Optional[ChannelPolicy] = None,
        seed: int = 0,
    ) -> None:
        self.simulator = simulator
        self.trace = trace
        self.policy = policy or ChannelPolicy()
        self._rng = random.Random(seed)
        self._nodes: dict[str, Node] = {}
        self._last_delivery: dict[tuple[str, str], float] = {}
        self._pair_policies: dict[tuple[str, str], ChannelPolicy] = {}

    # ------------------------------------------------------------------
    # Topology
    # ------------------------------------------------------------------

    def register(self, node: Node) -> Node:
        """Attach a node to the channel; names are unique."""
        if node.name in self._nodes:
            raise SimulationError(f"node {node.name!r} is already registered")
        self._nodes[node.name] = node
        return node

    def node(self, name: str) -> Node:
        """Resolve a registered node by name."""
        try:
            return self._nodes[name]
        except KeyError:
            raise SimulationError(f"no registered node named {name!r}") from None

    @property
    def nodes(self) -> tuple[Node, ...]:
        """All registered nodes."""
        return tuple(self._nodes.values())

    def set_pair_policy(
        self, source: str, destination: str, policy: ChannelPolicy
    ) -> None:
        """Override the channel policy for one directed node pair."""
        self._pair_policies[(source, destination)] = policy

    def _policy_for(self, source: str, destination: str) -> ChannelPolicy:
        return self._pair_policies.get((source, destination), self.policy)

    # ------------------------------------------------------------------
    # Transmission
    # ------------------------------------------------------------------

    def send(self, message: Message, to: Optional[str] = None) -> None:
        """Transmit a message one hop, from its source node to ``to``.

        ``to`` is the *physical* receiver of this hop; when omitted it
        defaults to ``message.destination`` (a direct send). The message's
        ``destination`` field remains the logical addressee, which may lie
        several hops away. Recording and scheduling happen immediately;
        delivery happens at the policy-determined future instant.
        """
        receiver = to or message.destination
        if receiver is None:
            raise SimulationError(f"message {message} has no receiver")
        source = self.node(message.source)
        destination = self.node(receiver)
        policy = self._policy_for(source.name, destination.name)
        source.sent.append(message)
        self.trace.record(
            self.simulator.now, TraceEventKind.SEND, source.name, message
        )
        current_recorder().counter("sim.messages.sent").inc()
        _emit_message_fate("sent", source.name, message)
        if policy.drop_rate and self._rng.random() < policy.drop_rate:
            drop_delay = policy.latency + self._rng.uniform(0.0, policy.jitter)
            self.simulator.schedule(
                drop_delay,
                lambda: self._record_transit_drop(message, destination),
            )
            return
        delay = policy.latency + (
            self._rng.uniform(0.0, policy.jitter) if policy.jitter else 0.0
        )
        arrival = self.simulator.now + delay
        if policy.fifo:
            key = (source.name, destination.name)
            floor = self._last_delivery.get(key)
            if floor is not None and arrival <= floor:
                arrival = floor + self._FIFO_EPSILON
            self._last_delivery[key] = arrival
        self.simulator.schedule_at(
            arrival, lambda: self._deliver(message, destination, policy)
        )

    def _record_transit_drop(self, message: Message, destination: Node) -> None:
        self.trace.record(
            self.simulator.now,
            TraceEventKind.DROP,
            destination.name,
            message,
            detail="lost in transit",
        )
        current_recorder().counter("sim.messages.dropped").inc()
        _emit_message_fate(
            "dropped", destination.name, message, "lost in transit"
        )

    def _deliver(
        self, message: Message, destination: Node, policy: ChannelPolicy
    ) -> None:
        if destination.alive:
            self.trace.record(
                self.simulator.now,
                TraceEventKind.DELIVER,
                destination.name,
                message,
            )
            current_recorder().counter("sim.messages.delivered").inc()
            _emit_message_fate("delivered", destination.name, message)
            destination.deliver(message)
            return
        self.trace.record(
            self.simulator.now,
            TraceEventKind.REJECT,
            destination.name,
            message,
            detail="destination is down",
        )
        current_recorder().counter("sim.messages.rejected").inc()
        _emit_message_fate(
            "rejected", destination.name, message, "destination is down"
        )
        # Never generate failure notices about failure notices (the ICMP
        # rule): error signalling must not feed back into itself.
        is_failure_signal = (
            message.name == FAILURE_MESSAGE or message.kind == "failure-notice"
        )
        if policy.failure_detection and not is_failure_signal:
            self._send_failure_notice(message, destination, policy)

    def _send_failure_notice(
        self, message: Message, destination: Node, policy: ChannelPolicy
    ) -> None:
        sender = self.node(message.source)
        notice = Message(
            name=FAILURE_MESSAGE,
            source="network",
            destination=sender.name,
            kind="notification",
            payload={
                "failed_node": destination.name,
                "original_message": message.name,
                "original_id": message.message_id,
                "origin_node": message.payload.get("origin", message.source),
            },
        )

        def deliver_notice() -> None:
            self.trace.record(
                self.simulator.now,
                TraceEventKind.FAILURE_NOTICE,
                sender.name,
                notice,
                detail=f"{destination.name} unavailable",
            )
            current_recorder().counter("sim.failure_notices").inc()
            _emit_message_fate(
                "failure-notice",
                sender.name,
                notice,
                f"{destination.name} unavailable",
            )
            sender.deliver(notice)

        self.simulator.schedule(policy.detection_delay, deliver_notice)

    # ------------------------------------------------------------------
    # Failure bookkeeping (used by the injector)
    # ------------------------------------------------------------------

    def mark_down(self, name: str) -> None:
        """Shut a node down and record it."""
        node = self.node(name)
        node.shut_down()
        self.trace.record(self.simulator.now, TraceEventKind.NODE_DOWN, name)

    def mark_up(self, name: str) -> None:
        """Restore a node and record it."""
        node = self.node(name)
        node.restore()
        self.trace.record(self.simulator.now, TraceEventKind.NODE_UP, name)
