"""Instantiate an ADL architecture into the simulator.

:class:`ArchitectureRuntime` turns every component and connector of an
:class:`~repro.adl.structure.Architecture` into a simulated
:class:`~repro.sim.node.Node` and routes messages along the architecture's
links, so a scenario really is "executed on the architecture" (the paper's
intended SOSAE mechanism, §8):

* a component *emits* messages through its interfaces; each link attached
  to the emitting interface carries a copy one hop;
* a plain connector forwards an incoming message out of its other links
  (with a visited-set and TTL so cyclic topologies terminate); when the
  message carries an explicit destination and a neighbor is that
  destination, forwarding short-circuits to it;
* under C2 routing (``RuntimeConfig.c2_routing``), a connector forwards
  requests only to elements *above* it and notifications only to elements
  *below*, per the C2 style's message rules;
* a component that is the message's addressee (or that receives an
  unaddressed message) accepts it and, when a statechart is attached,
  fires the statechart with the message name as trigger and performs the
  resulting SEND/REPLY actions;
* per-hop delivery honours node liveness: hops into a dead element are
  rejected, and — when the channel policy enables failure detection — a
  failure notice travels back toward the message's origin.

The runtime is deterministic for a fixed seed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping, Optional

import networkx as nx

from repro.adl.behavior import Action, ActionKind, Statechart, StatechartInstance
from repro.adl.c2 import above_graph
from repro.adl.structure import Architecture
from repro.errors import SimulationError
from repro.obs.recorder import current_recorder
from repro.sim.engine import Simulator
from repro.sim.failures import FailureInjector
from repro.sim.network import (
    FAILURE_MESSAGE,
    ChannelPolicy,
    NetworkChannel,
    _emit_message_fate,
)
from repro.sim.node import Message, Node
from repro.sim.trace import MessageTrace, TraceEventKind


@dataclass(frozen=True)
class RuntimeConfig:
    """Knobs of an architecture runtime instance."""

    policy: ChannelPolicy = field(default_factory=ChannelPolicy)
    c2_routing: bool = False
    ttl: int = 16
    seed: int = 0
    guards: Mapping[str, bool] = field(default_factory=dict)


class ArchitectureRuntime:
    """A simulated, running instance of an architecture."""

    def __init__(
        self,
        architecture: Architecture,
        config: Optional[RuntimeConfig] = None,
    ) -> None:
        architecture.validate()
        self.architecture = architecture
        self.config = config or RuntimeConfig()
        self.simulator = Simulator()
        self.trace = MessageTrace()
        self.channel = NetworkChannel(
            self.simulator,
            self.trace,
            policy=self.config.policy,
            seed=self.config.seed,
        )
        self.injector = FailureInjector(self.simulator, self.channel)
        self._statecharts: dict[str, StatechartInstance] = {}
        self._above: Optional[nx.DiGraph] = (
            above_graph(architecture) if self.config.c2_routing else None
        )
        for component in architecture.components:
            node = Node(component.name, handler=self._component_handler, kind="component")
            self.channel.register(node)
            behavior = architecture.behavior(component.name)
            if isinstance(behavior, Statechart):
                self._statecharts[component.name] = StatechartInstance(behavior)
        for connector in architecture.connectors:
            node = Node(connector.name, handler=self._connector_handler, kind="connector")
            self.channel.register(node)

    # ------------------------------------------------------------------
    # External stimuli
    # ------------------------------------------------------------------

    def inject(
        self,
        source: str,
        message_name: str,
        kind: str = "request",
        destination: Optional[str] = None,
        payload: Optional[Mapping[str, Any]] = None,
        via: Optional[str] = None,
        at: float = 0.0,
    ) -> None:
        """Schedule a component to emit a message at virtual time ``at``.

        ``destination`` addresses a specific component (routed along
        links); ``None`` lets every reachable component accept the message.
        ``via`` restricts emission to one interface of the source.
        """
        component = self.architecture.component(source)  # components emit stimuli
        if destination is not None:
            self.architecture.element(destination)
        if via is not None:
            component.interface(via)
        base_payload = dict(payload or {})

        def emit() -> None:
            message = Message(
                name=message_name,
                source=source,
                destination=destination,
                kind=kind,
                payload={
                    **base_payload,
                    "origin": source,
                    "visited": (source,),
                    "ttl": self.config.ttl,
                },
                sequence=self.channel.node(source).next_sequence(),
                via_interface=via,
            )
            self._emit(source, message, via)

        self.simulator.schedule_at(max(at, self.simulator.now), emit)

    def run(self, until: Optional[float] = None) -> float:
        """Run the simulation; returns the final virtual time."""
        return self.simulator.run(until=until)

    def statechart(self, element: str) -> Optional[StatechartInstance]:
        """The running statechart instance of an element, if any."""
        return self._statecharts.get(element)

    def node(self, name: str) -> Node:
        """The simulated node of an element."""
        return self.channel.node(name)

    # ------------------------------------------------------------------
    # Emission and routing
    # ------------------------------------------------------------------

    def _emit(
        self, element: str, message: Message, via: Optional[str] = None
    ) -> None:
        """Send copies of ``message`` over the element's links (optionally
        restricted to one interface), skipping already-visited neighbors."""
        visited = set(message.payload.get("visited", ()))
        links = self.architecture.links_of(element)
        if via is not None:
            links = tuple(
                link
                for link in links
                if _interface_on(link, element) == via
            )
        sent_any = False
        for link in links:
            neighbor = link.other(element).element
            if neighbor in visited:
                continue
            if not self._hop_allowed(link, element, self._is_reply(message)):
                continue
            hop = message.forwarded(
                source=element,
                destination=message.destination,
                payload={
                    **message.payload,
                    "visited": (*message.payload.get("visited", ()), neighbor),
                },
                via_interface=_interface_on(link, element),
            )
            self.channel.send(hop, to=neighbor)
            sent_any = True
        if not sent_any:
            self.trace.record(
                self.simulator.now,
                TraceEventKind.DROP,
                element,
                message,
                detail="no outgoing link" + (f" on interface {via!r}" if via else ""),
            )
            current_recorder().counter("sim.messages.dropped").inc()
            _emit_message_fate("dropped", element, message, "no outgoing link")

    def _connector_handler(self, node: Node, message: Message) -> None:
        if message.name == FAILURE_MESSAGE and message.source == "network":
            self._route_failure_notice(node, message)
            return
        self._forward_from_connector(node, message)

    def _forward_from_connector(self, node: Node, message: Message) -> None:
        ttl = int(message.payload.get("ttl", self.config.ttl))
        if ttl <= 0:
            self.trace.record(
                self.simulator.now,
                TraceEventKind.DROP,
                node.name,
                message,
                detail="ttl exhausted",
            )
            current_recorder().counter("sim.messages.dropped").inc()
            _emit_message_fate("dropped", node.name, message, "ttl exhausted")
            return
        neighbors = self._forwarding_targets(node.name, message)
        visited = set(message.payload.get("visited", ()))
        if message.destination is not None and message.destination in neighbors:
            neighbors = (message.destination,)
        for neighbor in neighbors:
            if neighbor in visited and neighbor != message.destination:
                continue
            if not self._link_allows(node.name, neighbor, self._is_reply(message)):
                continue
            hop = message.forwarded(
                source=node.name,
                payload={
                    **message.payload,
                    "ttl": ttl - 1,
                    "visited": (*message.payload.get("visited", ()), neighbor),
                },
            )
            self.channel.send(hop, to=neighbor)

    def _forwarding_targets(self, connector: str, message: Message) -> tuple[str, ...]:
        """Which neighbors a connector may forward this message to."""
        visited = set(message.payload.get("visited", ()))
        candidates = [
            neighbor
            for neighbor in self.architecture.neighbors(connector)
            if neighbor != message.source
        ]
        if self._above is not None and message.kind in ("request", "notification"):
            if message.kind == "request":
                allowed = set(self._above.successors(connector))
            else:
                allowed = set(self._above.predecessors(connector))
            candidates = [c for c in candidates if c in allowed]
        return tuple(
            c for c in candidates if c not in visited or c == message.destination
        )

    def _route_failure_notice(self, node: Node, notice: Message) -> None:
        """Carry a network failure notice back toward the origin of the
        failed message, through the regular link topology."""
        origin = notice.payload.get("origin_node")
        if origin is None or origin == node.name:
            return
        carried = notice.forwarded(
            source=node.name,
            destination=origin,
            kind="failure-notice",
            payload={
                **notice.payload,
                "visited": (node.name,),
                "ttl": self.config.ttl,
            },
        )
        self._forward_from_connector(node, carried)

    def _hop_allowed(
        self, link, from_element: str, reply: bool = False
    ) -> bool:
        """Whether a message may traverse ``link`` starting at
        ``from_element``.

        A forward hop requires the source-side interface to initiate and
        the far-side interface to accept. Replies (notifications and
        failure notices) may also traverse links *backwards*: a response
        flows back along the connector its request used, so the reversed
        request direction suffices.
        """
        if link.first.element == from_element:
            source_endpoint, target_endpoint = link.first, link.second
        else:
            source_endpoint, target_endpoint = link.second, link.first
        source = self.architecture.element(source_endpoint.element).interface(
            source_endpoint.interface
        )
        target = self.architecture.element(target_endpoint.element).interface(
            target_endpoint.interface
        )
        forward = source.direction.initiates() and target.direction.accepts()
        if forward:
            return True
        if reply:
            return target.direction.initiates() and source.direction.accepts()
        return False

    def _link_allows(
        self, from_element: str, to_element: str, reply: bool = False
    ) -> bool:
        """Whether any link between the two elements permits a hop in this
        direction."""
        return any(
            self._hop_allowed(link, from_element, reply)
            for link in self.architecture.links_between(from_element, to_element)
        )

    @staticmethod
    def _is_reply(message: Message) -> bool:
        """Whether a message is response-like (may traverse links
        backwards)."""
        return message.kind in ("notification", "failure-notice")

    def _component_handler(self, node: Node, message: Message) -> None:
        if message.destination is not None and message.destination != node.name:
            return  # not the addressee; components do not route
        instance = self._statecharts.get(node.name)
        if instance is None:
            return
        actions = instance.fire(message.name, dict(self.config.guards))
        for action in actions:
            self._perform(node, message, action)

    def _perform(self, node: Node, incoming: Message, action: Action) -> None:
        if action.kind is ActionKind.INTERNAL:
            return
        if action.kind is ActionKind.LOG:
            self.trace.record(
                self.simulator.now,
                TraceEventKind.SEND,
                node.name,
                None,
                detail=f"log: {action.description or action.message}",
            )
            return
        if action.kind is ActionKind.SEND:
            destination = None
            if action.message_kind is not None:
                kind = action.message_kind
            elif action.via == "top":
                # Under C2, the emitting side determines the message kind:
                # out of the top travels up (request), out of the bottom
                # travels down (notification).
                kind = "request"
            elif action.via == "bottom":
                kind = "notification"
            else:
                kind = incoming.kind if incoming.kind != "message" else "request"
        else:  # REPLY: address the origin of the incoming message
            destination = incoming.payload.get("origin", incoming.source)
            if destination == node.name:
                return
            kind = "notification"
        outgoing = Message(
            name=action.message,
            source=node.name,
            destination=destination,
            kind=kind,
            payload={
                "origin": node.name,
                "visited": (node.name,),
                "ttl": self.config.ttl,
                "in_reply_to": incoming.message_id,
            },
            sequence=node.next_sequence(),
            via_interface=action.via,
        )
        self._emit(node.name, outgoing, action.via)


def _interface_on(link, element: str) -> str:
    """The interface name a link uses on the given element."""
    if link.first.element == element:
        return link.first.interface
    return link.second.interface
