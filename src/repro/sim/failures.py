"""Failure injection for simulated architectures.

The availability scenarios of the paper hinge on software failures —
"The Police Department shuts down its Command and Control entity" (§4.2).
:class:`FailureInjector` schedules node shutdowns, crashes (shutdown
without restore), restores, and pairwise partitions against a
:class:`~repro.sim.network.NetworkChannel`.
"""

from __future__ import annotations

from typing import Iterable

from repro.errors import SimulationError
from repro.sim.engine import Simulator
from repro.sim.network import ChannelPolicy, NetworkChannel


class FailureInjector:
    """Schedules failures into a running simulation."""

    def __init__(self, simulator: Simulator, channel: NetworkChannel) -> None:
        self.simulator = simulator
        self.channel = channel
        self._partitioned: set[tuple[str, str]] = set()

    # ------------------------------------------------------------------
    # Node failures
    # ------------------------------------------------------------------

    def shutdown(self, node_name: str, at: float = 0.0) -> None:
        """Shut a node down at virtual time ``at`` (a controlled stop —
        the "shuts down its Command and Control entity" event)."""
        self.channel.node(node_name)  # fail fast on unknown nodes
        self.simulator.schedule_at(
            max(at, self.simulator.now),
            lambda: self.channel.mark_down(node_name),
        )

    def crash(self, node_name: str, at: float = 0.0) -> None:
        """Crash a node at ``at``. Semantically identical to shutdown at
        the structural level; kept distinct for trace readability."""
        self.shutdown(node_name, at)

    def restore(self, node_name: str, at: float) -> None:
        """Bring a node back into service at ``at``."""
        self.channel.node(node_name)
        self.simulator.schedule_at(
            max(at, self.simulator.now),
            lambda: self.channel.mark_up(node_name),
        )

    # ------------------------------------------------------------------
    # Network partitions
    # ------------------------------------------------------------------

    def partition(
        self, group_a: Iterable[str], group_b: Iterable[str], at: float = 0.0
    ) -> None:
        """Drop every message between the two groups from time ``at``
        onward (in both directions) until :meth:`heal` is called."""
        names_a = tuple(group_a)
        names_b = tuple(group_b)
        for name in (*names_a, *names_b):
            self.channel.node(name)
        overlap = set(names_a) & set(names_b)
        if overlap:
            raise SimulationError(
                f"partition groups overlap on {sorted(overlap)}"
            )

        def apply() -> None:
            blackhole = ChannelPolicy(drop_rate=1.0)
            for a in names_a:
                for b in names_b:
                    self.channel.set_pair_policy(a, b, blackhole)
                    self.channel.set_pair_policy(b, a, blackhole)
                    self._partitioned.add((a, b))

        self.simulator.schedule_at(max(at, self.simulator.now), apply)

    def heal(self, at: float) -> None:
        """Remove every active partition at time ``at``."""

        def apply() -> None:
            for a, b in self._partitioned:
                self.channel.set_pair_policy(a, b, self.channel.policy)
                self.channel.set_pair_policy(b, a, self.channel.policy)
            self._partitioned.clear()

        self.simulator.schedule_at(max(at, self.simulator.now), apply)
