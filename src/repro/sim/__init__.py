"""Discrete-event simulation substrate.

The paper evaluates quality-attribute scenarios by "simulating the behavior
of the matched components" (§3.5) and notes that availability and
reliability "can be determined effectively only at run-time" (§4.2). Its
tool for doing so was unimplemented; this package is that substrate: a
deterministic discrete-event simulator with message channels (FIFO,
reordering, lossy), failure injection (shutdown/crash/partition), a message
trace with ordering analysis, and a runtime that instantiates an ADL
architecture into simulated nodes driven by their statecharts.

Public API::

    from repro.sim import (
        Simulator, Message, Node, NetworkChannel, ChannelPolicy,
        FailureInjector, MessageTrace, TraceEventKind,
        ArchitectureRuntime, RuntimeConfig,
    )
"""

from repro.sim.engine import Simulator
from repro.sim.network import ChannelPolicy, NetworkChannel
from repro.sim.node import Message, Node
from repro.sim.failures import FailureInjector
from repro.sim.trace import MessageTrace, TraceEvent, TraceEventKind
from repro.sim.runtime import ArchitectureRuntime, RuntimeConfig
from repro.sim.msc import message_journey, render_msc

__all__ = [
    "ArchitectureRuntime",
    "ChannelPolicy",
    "FailureInjector",
    "Message",
    "MessageTrace",
    "NetworkChannel",
    "Node",
    "RuntimeConfig",
    "Simulator",
    "TraceEvent",
    "TraceEventKind",
    "message_journey",
    "render_msc",
]
