"""Message-sequence-chart rendering of simulation traces.

Dynamic walkthroughs produce a :class:`~repro.sim.trace.MessageTrace`;
reading raw trace lines is tedious when diagnosing why an expectation
failed. :func:`render_msc` draws the trace as a plain-text message
sequence chart: one column per participating node (lifeline), one row per
send/delivery/failure observation, in virtual-time order — the textual
equivalent of the sequence diagrams an architect would sketch.
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro.sim.trace import MessageTrace, TraceEvent, TraceEventKind

_ROW_KINDS = (
    TraceEventKind.SEND,
    TraceEventKind.DELIVER,
    TraceEventKind.REJECT,
    TraceEventKind.DROP,
    TraceEventKind.FAILURE_NOTICE,
    TraceEventKind.NODE_DOWN,
    TraceEventKind.NODE_UP,
)

_KIND_GLYPHS = {
    TraceEventKind.SEND: "o-->",
    TraceEventKind.DELIVER: "-->o",
    TraceEventKind.REJECT: "--x ",
    TraceEventKind.DROP: "~~x ",
    TraceEventKind.FAILURE_NOTICE: "!-> ",
    TraceEventKind.NODE_DOWN: "DOWN",
    TraceEventKind.NODE_UP: "UP  ",
}


def render_msc(
    trace: MessageTrace,
    nodes: Optional[Iterable[str]] = None,
    limit: Optional[int] = None,
) -> str:
    """Render a trace as a plain-text message sequence chart.

    ``nodes`` fixes and orders the lifelines (default: first-appearance
    order); events at other nodes are skipped. ``limit`` caps the number
    of rows.
    """
    events = [event for event in trace if event.kind in _ROW_KINDS]
    if nodes is None:
        ordered: dict[str, None] = {}
        for event in events:
            ordered.setdefault(event.node)
        lifelines = list(ordered)
    else:
        lifelines = list(nodes)
        events = [event for event in events if event.node in lifelines]
    if limit is not None:
        events = events[:limit]
    if not lifelines:
        return "(empty trace)"

    column_width = max(12, max(len(name) for name in lifelines) + 2)
    time_width = 10

    def row(cells: list[str], time_cell: str = "") -> str:
        padded = [cell.center(column_width) for cell in cells]
        return time_cell.ljust(time_width) + "".join(padded)

    lines = [row(lifelines, "time")]
    lines.append(row(["|"] * len(lifelines)))
    for event in events:
        cells = ["|"] * len(lifelines)
        index = lifelines.index(event.node)
        glyph = _KIND_GLYPHS[event.kind]
        label = glyph
        if event.message is not None:
            label = f"{glyph} {event.message.name}"
        cells[index] = label
        lines.append(row(cells, f"t={event.time:g}"))
    if limit is not None and len([e for e in trace if e.kind in _ROW_KINDS]) > limit:
        lines.append(row(["..."] * len(lifelines)))
    return "\n".join(lines)


def message_journey(trace: MessageTrace, message_id: int) -> tuple[TraceEvent, ...]:
    """Every observation of one message (by id) across all forwarding
    hops, in time order — the full story of a single message."""
    return tuple(
        event
        for event in trace
        if event.message is not None and event.message.message_id == message_id
    )
