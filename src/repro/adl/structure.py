"""Structural architecture description (xADL-flavoured).

An :class:`Architecture` contains :class:`Component` and :class:`Connector`
elements. Each element exposes named, directed :class:`Interface`\\ s;
:class:`Link`\\ s join two interfaces and are the only communication paths.
A component may decompose into a nested sub-architecture, in which case the
approach can map event types at the subcomponent level (paper §3.3).

Components carry prose ``responsibilities`` — the paper requires that "the
role of each component must be specified unambiguously to facilitate the
mapping of event types and components."
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field
from enum import Enum
from typing import Iterable, Iterator, Mapping, Optional, Sequence

from repro.errors import ArchitectureError


class Direction(Enum):
    """Data-flow direction of an interface.

    ``IN`` accepts communication, ``OUT`` initiates it, ``INOUT`` does both.
    """

    IN = "in"
    OUT = "out"
    INOUT = "inout"

    def accepts(self) -> bool:
        """Whether communication can flow into this interface."""
        return self in (Direction.IN, Direction.INOUT)

    def initiates(self) -> bool:
        """Whether communication can flow out of this interface."""
        return self in (Direction.OUT, Direction.INOUT)


@dataclass(frozen=True)
class Interface:
    """A named interaction point on a component or connector."""

    name: str
    direction: Direction = Direction.INOUT
    description: str = ""

    def __post_init__(self) -> None:
        if not self.name:
            raise ArchitectureError("an interface must have a non-empty name")


@dataclass
class _Element:
    """Shared shape of components and connectors."""

    name: str
    description: str = ""
    interfaces: dict[str, Interface] = field(default_factory=dict)
    properties: dict[str, str] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.name:
            raise ArchitectureError(
                f"a {type(self).__name__.lower()} must have a non-empty name"
            )

    def add_interface(
        self,
        name: str,
        direction: Direction = Direction.INOUT,
        description: str = "",
    ) -> Interface:
        """Declare an interface on this element; names are unique per
        element."""
        if name in self.interfaces:
            raise ArchitectureError(
                f"{self.name!r} already has an interface {name!r}"
            )
        interface = Interface(name, direction, description)
        self.interfaces[name] = interface
        return interface

    def interface(self, name: str) -> Interface:
        """Resolve an interface by name."""
        try:
            return self.interfaces[name]
        except KeyError:
            raise ArchitectureError(
                f"{self.name!r} has no interface {name!r}"
            ) from None


@dataclass
class Component(_Element):
    """A locus of computation with precisely defined responsibilities.

    ``responsibilities`` is the prose specification of the component's role;
    ``layer`` (a property convention) supports the layered and C2 styles;
    ``subarchitecture`` optionally decomposes the component.
    """

    responsibilities: tuple[str, ...] = ()
    subarchitecture: Optional["Architecture"] = None

    def __post_init__(self) -> None:
        super().__post_init__()
        self.responsibilities = tuple(self.responsibilities)

    @property
    def layer(self) -> Optional[int]:
        """The component's layer number, when the architecture's style uses
        layers; ``None`` otherwise."""
        value = self.properties.get("layer")
        return int(value) if value is not None else None

    @layer.setter
    def layer(self, value: Optional[int]) -> None:
        if value is None:
            self.properties.pop("layer", None)
        else:
            self.properties["layer"] = str(value)


@dataclass
class Connector(_Element):
    """A locus of communication between components (bus, call, network)."""


@dataclass(frozen=True)
class Endpoint:
    """One end of a link: an interface on a named element."""

    element: str
    interface: str

    def __str__(self) -> str:
        return f"{self.element}.{self.interface}"


@dataclass(frozen=True)
class Link:
    """A connection between two interfaces.

    A link is physically bidirectional; the directions of its endpoint
    interfaces determine which way communication may actually flow.
    """

    name: str
    first: Endpoint
    second: Endpoint

    def __post_init__(self) -> None:
        if not self.name:
            raise ArchitectureError("a link must have a non-empty name")
        if self.first == self.second:
            raise ArchitectureError(
                f"link {self.name!r} connects an interface to itself"
            )

    @property
    def endpoints(self) -> tuple[Endpoint, Endpoint]:
        """Both endpoints."""
        return (self.first, self.second)

    def connects(self, element_a: str, element_b: str) -> bool:
        """Whether this link joins the two named elements (in either
        order)."""
        elements = {self.first.element, self.second.element}
        return elements == {element_a, element_b}

    def touches(self, element: str) -> bool:
        """Whether either endpoint is on the named element."""
        return element in (self.first.element, self.second.element)

    def other(self, element: str) -> Endpoint:
        """The endpoint *not* on the named element."""
        if self.first.element == element:
            return self.second
        if self.second.element == element:
            return self.first
        raise ArchitectureError(
            f"link {self.name!r} does not touch element {element!r}"
        )


class Architecture:
    """A structural architecture description.

    Components, connectors, and links are registered through the ``add_*``
    and :meth:`link` methods; :meth:`validate` checks referential and
    directional integrity. ``style`` optionally names the architectural
    style the description claims to follow (checked by
    :func:`repro.adl.styles.check_style`).
    """

    def __init__(
        self, name: str, style: Optional[str] = None, description: str = ""
    ) -> None:
        if not name:
            raise ArchitectureError("an architecture must have a non-empty name")
        self.name = name
        self.style = style
        self.description = description
        self._components: dict[str, Component] = {}
        self._connectors: dict[str, Connector] = {}
        self._links: dict[str, Link] = {}
        self._behaviors: dict[str, "object"] = {}

    # ------------------------------------------------------------------
    # Element management
    # ------------------------------------------------------------------

    def add_component(
        self,
        name: str,
        description: str = "",
        responsibilities: Sequence[str] = (),
        interfaces: Sequence[Interface | str] = (),
        layer: Optional[int] = None,
        subarchitecture: Optional["Architecture"] = None,
    ) -> Component:
        """Create and register a component.

        Interfaces may be given as :class:`Interface` objects or bare names
        (which become ``INOUT`` interfaces).
        """
        self._check_fresh_name(name)
        component = Component(
            name=name,
            description=description,
            responsibilities=tuple(responsibilities),
            subarchitecture=subarchitecture,
        )
        for interface in interfaces:
            if isinstance(interface, Interface):
                component.interfaces[interface.name] = interface
            else:
                component.add_interface(interface)
        if layer is not None:
            component.layer = layer
        self._components[name] = component
        return component

    def add_connector(
        self,
        name: str,
        description: str = "",
        interfaces: Sequence[Interface | str] = (),
    ) -> Connector:
        """Create and register a connector."""
        self._check_fresh_name(name)
        connector = Connector(name=name, description=description)
        for interface in interfaces:
            if isinstance(interface, Interface):
                connector.interfaces[interface.name] = interface
            else:
                connector.add_interface(interface)
        self._connectors[name] = connector
        return connector

    def _check_fresh_name(self, name: str) -> None:
        if name in self._components or name in self._connectors:
            raise ArchitectureError(
                f"architecture {self.name!r} already has an element {name!r}"
            )

    def link(
        self,
        first: str | tuple[str, str],
        second: str | tuple[str, str],
        name: Optional[str] = None,
    ) -> Link:
        """Connect two interfaces.

        Endpoints may be ``(element, interface)`` tuples or ``"element.interface"``
        strings. If the named interface does not exist yet on its element it
        is created as ``INOUT`` — a convenience for connector-heavy models.
        """
        first_endpoint = self._resolve_endpoint(first)
        second_endpoint = self._resolve_endpoint(second)
        link_name = name or f"link-{len(self._links) + 1}"
        if link_name in self._links:
            raise ArchitectureError(
                f"architecture {self.name!r} already has a link {link_name!r}"
            )
        link = Link(link_name, first_endpoint, second_endpoint)
        self._check_link_directions(link)
        self._links[link_name] = link
        return link

    def _resolve_endpoint(self, endpoint: str | tuple[str, str]) -> Endpoint:
        if isinstance(endpoint, tuple):
            element_name, interface_name = endpoint
        else:
            element_name, _, interface_name = endpoint.partition(".")
            if not interface_name:
                raise ArchitectureError(
                    f"endpoint {endpoint!r} must be 'element.interface'"
                )
        element = self.element(element_name)
        if interface_name not in element.interfaces:
            element.add_interface(interface_name)
        return Endpoint(element_name, interface_name)

    def _check_link_directions(self, link: Link) -> None:
        first = self.element(link.first.element).interface(link.first.interface)
        second = self.element(link.second.element).interface(link.second.interface)
        forward = first.direction.initiates() and second.direction.accepts()
        backward = second.direction.initiates() and first.direction.accepts()
        if not (forward or backward):
            raise ArchitectureError(
                f"link {link.name!r} joins incompatible interface directions "
                f"({link.first}:{first.direction.value} <-> "
                f"{link.second}:{second.direction.value})"
            )

    def remove_link(self, name: str) -> Link:
        """Remove a link by name and return it."""
        try:
            return self._links.pop(name)
        except KeyError:
            raise ArchitectureError(
                f"architecture {self.name!r} has no link {name!r}"
            ) from None

    def excise_links_between(self, element_a: str, element_b: str) -> tuple[Link, ...]:
        """Remove every link joining two elements, returning the removed
        links. This is the paper's fault-seeding operation (§4.1: the link
        between "Data Access" and "Loader" was excised)."""
        self.element(element_a)
        self.element(element_b)
        removed = tuple(
            link for link in self._links.values() if link.connects(element_a, element_b)
        )
        for link in removed:
            del self._links[link.name]
        return removed

    # ------------------------------------------------------------------
    # Behavior attachment
    # ------------------------------------------------------------------

    def attach_behavior(self, element_name: str, statechart: "object") -> None:
        """Attach a statechart behavioral description to an element
        (the xADL statechart extension)."""
        self.element(element_name)
        self._behaviors[element_name] = statechart

    def behavior(self, element_name: str) -> Optional["object"]:
        """The statechart attached to an element, if any."""
        return self._behaviors.get(element_name)

    @property
    def behaviors(self) -> Mapping[str, "object"]:
        """All attached statecharts, keyed by element name."""
        return dict(self._behaviors)

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------

    @property
    def components(self) -> tuple[Component, ...]:
        """All components, in registration order."""
        return tuple(self._components.values())

    @property
    def connectors(self) -> tuple[Connector, ...]:
        """All connectors, in registration order."""
        return tuple(self._connectors.values())

    @property
    def links(self) -> tuple[Link, ...]:
        """All links, in registration order."""
        return tuple(self._links.values())

    def component(self, name: str) -> Component:
        """Resolve a component by name."""
        try:
            return self._components[name]
        except KeyError:
            raise ArchitectureError(
                f"architecture {self.name!r} has no component {name!r}"
            ) from None

    def connector(self, name: str) -> Connector:
        """Resolve a connector by name."""
        try:
            return self._connectors[name]
        except KeyError:
            raise ArchitectureError(
                f"architecture {self.name!r} has no connector {name!r}"
            ) from None

    def element(self, name: str) -> Component | Connector:
        """Resolve a component or connector by name."""
        if name in self._components:
            return self._components[name]
        if name in self._connectors:
            return self._connectors[name]
        raise ArchitectureError(
            f"architecture {self.name!r} has no element {name!r}"
        )

    def has_element(self, name: str) -> bool:
        """Whether a component or connector with this name exists."""
        return name in self._components or name in self._connectors

    def is_component(self, name: str) -> bool:
        """Whether the named element is a component."""
        return name in self._components

    def is_connector(self, name: str) -> bool:
        """Whether the named element is a connector."""
        return name in self._connectors

    def links_between(self, element_a: str, element_b: str) -> tuple[Link, ...]:
        """All links joining two elements."""
        return tuple(
            link for link in self._links.values() if link.connects(element_a, element_b)
        )

    def links_of(self, element: str) -> tuple[Link, ...]:
        """All links touching an element."""
        return tuple(link for link in self._links.values() if link.touches(element))

    def neighbors(self, element: str) -> tuple[str, ...]:
        """Names of elements directly linked to ``element``."""
        seen: dict[str, None] = {}
        for link in self.links_of(element):
            seen.setdefault(link.other(element).element)
        return tuple(seen)

    def component_names(self) -> tuple[str, ...]:
        """All component names, in registration order."""
        return tuple(self._components)

    def all_components(self, recursive: bool = False) -> Iterator[Component]:
        """All components; with ``recursive``, includes subarchitecture
        components depth-first."""
        for component in self._components.values():
            yield component
            if recursive and component.subarchitecture is not None:
                yield from component.subarchitecture.all_components(recursive=True)

    # ------------------------------------------------------------------
    # Validation and copying
    # ------------------------------------------------------------------

    def validate(self) -> None:
        """Check referential integrity of the description.

        Every link endpoint must resolve to an existing interface with
        compatible directions; subarchitectures are validated recursively.
        """
        for link in self._links.values():
            for endpoint in link.endpoints:
                element = self.element(endpoint.element)
                element.interface(endpoint.interface)
            self._check_link_directions(link)
        for component in self._components.values():
            if component.subarchitecture is not None:
                component.subarchitecture.validate()

    def clone(self, name: Optional[str] = None) -> "Architecture":
        """A deep copy, optionally renamed — the safe way to derive a
        fault-seeded variant without mutating the original."""
        duplicate = copy.deepcopy(self)
        if name is not None:
            duplicate.name = name
        return duplicate

    def __repr__(self) -> str:
        return (
            f"Architecture({self.name!r}: {len(self._components)} components, "
            f"{len(self._connectors)} connectors, {len(self._links)} links)"
        )
