"""Memoized communication index over an architecture's link graph.

The walkthrough engine (paper §3.5) reduces every scenario step to
connectivity questions over the architecture's link graph. Answering each
question from scratch means rebuilding the NetworkX graph and re-running a
BFS per query — quadratic in graph-construction cost once suites reach
hundreds of scenarios. :class:`CommunicationIndex` builds the undirected
and directed communication graphs **once** per architecture and memoizes

* single-source shortest-path trees (one BFS serves every later ``path``
  and ``can_communicate`` query from that source),
* per-source reachability sets (undirected components / directed
  descendant sets),
* articulation components and global connectivity,
* best inter-event paths between component groups (one multi-source BFS
  instead of pairwise shortest-path calls).

Correctness under mutation is preserved by keying every answer to a
*structural fingerprint* of the architecture — element names, interface
directions, and link endpoints. Each query recomputes the fingerprint
(cheap: one tuple build, no graph objects) and drops every cache the
moment it differs, so mutate-then-requery through the same index stays
correct without any registration protocol on :class:`Architecture`.

``avoiding``/``via`` queries never mutate cached graphs: excised elements
are hidden through :func:`networkx.restricted_view`, a read-only overlay,
and the hop search runs on the view. (The historical implementation called
``remove_nodes_from`` on the graph it searched, which corrupts any shared
graph — see ``tests/test_adl_graph.py::TestCachedGraphImmutability``.)

Constructed with ``memoize=False`` the index keeps no caches and rebuilds
a fresh graph per query — the exact cost profile of the historical
implementation, used as the baseline in
``benchmarks/test_bench_comm_index.py``. Both modes run the same search
code, so their answers are identical tuple-for-tuple.
"""

from __future__ import annotations

import time
from collections import deque
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Iterable, Iterator, Optional, Sequence
from weakref import WeakKeyDictionary

import networkx as nx

from repro.adl.structure import Architecture
from repro.errors import ArchitectureError

__all__ = [
    "CommunicationIndex",
    "IndexStats",
    "build_communication_graph",
    "build_directed_communication_graph",
    "communication_index",
    "reachability_affected_region",
    "structural_fingerprint",
    "structural_seeds",
]


@dataclass(frozen=True)
class IndexStats:
    """A snapshot of one index's cache behavior.

    ``hits``/``misses`` count memoized-answer lookups (graphs, BFS trees,
    reachability sets, best-path results); ``invalidations`` counts
    fingerprint changes that dropped the caches; ``build_seconds`` is the
    cumulative wall time spent constructing communication graphs. An
    unmemoized index records every lookup as a miss.
    """

    hits: int = 0
    misses: int = 0
    invalidations: int = 0
    build_seconds: float = 0.0

    @property
    def hit_rate(self) -> float:
        """Hits over total lookups (0.0 before any lookup)."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def to_dict(self) -> dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "invalidations": self.invalidations,
            "build_seconds": self.build_seconds,
            "hit_rate": self.hit_rate,
        }


def build_communication_graph(architecture: Architecture) -> nx.MultiGraph:
    """The undirected element-level link graph.

    Nodes are element names with a ``kind`` attribute (``"component"`` or
    ``"connector"``); each link contributes one edge keyed by link name.
    """
    graph = nx.MultiGraph()
    for component in architecture.components:
        graph.add_node(component.name, kind="component")
    for connector in architecture.connectors:
        graph.add_node(connector.name, kind="connector")
    for link in architecture.links:
        graph.add_edge(
            link.first.element, link.second.element, key=link.name, link=link
        )
    return graph


def build_directed_communication_graph(
    architecture: Architecture,
) -> nx.MultiDiGraph:
    """The directed element-level graph induced by interface directions.

    For each link, an edge ``a -> b`` is added when ``a``'s endpoint
    interface can initiate and ``b``'s can accept (and symmetrically)."""
    graph = nx.MultiDiGraph()
    for component in architecture.components:
        graph.add_node(component.name, kind="component")
    for connector in architecture.connectors:
        graph.add_node(connector.name, kind="connector")
    for link in architecture.links:
        first = architecture.element(link.first.element).interface(
            link.first.interface
        )
        second = architecture.element(link.second.element).interface(
            link.second.interface
        )
        if first.direction.initiates() and second.direction.accepts():
            graph.add_edge(
                link.first.element, link.second.element, key=link.name, link=link
            )
        if second.direction.initiates() and first.direction.accepts():
            graph.add_edge(
                link.second.element, link.first.element, key=link.name, link=link
            )
    return graph


_SECTION_BREAK = object()


def structural_fingerprint(architecture: Architecture) -> tuple:
    """An opaque value capturing everything the communication graphs
    depend on.

    Two architectures with equal fingerprints induce identical undirected
    *and* directed communication graphs: element names, per-element
    interface names and directions, and link endpoints all participate.
    Descriptions, properties, behaviors, and subarchitectures do not —
    they cannot change connectivity.

    This runs on the warm query path (every unpinned index query
    recomputes it to detect mutation), so it is a flat tuple of interned
    names and :class:`~repro.adl.structure.Direction` members — no nested
    tuples, no enum ``.value`` lookups.
    """
    parts: list = []
    append = parts.append
    for name, component in architecture._components.items():
        append(name)
        for interface_name, interface in component.interfaces.items():
            append(interface_name)
            append(interface.direction)
    append(_SECTION_BREAK)
    for name, connector in architecture._connectors.items():
        append(name)
        for interface_name, interface in connector.interfaces.items():
            append(interface_name)
            append(interface.direction)
    append(_SECTION_BREAK)
    for name, link in architecture._links.items():
        append(name)
        first, second = link.first, link.second
        append(first.element)
        append(first.interface)
        append(second.element)
        append(second.interface)
    return tuple(parts)


class CommunicationIndex:
    """Cached connectivity answers for one architecture.

    All public methods validate staleness against the architecture's
    current :func:`structural_fingerprint` before answering, so the index
    may be held across mutations. Cached graphs are shared state: callers
    receiving one through :meth:`graph` must treat it as read-only.
    """

    def __init__(self, architecture: Architecture, memoize: bool = True) -> None:
        self.architecture = architecture
        self.memoize = memoize
        self._fingerprint: Optional[tuple] = None
        self._graphs: dict[bool, nx.MultiGraph | nx.MultiDiGraph] = {}
        self._trees: dict[tuple[bool, str], dict[str, list[str]]] = {}
        self._reachable: dict[tuple[bool, str], frozenset[str]] = {}
        self._best_paths: dict[tuple, Optional[tuple[str, ...]]] = {}
        self._articulation: Optional[frozenset[str]] = None
        self._connected: Optional[bool] = None
        self._pins: int = 0
        # Cache-behavior accounting (snapshotted by `stats()`); plain int
        # increments so the warm query path stays allocation-free.
        self._hits: int = 0
        self._misses: int = 0
        self._invalidations: int = 0
        self._build_seconds: float = 0.0

    # ------------------------------------------------------------------
    # Cache lifecycle
    # ------------------------------------------------------------------

    def _refresh(self) -> None:
        """Drop every cache if the architecture's structure changed.

        Skipped while pinned: the pin holder vouches that no mutation
        happens for the pin's duration, so one fingerprint at pin entry
        covers every query inside."""
        if not self.memoize or self._pins:
            return
        self._validate_fingerprint()

    def _validate_fingerprint(self) -> None:
        fingerprint = structural_fingerprint(self.architecture)
        if fingerprint != self._fingerprint:
            if self._fingerprint is not None:
                # The first fingerprint is cache population, not a drop.
                self._invalidations += 1
            self._fingerprint = fingerprint
            self._graphs.clear()
            self._trees.clear()
            self._reachable.clear()
            self._best_paths.clear()
            self._articulation = None
            self._connected = None

    @contextmanager
    def pinned(self) -> Iterator["CommunicationIndex"]:
        """Validate the fingerprint once, then answer every query inside
        the ``with`` block without re-checking for mutation.

        The caller promises not to mutate the architecture while the pin
        is held — the natural unit is one scenario walk, during which the
        evaluation never mutates its inputs. Pins nest, and a nested pin
        is covered by the outer holder's promise, so only the outermost
        entry validates; queries made outside any pin always re-validate.
        """
        if self.memoize and not self._pins:
            self._validate_fingerprint()
        self._pins += 1
        try:
            yield self
        finally:
            self._pins -= 1

    def _build_graph(self, directed: bool) -> nx.MultiGraph | nx.MultiDiGraph:
        self._misses += 1
        start = time.perf_counter()
        graph = (
            build_directed_communication_graph(self.architecture)
            if directed
            else build_communication_graph(self.architecture)
        )
        self._build_seconds += time.perf_counter() - start
        return graph

    def _graph(self, directed: bool) -> nx.MultiGraph | nx.MultiDiGraph:
        if not self.memoize:
            return self._build_graph(directed)
        graph = self._graphs.get(directed)
        if graph is None:
            graph = self._build_graph(directed)
            self._graphs[directed] = graph
        else:
            self._hits += 1
        return graph

    def graph(self, respect_directions: bool = False):
        """The (cached) communication graph. **Read-only** — queries with
        ``avoiding`` overlay :func:`networkx.restricted_view` rather than
        mutating it, and callers must do likewise."""
        self._refresh()
        return self._graph(respect_directions)

    def _tree(self, directed: bool, source: str) -> dict[str, list[str]]:
        """Single-source shortest-path tree from ``source`` (forward BFS)."""
        if not self.memoize:
            return nx.single_source_shortest_path(self._graph(directed), source)
        key = (directed, source)
        tree = self._trees.get(key)
        if tree is None:
            tree = nx.single_source_shortest_path(self._graph(directed), source)
            self._trees[key] = tree
        else:
            self._hits += 1
        return tree

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def path(
        self,
        source: str,
        target: str,
        respect_directions: bool = False,
        via: Optional[Iterable[str]] = None,
        avoiding: Optional[Iterable[str]] = None,
    ) -> Optional[tuple[str, ...]]:
        """A shortest element path from ``source`` to ``target``, or
        ``None``. Semantics match
        :func:`repro.adl.graph.communication_path`."""
        self._require_element(source)
        self._require_element(target)
        self._refresh()
        directed = respect_directions
        removed: tuple[str, ...] = ()
        if avoiding:
            removed = tuple(
                name for name in avoiding if name not in (source, target)
            )
        graph = self._graph(directed)
        if removed:
            graph = nx.restricted_view(graph, removed, ())
        waypoints = [source, *(via or ()), target]
        full_path: list[str] = [source]
        for hop_source, hop_target in zip(waypoints, waypoints[1:]):
            if hop_source not in graph or hop_target not in graph:
                return None
            if removed:
                # A restricted view is query-specific; search it directly
                # instead of polluting the tree cache.
                hop = nx.single_source_shortest_path(graph, hop_source).get(
                    hop_target
                )
            else:
                hop = self._tree(directed, hop_source).get(hop_target)
            if hop is None:
                return None
            full_path.extend(hop[1:])
        return tuple(full_path)

    def can_communicate(
        self,
        source: str,
        target: str,
        respect_directions: bool = False,
        via: Optional[Iterable[str]] = None,
        avoiding: Optional[Iterable[str]] = None,
    ) -> bool:
        """Whether a communication path exists from ``source`` to
        ``target``. The unconstrained form answers from the cached
        reachability set without materializing a path."""
        if via or avoiding:
            return (
                self.path(
                    source,
                    target,
                    respect_directions=respect_directions,
                    via=via,
                    avoiding=avoiding,
                )
                is not None
            )
        self._require_element(source)
        self._require_element(target)
        if source == target:
            return True
        self._refresh()
        return target in self._reachable_set(respect_directions, source)

    def reachable(
        self, source: str, respect_directions: bool = False
    ) -> frozenset[str]:
        """Every element reachable from ``source`` (excluding itself)."""
        self._require_element(source)
        self._refresh()
        return self._reachable_set(respect_directions, source)

    def _reachable_set(self, directed: bool, source: str) -> frozenset[str]:
        key = (directed, source)
        if self.memoize:
            cached = self._reachable.get(key)
            if cached is not None:
                self._hits += 1
                return cached
        graph = self._graph(directed)
        if directed:
            reached = frozenset(nx.descendants(graph, source))
        else:
            reached = frozenset(
                nx.node_connected_component(graph, source) - {source}
            )
        if self.memoize:
            self._reachable[key] = reached
        return reached

    def best_path_between(
        self,
        sources: Sequence[str],
        targets: Sequence[str],
        respect_directions: bool = False,
    ) -> Optional[tuple[str, ...]]:
        """A shortest path from any of ``sources`` to any of ``targets``
        — one multi-source BFS instead of ``len(sources) × len(targets)``
        pairwise searches. A name occurring on both sides yields the
        trivial one-element path (first such ``sources`` entry wins,
        matching the historical pairwise scan order). Names absent from
        the architecture are ignored."""
        target_set = set(targets)
        for source in sources:
            if source in target_set:
                return (source,)
        self._refresh()
        key = (tuple(sources), tuple(targets), respect_directions)
        if self.memoize and key in self._best_paths:
            self._hits += 1
            return self._best_paths[key]
        result = self._multi_source_bfs(
            self._graph(respect_directions), sources, target_set
        )
        if self.memoize:
            self._best_paths[key] = result
        return result

    @staticmethod
    def _multi_source_bfs(
        graph, sources: Sequence[str], target_set: set[str]
    ) -> Optional[tuple[str, ...]]:
        parents: dict[str, Optional[str]] = {}
        queue: deque[str] = deque()
        for source in sources:
            if source in graph and source not in parents:
                parents[source] = None
                queue.append(source)
        while queue:
            node = queue.popleft()
            if node in target_set:
                hops: list[str] = []
                walk: Optional[str] = node
                while walk is not None:
                    hops.append(walk)
                    walk = parents[walk]
                return tuple(reversed(hops))
            for neighbor in graph.adj[node]:
                if neighbor not in parents:
                    parents[neighbor] = node
                    queue.append(neighbor)
        return None

    def articulation_components(self) -> frozenset[str]:
        """Components whose removal disconnects the communication graph."""
        self._refresh()
        if self.memoize and self._articulation is not None:
            self._hits += 1
            return self._articulation
        simple = nx.Graph(self._graph(False))
        result = frozenset(
            name
            for name in nx.articulation_points(simple)
            if self.architecture.is_component(name)
        )
        if self.memoize:
            self._articulation = result
        return result

    def is_fully_connected(self) -> bool:
        """Whether every element can (undirectedly) reach every other."""
        self._refresh()
        if self.memoize and self._connected is not None:
            self._hits += 1
            return self._connected
        graph = self._graph(False)
        result = graph.number_of_nodes() <= 1 or nx.is_connected(
            nx.Graph(graph)
        )
        if self.memoize:
            self._connected = result
        return result

    # ------------------------------------------------------------------
    # Statistics
    # ------------------------------------------------------------------

    def stats(self) -> IndexStats:
        """A snapshot of cumulative cache behavior since construction
        (or the last :meth:`reset_stats`)."""
        return IndexStats(
            hits=self._hits,
            misses=self._misses,
            invalidations=self._invalidations,
            build_seconds=self._build_seconds,
        )

    def reset_stats(self) -> None:
        """Zero the statistics (caches are untouched)."""
        self._hits = 0
        self._misses = 0
        self._invalidations = 0
        self._build_seconds = 0.0

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------

    def _require_element(self, name: str) -> None:
        if not self.architecture.has_element(name):
            raise ArchitectureError(
                f"architecture {self.architecture.name!r} has no element "
                f"{name!r}"
            )

    def __repr__(self) -> str:
        return (
            f"CommunicationIndex({self.architecture.name!r}, "
            f"memoize={self.memoize}, "
            f"trees={len(self._trees)}, paths={len(self._best_paths)})"
        )


_INDICES: "WeakKeyDictionary[Architecture, CommunicationIndex]" = (
    WeakKeyDictionary()
)


def structural_seeds(diff) -> frozenset[str]:
    """Element names at which two architecture versions structurally
    differ — the seeds of any connectivity change.

    Takes an :class:`~repro.adl.diff.ArchitectureDiff` and returns every
    added/removed element, every endpoint of an added/removed link, and
    every element whose interfaces changed (a direction flip rewires the
    directed graph without touching any link). Description, property, and
    responsibility changes are excluded: they cannot alter either
    communication graph (see :func:`structural_fingerprint`).
    """
    seeds: set[str] = set()
    seeds.update(diff.added_components)
    seeds.update(diff.removed_components)
    seeds.update(diff.added_connectors)
    seeds.update(diff.removed_connectors)
    for first, second in (*diff.added_links, *diff.removed_links):
        seeds.add(first.split(".", 1)[0])
        seeds.add(second.split(".", 1)[0])
    seeds.update(
        change.element
        for change in diff.changed_elements
        if change.attribute == "interfaces"
    )
    return frozenset(seeds)


def reachability_affected_region(
    old: Architecture, new: Architecture, diff
) -> frozenset[str]:
    """Every element whose connectivity answers *may* differ between the
    two versions, in time proportional to the affected region — the
    diff-aware replacement for comparing every component's reachability
    set across two full indexes.

    The two graphs differ only at :func:`structural_seeds` elements, and
    any connectivity answer (directed or undirected) that flips must
    traverse a changed edge, so the answering element is undirectedly
    connected to a seed in the old or the new graph. The union of the
    seed-containing connected components of both graphs is therefore a
    sound over-approximation; elements outside it provably keep every
    reachability set, shortest path, and ``can_communicate`` answer.
    """
    seeds = structural_seeds(diff)
    if not seeds:
        return frozenset()
    region: set[str] = set(seeds)
    for architecture in (old, new):
        graph = communication_index(architecture).graph(False)
        frontier = deque(seed for seed in seeds if seed in graph)
        seen: set[str] = set(frontier)
        while frontier:
            node = frontier.popleft()
            for neighbor in graph.adj[node]:
                if neighbor not in seen:
                    seen.add(neighbor)
                    frontier.append(neighbor)
        region |= seen
    return frozenset(region)


def communication_index(architecture: Architecture) -> CommunicationIndex:
    """The shared per-architecture index.

    Keyed weakly by the architecture object, so the cache neither leaks
    discarded architectures nor conflates distinct objects with equal
    names (e.g. an original and its fault-seeded clone). Every consumer
    resolving through here — the ``graph.py`` module API, the walkthrough
    engine, constraints, incremental re-evaluation — shares one warm
    index per architecture object.
    """
    index = _INDICES.get(architecture)
    if index is None:
        index = CommunicationIndex(architecture)
        _INDICES[architecture] = index
    return index
