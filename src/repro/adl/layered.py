"""The Layered architectural style (used by PIMS).

PIMS (paper §4.1) is "designed using the Layered Architectural Style": a
presentation layer ("Master Controller") above a business-logic layer,
above a data-access layer, above the data repository. The style's rules:

* ``layers-assigned`` — every component declares a ``layer`` number
  (higher = closer to the user).
* ``adjacent-layers-only`` — communication only occurs within a layer or
  between adjacent layers; a link (or a connector bridging components)
  joining components whose layers differ by more than one is a violation.
* ``no-layer-skipping-connectors`` — a connector may not span components
  more than one layer apart.

Connectors take the layer context of the components they attach to.
"""

from __future__ import annotations

from itertools import combinations

from repro.adl.structure import Architecture
from repro.adl.styles import Style, StyleViolation, register_style


class LayeredStyle(Style):
    """Conformance rules for layered architectures."""

    name = "layered"
    description = "Strict layering: communication within or between adjacent layers only."

    def _register_rules(self) -> None:
        self.rule("layers-assigned", self._check_layers_assigned)
        self.rule("adjacent-layers-only", self._check_adjacent_layers)
        self.rule("no-layer-skipping-connectors", self._check_connector_span)

    def _check_layers_assigned(
        self, architecture: Architecture
    ) -> list[StyleViolation]:
        return [
            self.violation(
                "layers-assigned",
                f"component {component.name!r} has no layer assignment",
                component.name,
            )
            for component in architecture.components
            if component.layer is None
        ]

    def _check_adjacent_layers(
        self, architecture: Architecture
    ) -> list[StyleViolation]:
        violations = []
        for link in architecture.links:
            first = link.first.element
            second = link.second.element
            if not (
                architecture.is_component(first)
                and architecture.is_component(second)
            ):
                continue
            first_layer = architecture.component(first).layer
            second_layer = architecture.component(second).layer
            if first_layer is None or second_layer is None:
                continue  # reported by layers-assigned
            if abs(first_layer - second_layer) > 1:
                violations.append(
                    self.violation(
                        "adjacent-layers-only",
                        f"link {link.name!r} joins layer {first_layer} to "
                        f"layer {second_layer}",
                        first,
                        second,
                    )
                )
        return violations

    def _check_connector_span(
        self, architecture: Architecture
    ) -> list[StyleViolation]:
        violations = []
        for connector in architecture.connectors:
            attached_layers = {}
            for neighbor in architecture.neighbors(connector.name):
                if architecture.is_component(neighbor):
                    layer = architecture.component(neighbor).layer
                    if layer is not None:
                        attached_layers[neighbor] = layer
            for (name_a, layer_a), (name_b, layer_b) in combinations(
                attached_layers.items(), 2
            ):
                if abs(layer_a - layer_b) > 1:
                    violations.append(
                        self.violation(
                            "no-layer-skipping-connectors",
                            f"connector {connector.name!r} bridges layer "
                            f"{layer_a} ({name_a!r}) and layer {layer_b} "
                            f"({name_b!r})",
                            connector.name,
                            name_a,
                            name_b,
                        )
                    )
        return violations


LAYERED_STYLE = register_style(LayeredStyle())
