"""Architecture description: structure, behavior, styles, and I/O.

This package reproduces the slice of xADL (Dashofy et al. 2001) plus the
statechart behavioral extension (Naslavsky et al. 2004) that the paper's
approach consumes, and adds the Acme interchange format the paper names as
future work. The approach itself is ADL-agnostic; it requires components
with precisely defined responsibilities and services provided through
interfaces, links constraining communication, and optional behavioral
specifications.

Public API::

    from repro.adl import (
        Architecture, Component, Connector, Interface, Direction, Link,
        Statechart, State, Transition, Action, ActionKind,
        LayeredStyle, C2Style, check_style,
        parse_xadl, to_xadl_xml, parse_acme, to_acme,
        can_communicate, communication_path, diff_architectures,
    )
"""

from repro.adl.structure import (
    Architecture,
    Component,
    Connector,
    Direction,
    Interface,
    Link,
)
from repro.adl.behavior import (
    Action,
    ActionKind,
    State,
    Statechart,
    StatechartInstance,
    Transition,
)
from repro.adl.graph import (
    articulation_components,
    can_communicate,
    communication_graph,
    communication_path,
    directed_communication_graph,
    is_fully_connected,
    reachable_elements,
)
from repro.adl.index import (
    CommunicationIndex,
    communication_index,
    structural_fingerprint,
)
from repro.adl.styles import Style, StyleViolation, check_style, register_style
from repro.adl.layered import LayeredStyle
from repro.adl.c2 import C2Style, MessageKind
from repro.adl.xadl import parse_xadl, to_xadl_xml
from repro.adl.acme import parse_acme, to_acme
from repro.adl.diff import ArchitectureDiff, diff_architectures
from repro.adl.dot import architecture_to_dot, mapping_to_dot
from repro.adl.types import (
    ComponentType,
    ConformanceViolation,
    ConnectorType,
    Signature,
    TypeRegistry,
)

__all__ = [
    "Action",
    "ActionKind",
    "Architecture",
    "ArchitectureDiff",
    "C2Style",
    "CommunicationIndex",
    "Component",
    "ComponentType",
    "ConformanceViolation",
    "Connector",
    "ConnectorType",
    "Signature",
    "TypeRegistry",
    "Direction",
    "Interface",
    "LayeredStyle",
    "Link",
    "MessageKind",
    "State",
    "Statechart",
    "StatechartInstance",
    "Style",
    "StyleViolation",
    "Transition",
    "architecture_to_dot",
    "articulation_components",
    "can_communicate",
    "mapping_to_dot",
    "check_style",
    "communication_graph",
    "communication_index",
    "communication_path",
    "structural_fingerprint",
    "diff_architectures",
    "directed_communication_graph",
    "is_fully_connected",
    "parse_acme",
    "parse_xadl",
    "reachable_elements",
    "register_style",
    "to_acme",
    "to_xadl_xml",
]
