"""Architectural styles and style-conformance checking.

A :class:`Style` bundles named structural rules; checking an architecture
against its declared style yields :class:`StyleViolation`\\ s. The paper's
two case studies use the Layered style (PIMS) and the C2 style (CRASH);
both are implemented as :class:`Style` subclasses and registered here so
``check_style(architecture)`` resolves the style by the architecture's
``style`` attribute.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from repro.adl.structure import Architecture
from repro.errors import ArchitectureError, StyleViolationError


@dataclass(frozen=True)
class StyleViolation:
    """One breach of a style rule by an architecture."""

    style: str
    rule: str
    message: str
    elements: tuple[str, ...] = ()

    def __str__(self) -> str:
        where = f" [{', '.join(self.elements)}]" if self.elements else ""
        return f"{self.style}/{self.rule}: {self.message}{where}"


class Style:
    """Base class for architectural styles.

    Subclasses register rule methods with :meth:`rule`; :meth:`check`
    runs every rule and collects violations.
    """

    name = "style"
    description = ""

    def __init__(self) -> None:
        self._rules: dict[str, Callable[[Architecture], list[StyleViolation]]] = {}
        self._register_rules()

    def _register_rules(self) -> None:
        """Subclasses override to call :meth:`rule` for each rule."""

    def rule(
        self,
        name: str,
        check: Callable[[Architecture], list[StyleViolation]],
    ) -> None:
        """Register a named rule."""
        if name in self._rules:
            raise ArchitectureError(
                f"style {self.name!r} already has a rule {name!r}"
            )
        self._rules[name] = check

    @property
    def rule_names(self) -> tuple[str, ...]:
        """All registered rule names."""
        return tuple(self._rules)

    def check(self, architecture: Architecture) -> list[StyleViolation]:
        """Run every rule; return all violations found."""
        violations: list[StyleViolation] = []
        for check in self._rules.values():
            violations.extend(check(architecture))
        return violations

    def violation(
        self, rule: str, message: str, *elements: str
    ) -> StyleViolation:
        """Construct a violation attributed to this style."""
        return StyleViolation(self.name, rule, message, tuple(elements))

    def assert_conforms(self, architecture: Architecture) -> None:
        """Raise :class:`StyleViolationError` on the first rule breach."""
        violations = self.check(architecture)
        if violations:
            summary = "\n".join(str(violation) for violation in violations)
            raise StyleViolationError(
                f"architecture {architecture.name!r} violates style "
                f"{self.name!r}:\n{summary}"
            )


_REGISTRY: dict[str, Style] = {}


def register_style(style: Style) -> Style:
    """Register a style instance under its name (idempotent for the same
    instance; conflicting re-registration raises)."""
    existing = _REGISTRY.get(style.name)
    if existing is not None and existing is not style:
        raise ArchitectureError(f"style {style.name!r} is already registered")
    _REGISTRY[style.name] = style
    return style


def get_style(name: str) -> Style:
    """Resolve a registered style by name."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ArchitectureError(f"no registered style named {name!r}") from None


def registered_styles() -> tuple[str, ...]:
    """Names of all registered styles."""
    return tuple(_REGISTRY)


def check_style(architecture: Architecture) -> list[StyleViolation]:
    """Check an architecture against its declared style.

    An architecture with no declared style trivially conforms (returns no
    violations).
    """
    if architecture.style is None:
        return []
    return get_style(architecture.style).check(architecture)
