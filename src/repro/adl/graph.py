"""Graph analyses over architecture structure.

The walkthrough engine reduces "can these two components interact as the
scenario requires?" to connectivity questions over the link graph. Two
views are provided:

* the *undirected* communication graph — elements are nodes, links are
  edges; used for "is there any path at all";
* the *directed* communication graph — an edge ``a -> b`` exists when a
  link joins an initiating interface on ``a`` to an accepting interface on
  ``b``; used when interface directions matter.

Paths run through connectors; component-to-component queries report the
full element path including intervening connectors.
"""

from __future__ import annotations

from typing import Iterable, Optional

import networkx as nx

from repro.adl.structure import Architecture
from repro.errors import ArchitectureError


def communication_graph(architecture: Architecture) -> nx.MultiGraph:
    """The undirected element-level link graph.

    Nodes are element names with a ``kind`` attribute (``"component"`` or
    ``"connector"``); each link contributes one edge keyed by link name.
    """
    graph = nx.MultiGraph()
    for component in architecture.components:
        graph.add_node(component.name, kind="component")
    for connector in architecture.connectors:
        graph.add_node(connector.name, kind="connector")
    for link in architecture.links:
        graph.add_edge(
            link.first.element, link.second.element, key=link.name, link=link
        )
    return graph


def directed_communication_graph(architecture: Architecture) -> nx.MultiDiGraph:
    """The directed element-level graph induced by interface directions.

    For each link, an edge ``a -> b`` is added when ``a``'s endpoint
    interface can initiate and ``b``'s can accept (and symmetrically)."""
    graph = nx.MultiDiGraph()
    for component in architecture.components:
        graph.add_node(component.name, kind="component")
    for connector in architecture.connectors:
        graph.add_node(connector.name, kind="connector")
    for link in architecture.links:
        first = architecture.element(link.first.element).interface(
            link.first.interface
        )
        second = architecture.element(link.second.element).interface(
            link.second.interface
        )
        if first.direction.initiates() and second.direction.accepts():
            graph.add_edge(
                link.first.element, link.second.element, key=link.name, link=link
            )
        if second.direction.initiates() and first.direction.accepts():
            graph.add_edge(
                link.second.element, link.first.element, key=link.name, link=link
            )
    return graph


def can_communicate(
    architecture: Architecture,
    source: str,
    target: str,
    respect_directions: bool = False,
    via: Optional[Iterable[str]] = None,
    avoiding: Optional[Iterable[str]] = None,
) -> bool:
    """Whether a communication path exists from ``source`` to ``target``.

    ``via`` restricts to paths passing through all the named elements;
    ``avoiding`` removes the named elements from the graph first (used to
    model failed or excised elements). An element trivially communicates
    with itself.
    """
    return (
        communication_path(
            architecture,
            source,
            target,
            respect_directions=respect_directions,
            via=via,
            avoiding=avoiding,
        )
        is not None
    )


def communication_path(
    architecture: Architecture,
    source: str,
    target: str,
    respect_directions: bool = False,
    via: Optional[Iterable[str]] = None,
    avoiding: Optional[Iterable[str]] = None,
) -> Optional[tuple[str, ...]]:
    """A shortest element path from ``source`` to ``target``, or ``None``.

    The path includes intervening connectors. With ``via``, the path is a
    concatenation of shortest hops visiting the waypoints in order.
    """
    if not architecture.has_element(source):
        raise ArchitectureError(
            f"architecture {architecture.name!r} has no element {source!r}"
        )
    if not architecture.has_element(target):
        raise ArchitectureError(
            f"architecture {architecture.name!r} has no element {target!r}"
        )
    graph: nx.Graph = (
        directed_communication_graph(architecture)
        if respect_directions
        else communication_graph(architecture)
    )
    if avoiding:
        removable = [name for name in avoiding if name not in (source, target)]
        graph.remove_nodes_from(removable)
        if source not in graph or target not in graph:
            return None
    waypoints = [source, *(via or ()), target]
    full_path: list[str] = [source]
    for hop_source, hop_target in zip(waypoints, waypoints[1:]):
        if hop_source not in graph or hop_target not in graph:
            return None
        try:
            hop = nx.shortest_path(graph, hop_source, hop_target)
        except nx.NetworkXNoPath:
            return None
        full_path.extend(hop[1:])
    return tuple(full_path)


def reachable_elements(
    architecture: Architecture,
    source: str,
    respect_directions: bool = False,
) -> frozenset[str]:
    """Every element reachable from ``source`` (excluding itself)."""
    graph: nx.Graph = (
        directed_communication_graph(architecture)
        if respect_directions
        else communication_graph(architecture)
    )
    if source not in graph:
        raise ArchitectureError(
            f"architecture {architecture.name!r} has no element {source!r}"
        )
    if respect_directions:
        reached = nx.descendants(graph, source)
    else:
        reached = set(nx.node_connected_component(graph, source)) - {source}
    return frozenset(reached)


def is_fully_connected(architecture: Architecture) -> bool:
    """Whether every element can (undirectedly) reach every other.

    A disconnected architecture usually indicates a modeling error or a
    deliberately excised link.
    """
    graph = communication_graph(architecture)
    if graph.number_of_nodes() <= 1:
        return True
    return nx.is_connected(nx.Graph(graph))


def articulation_components(architecture: Architecture) -> frozenset[str]:
    """Components whose removal disconnects the communication graph.

    These are single points of failure at the structural level — relevant
    to availability analyses like CRASH's Entity Availability scenario.
    """
    graph = nx.Graph(communication_graph(architecture))
    return frozenset(
        name
        for name in nx.articulation_points(graph)
        if architecture.is_component(name)
    )
