"""Graph analyses over architecture structure.

The walkthrough engine reduces "can these two components interact as the
scenario requires?" to connectivity questions over the link graph. Two
views are provided:

* the *undirected* communication graph — elements are nodes, links are
  edges; used for "is there any path at all";
* the *directed* communication graph — an edge ``a -> b`` exists when a
  link joins an initiating interface on ``a`` to an accepting interface on
  ``b``; used when interface directions matter.

Paths run through connectors; component-to-component queries report the
full element path including intervening connectors.

Every query function here delegates to a per-architecture
:class:`~repro.adl.index.CommunicationIndex`, shared through a weak
per-object cache — repeated queries against the same architecture reuse
one graph build and memoized BFS trees instead of rebuilding from scratch.
The index invalidates itself on structural mutation, so the public
contract is unchanged: answers always reflect the architecture's current
structure. Queries never mutate any graph (``avoiding`` is modeled with
:func:`networkx.restricted_view`, not node removal).
"""

from __future__ import annotations

from typing import Iterable, Optional

import networkx as nx

from repro.adl.index import (
    build_communication_graph,
    build_directed_communication_graph,
    communication_index,
)
from repro.adl.structure import Architecture


def communication_graph(architecture: Architecture) -> nx.MultiGraph:
    """The undirected element-level link graph.

    Nodes are element names with a ``kind`` attribute (``"component"`` or
    ``"connector"``); each link contributes one edge keyed by link name.
    Returns a fresh graph the caller owns (and may freely mutate); the
    cached graphs used by the query functions live inside the index.
    """
    return build_communication_graph(architecture)


def directed_communication_graph(architecture: Architecture) -> nx.MultiDiGraph:
    """The directed element-level graph induced by interface directions.

    For each link, an edge ``a -> b`` is added when ``a``'s endpoint
    interface can initiate and ``b``'s can accept (and symmetrically).
    Returns a fresh graph the caller owns."""
    return build_directed_communication_graph(architecture)


def can_communicate(
    architecture: Architecture,
    source: str,
    target: str,
    respect_directions: bool = False,
    via: Optional[Iterable[str]] = None,
    avoiding: Optional[Iterable[str]] = None,
) -> bool:
    """Whether a communication path exists from ``source`` to ``target``.

    ``via`` restricts to paths passing through all the named elements;
    ``avoiding`` hides the named elements from the graph first (used to
    model failed or excised elements). An element trivially communicates
    with itself.
    """
    return communication_index(architecture).can_communicate(
        source,
        target,
        respect_directions=respect_directions,
        via=via,
        avoiding=avoiding,
    )


def communication_path(
    architecture: Architecture,
    source: str,
    target: str,
    respect_directions: bool = False,
    via: Optional[Iterable[str]] = None,
    avoiding: Optional[Iterable[str]] = None,
) -> Optional[tuple[str, ...]]:
    """A shortest element path from ``source`` to ``target``, or ``None``.

    The path includes intervening connectors. With ``via``, the path is a
    concatenation of shortest hops visiting the waypoints in order.
    ``avoiding`` names equal to the endpoints are ignored.
    """
    return communication_index(architecture).path(
        source,
        target,
        respect_directions=respect_directions,
        via=via,
        avoiding=avoiding,
    )


def reachable_elements(
    architecture: Architecture,
    source: str,
    respect_directions: bool = False,
) -> frozenset[str]:
    """Every element reachable from ``source`` (excluding itself)."""
    return communication_index(architecture).reachable(
        source, respect_directions=respect_directions
    )


def is_fully_connected(architecture: Architecture) -> bool:
    """Whether every element can (undirectedly) reach every other.

    A disconnected architecture usually indicates a modeling error or a
    deliberately excised link.
    """
    return communication_index(architecture).is_fully_connected()


def articulation_components(architecture: Architecture) -> frozenset[str]:
    """Components whose removal disconnects the communication graph.

    These are single points of failure at the structural level — relevant
    to availability analyses like CRASH's Entity Availability scenario.
    """
    return communication_index(architecture).articulation_components()
