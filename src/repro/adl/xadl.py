"""xADL-flavoured XML serialization and parsing of architectures.

The dialect follows xADL 2.0's structure-and-types vocabulary in spirit
(components, connectors, interfaces, links with two endpoints,
sub-architectures) with the statechart behavioral extension serialized
inline::

    <xArch name="pims" style="layered">
      <component id="master-controller" layer="4">
        <description>Presentation layer</description>
        <responsibility>Interact with the user</responsibility>
        <interface id="calls" direction="out"/>
        <statechart initial="idle">
          <state id="idle" initial="true"/>
          <transition from="idle" to="idle" trigger="request">
            <action kind="send" message="response" via="calls"/>
          </transition>
        </statechart>
      </component>
      <connector id="mc-bl"><interface id="a"/></connector>
      <link id="l1">
        <point element="master-controller" interface="calls"/>
        <point element="mc-bl" interface="a"/>
      </link>
    </xArch>

:func:`to_xadl_xml` and :func:`parse_xadl` are inverses up to formatting.
"""

from __future__ import annotations

import xml.etree.ElementTree as ET
from typing import Optional

from repro.adl.behavior import Action, ActionKind, Statechart
from repro.adl.structure import (
    Architecture,
    Component,
    Connector,
    Direction,
    Interface,
)
from repro.errors import SerializationError

_ACTION_BY_VALUE = {kind.value: kind for kind in ActionKind}
_DIRECTION_BY_VALUE = {direction.value: direction for direction in Direction}


# ----------------------------------------------------------------------
# Serialization
# ----------------------------------------------------------------------

def to_xadl_xml(architecture: Architecture) -> str:
    """Serialize an architecture (structure + behavior) to xADL XML."""
    root = _architecture_element(architecture)
    ET.indent(root)
    return ET.tostring(root, encoding="unicode", xml_declaration=False)


def _architecture_element(architecture: Architecture) -> ET.Element:
    attrs = {"name": architecture.name}
    if architecture.style:
        attrs["style"] = architecture.style
    root = ET.Element("xArch", attrs)
    if architecture.description:
        description = ET.SubElement(root, "description")
        description.text = architecture.description
    for component in architecture.components:
        root.append(_component_element(component, architecture))
    for connector in architecture.connectors:
        root.append(_connector_element(connector, architecture))
    for link in architecture.links:
        element = ET.SubElement(root, "link", {"id": link.name})
        for endpoint in link.endpoints:
            ET.SubElement(
                element,
                "point",
                {"element": endpoint.element, "interface": endpoint.interface},
            )
    return root


def _component_element(
    component: Component, architecture: Architecture
) -> ET.Element:
    element = ET.Element("component", {"id": component.name})
    _write_element_common(element, component, architecture)
    for responsibility in component.responsibilities:
        child = ET.SubElement(element, "responsibility")
        child.text = responsibility
    if component.subarchitecture is not None:
        wrapper = ET.SubElement(element, "subArchitecture")
        wrapper.append(_architecture_element(component.subarchitecture))
    return element


def _connector_element(
    connector: Connector, architecture: Architecture
) -> ET.Element:
    element = ET.Element("connector", {"id": connector.name})
    _write_element_common(element, connector, architecture)
    return element


def _write_element_common(
    element: ET.Element,
    model: Component | Connector,
    architecture: Architecture,
) -> None:
    for key, value in model.properties.items():
        if key in _RESERVED_ATTRS:
            raise SerializationError(
                f"element {model.name!r} has a property named {key!r}, "
                "which collides with a reserved xADL attribute"
            )
        element.set(key, value)
    if model.description:
        description = ET.SubElement(element, "description")
        description.text = model.description
    for interface in model.interfaces.values():
        attrs = {"id": interface.name, "direction": interface.direction.value}
        if interface.description:
            attrs["description"] = interface.description
        ET.SubElement(element, "interface", attrs)
    behavior = architecture.behavior(model.name)
    if isinstance(behavior, Statechart):
        element.append(_statechart_element(behavior))


def _statechart_element(chart: Statechart) -> ET.Element:
    element = ET.Element("statechart", {"name": chart.name})
    if chart.description:
        element.set("description", chart.description)
    for state in chart.states:
        attrs = {"id": state.name}
        if state.initial:
            attrs["initial"] = "true"
        if state.parent:
            attrs["parent"] = state.parent
        if state.description:
            attrs["description"] = state.description
        state_element = ET.SubElement(element, "state", attrs)
        for wrapper_tag, actions in (
            ("entry", state.entry_actions),
            ("exit", state.exit_actions),
        ):
            if actions:
                wrapper = ET.SubElement(state_element, wrapper_tag)
                for action in actions:
                    _write_action(wrapper, action)
    for transition in chart.transitions:
        attrs = {
            "from": transition.source,
            "to": transition.target,
            "trigger": transition.trigger,
        }
        if transition.guard:
            attrs["guard"] = transition.guard
        child = ET.SubElement(element, "transition", attrs)
        for action in transition.actions:
            _write_action(child, action)
    return element


def _write_action(parent: ET.Element, action: Action) -> None:
    action_attrs = {"kind": action.kind.value}
    if action.message:
        action_attrs["message"] = action.message
    if action.via:
        action_attrs["via"] = action.via
    if action.message_kind:
        action_attrs["messageKind"] = action.message_kind
    if action.description:
        action_attrs["description"] = action.description
    ET.SubElement(parent, "action", action_attrs)


# ----------------------------------------------------------------------
# Parsing
# ----------------------------------------------------------------------

def parse_xadl(document: str) -> Architecture:
    """Parse xADL XML into an :class:`Architecture`."""
    try:
        root = ET.fromstring(document)
    except ET.ParseError as error:
        raise SerializationError(f"malformed xADL XML: {error}") from error
    if root.tag != "xArch":
        raise SerializationError(
            f"expected root element 'xArch', found {root.tag!r}"
        )
    return _parse_architecture(root)


_RESERVED_ATTRS = {"id", "name", "style"}


def _parse_architecture(root: ET.Element) -> Architecture:
    architecture = Architecture(
        name=_required(root, "name"), style=root.get("style")
    )
    for child in root:
        if child.tag == "description":
            architecture.description = (child.text or "").strip()
        elif child.tag == "component":
            _parse_component(child, architecture)
        elif child.tag == "connector":
            _parse_connector(child, architecture)
        elif child.tag == "link":
            points = child.findall("point")
            if len(points) != 2:
                raise SerializationError(
                    f"link {child.get('id')!r} must have exactly two points"
                )
            architecture.link(
                (_required(points[0], "element"), _required(points[0], "interface")),
                (_required(points[1], "element"), _required(points[1], "interface")),
                name=_required(child, "id"),
            )
        else:
            raise SerializationError(f"unexpected element <{child.tag}> in <xArch>")
    architecture.validate()
    return architecture


def _parse_component(element: ET.Element, architecture: Architecture) -> None:
    description, interfaces, chart = _parse_element_common(element)
    responsibilities = tuple(
        (child.text or "").strip() for child in element.findall("responsibility")
    )
    subarchitecture: Optional[Architecture] = None
    wrapper = element.find("subArchitecture")
    if wrapper is not None:
        inner = wrapper.find("xArch")
        if inner is None:
            raise SerializationError(
                f"<subArchitecture> of {element.get('id')!r} has no <xArch>"
            )
        subarchitecture = _parse_architecture(inner)
    component = architecture.add_component(
        name=_required(element, "id"),
        description=description,
        responsibilities=responsibilities,
        interfaces=interfaces,
        subarchitecture=subarchitecture,
    )
    component.properties.update(_extra_attributes(element))
    if chart is not None:
        architecture.attach_behavior(component.name, chart)


def _parse_connector(element: ET.Element, architecture: Architecture) -> None:
    description, interfaces, chart = _parse_element_common(element)
    connector = architecture.add_connector(
        name=_required(element, "id"),
        description=description,
        interfaces=interfaces,
    )
    connector.properties.update(_extra_attributes(element))
    if chart is not None:
        architecture.attach_behavior(connector.name, chart)


def _parse_element_common(
    element: ET.Element,
) -> tuple[str, list[Interface], Optional[Statechart]]:
    description = ""
    interfaces: list[Interface] = []
    chart: Optional[Statechart] = None
    for child in element:
        if child.tag == "description":
            description = (child.text or "").strip()
        elif child.tag == "interface":
            interfaces.append(
                Interface(
                    name=_required(child, "id"),
                    direction=_parse_direction(child.get("direction", "inout")),
                    description=child.get("description", ""),
                )
            )
        elif child.tag == "statechart":
            chart = _parse_statechart(child)
    return description, interfaces, chart


def _parse_statechart(element: ET.Element) -> Statechart:
    chart = Statechart(
        name=element.get("name", "behavior"),
        description=element.get("description", ""),
    )
    for child in element.findall("state"):
        chart.add_state(
            name=_required(child, "id"),
            initial=child.get("initial") == "true",
            parent=child.get("parent"),
            description=child.get("description", ""),
            entry_actions=_parse_action_group(child, "entry"),
            exit_actions=_parse_action_group(child, "exit"),
        )
    for child in element.findall("transition"):
        actions = tuple(
            _parse_action(action) for action in child.findall("action")
        )
        chart.add_transition(
            source=_required(child, "from"),
            target=_required(child, "to"),
            trigger=_required(child, "trigger"),
            guard=child.get("guard"),
            actions=actions,
        )
    return chart


def _parse_action_group(
    state_element: ET.Element, wrapper_tag: str
) -> tuple[Action, ...]:
    wrapper = state_element.find(wrapper_tag)
    if wrapper is None:
        return ()
    return tuple(_parse_action(action) for action in wrapper.findall("action"))


def _parse_action(action: ET.Element) -> Action:
    return Action(
        kind=_parse_action_kind(_required(action, "kind")),
        message=action.get("message", ""),
        via=action.get("via"),
        message_kind=action.get("messageKind"),
        description=action.get("description", ""),
    )


def _parse_direction(value: str) -> Direction:
    try:
        return _DIRECTION_BY_VALUE[value]
    except KeyError:
        raise SerializationError(f"unknown interface direction {value!r}") from None


def _parse_action_kind(value: str) -> ActionKind:
    try:
        return _ACTION_BY_VALUE[value]
    except KeyError:
        raise SerializationError(f"unknown action kind {value!r}") from None


def _extra_attributes(element: ET.Element) -> dict[str, str]:
    return {
        key: value
        for key, value in element.attrib.items()
        if key not in _RESERVED_ATTRS
    }


def _required(element: ET.Element, attribute: str) -> str:
    value = element.get(attribute)
    if value is None:
        raise SerializationError(
            f"<{element.tag}> is missing required attribute {attribute!r}"
        )
    return value
