"""Structural diff between two versions of an architecture.

The paper argues (§5) that the requirements↔architecture mapping eases
maintenance: when the architecture evolves, changed elements localize the
requirements that must be re-evaluated. :func:`diff_architectures`
computes what changed between two versions; the traceability module
(:mod:`repro.core.traceability`) turns the diff into the set of impacted
scenarios.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.adl.structure import Architecture, Component, Connector


@dataclass(frozen=True)
class PropertyChange:
    """One changed attribute of an element that exists in both versions."""

    element: str
    attribute: str
    old_value: str
    new_value: str

    def __str__(self) -> str:
        return (
            f"{self.element}.{self.attribute}: "
            f"{self.old_value!r} -> {self.new_value!r}"
        )


@dataclass(frozen=True)
class ArchitectureDiff:
    """What changed from ``old`` to ``new``.

    Links are compared by the unordered pair of ``element.interface``
    endpoints, not by link name, so renaming a link is not a change.
    """

    added_components: tuple[str, ...] = ()
    removed_components: tuple[str, ...] = ()
    added_connectors: tuple[str, ...] = ()
    removed_connectors: tuple[str, ...] = ()
    added_links: tuple[tuple[str, str], ...] = ()
    removed_links: tuple[tuple[str, str], ...] = ()
    changed_elements: tuple[PropertyChange, ...] = ()

    @property
    def is_empty(self) -> bool:
        """Whether the two versions are structurally identical."""
        return not (
            self.added_components
            or self.removed_components
            or self.added_connectors
            or self.removed_connectors
            or self.added_links
            or self.removed_links
            or self.changed_elements
        )

    def touched_elements(self) -> frozenset[str]:
        """Every element name involved in any change — the impact surface
        handed to traceability analysis."""
        touched: set[str] = set()
        touched.update(self.added_components)
        touched.update(self.removed_components)
        touched.update(self.added_connectors)
        touched.update(self.removed_connectors)
        for first, second in (*self.added_links, *self.removed_links):
            touched.add(first.split(".", 1)[0])
            touched.add(second.split(".", 1)[0])
        touched.update(change.element for change in self.changed_elements)
        return frozenset(touched)

    def summary(self) -> str:
        """A human-readable change listing."""
        lines: list[str] = []
        for title, names in (
            ("components added", self.added_components),
            ("components removed", self.removed_components),
            ("connectors added", self.added_connectors),
            ("connectors removed", self.removed_connectors),
        ):
            if names:
                lines.append(f"{title}: {', '.join(names)}")
        for title, pairs in (
            ("links added", self.added_links),
            ("links removed", self.removed_links),
        ):
            if pairs:
                rendered = ", ".join(f"{a} <-> {b}" for a, b in pairs)
                lines.append(f"{title}: {rendered}")
        if self.changed_elements:
            lines.append(
                "changed: " + "; ".join(str(c) for c in self.changed_elements)
            )
        return "\n".join(lines) if lines else "no structural changes"


def diff_architectures(
    old: Architecture, new: Architecture
) -> ArchitectureDiff:
    """Compute the structural diff from ``old`` to ``new``."""
    old_components = {c.name for c in old.components}
    new_components = {c.name for c in new.components}
    old_connectors = {c.name for c in old.connectors}
    new_connectors = {c.name for c in new.connectors}
    old_links = {_link_key(link) for link in old.links}
    new_links = {_link_key(link) for link in new.links}

    changed: list[PropertyChange] = []
    for name in sorted(old_components & new_components):
        changed.extend(_component_changes(old.component(name), new.component(name)))
    for name in sorted(old_connectors & new_connectors):
        changed.extend(_element_changes(old.connector(name), new.connector(name)))

    return ArchitectureDiff(
        added_components=tuple(sorted(new_components - old_components)),
        removed_components=tuple(sorted(old_components - new_components)),
        added_connectors=tuple(sorted(new_connectors - old_connectors)),
        removed_connectors=tuple(sorted(old_connectors - new_connectors)),
        added_links=tuple(sorted(new_links - old_links)),
        removed_links=tuple(sorted(old_links - new_links)),
        changed_elements=tuple(changed),
    )


def _link_key(link) -> tuple[str, str]:
    endpoints = sorted(str(endpoint) for endpoint in link.endpoints)
    return (endpoints[0], endpoints[1])


def _element_changes(
    old: Component | Connector, new: Component | Connector
) -> list[PropertyChange]:
    changes: list[PropertyChange] = []
    if old.description != new.description:
        changes.append(
            PropertyChange(old.name, "description", old.description, new.description)
        )
    keys = set(old.properties) | set(new.properties)
    for key in sorted(keys):
        old_value = old.properties.get(key, "")
        new_value = new.properties.get(key, "")
        if old_value != new_value:
            changes.append(PropertyChange(old.name, key, old_value, new_value))
    # Compare (name, direction) pairs, not just names: a direction-only
    # change alters the directed communication graph, and a diff that
    # missed it would let diff-driven invalidation carry stale verdicts.
    old_interfaces = {
        f"{name}:{interface.direction.value}"
        for name, interface in old.interfaces.items()
    }
    new_interfaces = {
        f"{name}:{interface.direction.value}"
        for name, interface in new.interfaces.items()
    }
    if old_interfaces != new_interfaces:
        changes.append(
            PropertyChange(
                old.name,
                "interfaces",
                ",".join(sorted(old_interfaces)),
                ",".join(sorted(new_interfaces)),
            )
        )
    return changes


def _component_changes(old: Component, new: Component) -> list[PropertyChange]:
    changes = _element_changes(old, new)
    if old.responsibilities != new.responsibilities:
        changes.append(
            PropertyChange(
                old.name,
                "responsibilities",
                " | ".join(old.responsibilities),
                " | ".join(new.responsibilities),
            )
        )
    return changes
