"""Graphviz DOT export of architectures and mappings.

The paper communicates its artifacts as diagrams (Figs. 3, 5, 7 are
architecture drawings; Fig. 8 overlays the mapping). This module renders
the same pictures textually: :func:`architecture_to_dot` draws components
(boxes), connectors (ellipses), and links; :func:`mapping_to_dot` draws
the bipartite event-type-to-component graph of a mapping. The output is
plain DOT — render with ``dot -Tsvg`` where Graphviz is available.
"""

from __future__ import annotations

from typing import Optional

from repro.adl.structure import Architecture
from repro.core.mapping import Mapping
from repro.scenarioml.scenario import ScenarioSet


def _quote(name: str) -> str:
    escaped = name.replace("\\", "\\\\").replace('"', '\\"')
    return f'"{escaped}"'


def architecture_to_dot(
    architecture: Architecture,
    include_interfaces: bool = False,
    rankdir: str = "TB",
) -> str:
    """Render an architecture's structure as a DOT graph.

    Components are boxes (labelled with their layer, when present),
    connectors are ellipses, links are edges (labelled with the joined
    interfaces when ``include_interfaces`` is set). Sub-architectures
    become clusters inside their owning component's box.
    """
    lines = [f"graph {_quote(architecture.name)} {{"]
    lines.append(f"  rankdir={rankdir};")
    lines.append('  node [fontname="Helvetica"];')
    for component in architecture.components:
        label = component.name
        if component.layer is not None:
            label += f"\\n(layer {component.layer})"
        if component.subarchitecture is not None:
            label += "\\n[decomposed]"
        lines.append(
            f"  {_quote(component.name)} [shape=box, label={_quote(label)}];"
        )
    for connector in architecture.connectors:
        lines.append(
            f"  {_quote(connector.name)} [shape=ellipse, style=dashed];"
        )
    for link in architecture.links:
        attributes = ""
        if include_interfaces:
            label = f"{link.first.interface} -- {link.second.interface}"
            attributes = f" [label={_quote(label)}]"
        lines.append(
            f"  {_quote(link.first.element)} -- "
            f"{_quote(link.second.element)}{attributes};"
        )
    for component in architecture.components:
        if component.subarchitecture is not None:
            lines.append(
                _subarchitecture_cluster(component.name, component.subarchitecture)
            )
    lines.append("}")
    return "\n".join(lines)


def _subarchitecture_cluster(owner: str, architecture: Architecture) -> str:
    lines = [f"  subgraph {_quote('cluster_' + owner)} {{"]
    lines.append(f"    label={_quote(owner + ' internals')};")
    for component in architecture.components:
        lines.append(f"    {_quote(component.name)} [shape=box];")
    for connector in architecture.connectors:
        lines.append(f"    {_quote(connector.name)} [shape=ellipse, style=dashed];")
    for link in architecture.links:
        lines.append(
            f"    {_quote(link.first.element)} -- {_quote(link.second.element)};"
        )
    lines.append("  }")
    return "\n".join(lines)


def mapping_to_dot(
    mapping: Mapping,
    scenario_set: Optional[ScenarioSet] = None,
) -> str:
    """Render a mapping as a bipartite DOT graph (the Fig. 8 overlay).

    Event types appear on the left (rounded boxes), components on the
    right (boxes); each mapping link is an edge. With a scenario set, only
    event types the scenarios use are drawn.
    """
    table = mapping.table(scenario_set)
    lines = [f"digraph {_quote(mapping.name)} {{"]
    lines.append("  rankdir=LR;")
    lines.append('  node [fontname="Helvetica"];')
    lines.append("  subgraph cluster_events {")
    lines.append('    label="ontology event types";')
    for row in table.rows:
        lines.append(
            f"    {_quote('et:' + row)} [shape=box, style=rounded, "
            f"label={_quote(row)}];"
        )
    lines.append("  }")
    lines.append("  subgraph cluster_components {")
    lines.append('    label="architecture components";')
    for column in table.columns:
        lines.append(
            f"    {_quote('c:' + column)} [shape=box, label={_quote(column)}];"
        )
    lines.append("  }")
    for row in table.rows:
        for column in table.columns:
            if table.is_marked(row, column):
                lines.append(
                    f"  {_quote('et:' + row)} -> {_quote('c:' + column)};"
                )
    lines.append("}")
    return "\n".join(lines)
