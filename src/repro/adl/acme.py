"""Acme-lite: a textual interchange format for architecture structure.

The paper's future work (§8) plans support for Acme, "a simple ADL that
can be used as a common interchange format for architecture design tools."
This module implements a faithful subset: systems with components
(ports), connectors (roles), properties, and attachments::

    System pims : layered = {
      Component "master-controller" = {
        Property layer = "4";
        Property "responsibility.1" = "Interact with the user";
        Port calls : out;
      };
      Connector "mc-bus" = {
        Role r0 : inout;
      };
      Attachment "master-controller".calls to "mc-bus".r0;
    };

Acme-lite is structure-only: statechart behavior stays in xADL. Because
the walkthrough engine consumes structure (mapping + links), an
architecture imported from Acme is fully evaluable — which is exactly the
ADL-independence claim the paper makes.

Identifiers match ``[A-Za-z0-9_.-]+``; anything else is written as a
quoted string. :func:`to_acme` and :func:`parse_acme` round-trip
structure, descriptions, responsibilities, and properties.
"""

from __future__ import annotations

import re
from typing import Iterator, Optional

from repro.adl.structure import Architecture, Direction
from repro.errors import SerializationError

_BARE_IDENTIFIER = re.compile(r"^[A-Za-z0-9_-]+$")
_TOKEN = re.compile(
    r"""
    \s*(?:
        (?P<string>"(?:[^"\\]|\\.)*")   # quoted string
      | (?P<word>[A-Za-z0-9_.-]+)       # bare identifier / keyword
      | (?P<punct>[{}=:;])              # punctuation
    )
    """,
    re.VERBOSE,
)

_RESPONSIBILITY_PREFIX = "responsibility."
_DESCRIPTION_KEY = "description"


# ----------------------------------------------------------------------
# Emission
# ----------------------------------------------------------------------

def to_acme(architecture: Architecture) -> str:
    """Emit an architecture as Acme-lite text."""
    lines: list[str] = []
    style = f" : {_quote(architecture.style)}" if architecture.style else ""
    lines.append(f"System {_quote(architecture.name)}{style} = {{")
    if architecture.description:
        lines.append(
            f"  Property {_quote(_DESCRIPTION_KEY)} = "
            f"{_string(architecture.description)};"
        )
    for component in architecture.components:
        lines.append(f"  Component {_quote(component.name)} = {{")
        if component.description:
            lines.append(
                f"    Property {_quote(_DESCRIPTION_KEY)} = "
                f"{_string(component.description)};"
            )
        for key, value in component.properties.items():
            lines.append(f"    Property {_quote(key)} = {_string(value)};")
        for index, responsibility in enumerate(component.responsibilities, start=1):
            lines.append(
                f"    Property {_quote(f'{_RESPONSIBILITY_PREFIX}{index}')} = "
                f"{_string(responsibility)};"
            )
        for interface in component.interfaces.values():
            lines.append(
                f"    Port {_quote(interface.name)} : {interface.direction.value};"
            )
        lines.append("  };")
    for connector in architecture.connectors:
        lines.append(f"  Connector {_quote(connector.name)} = {{")
        if connector.description:
            lines.append(
                f"    Property {_quote(_DESCRIPTION_KEY)} = "
                f"{_string(connector.description)};"
            )
        for key, value in connector.properties.items():
            lines.append(f"    Property {_quote(key)} = {_string(value)};")
        for interface in connector.interfaces.values():
            lines.append(
                f"    Role {_quote(interface.name)} : {interface.direction.value};"
            )
        lines.append("  };")
    for link in architecture.links:
        lines.append(
            f"  Attachment {_quote(link.first.element)}.{_quote(link.first.interface)}"
            f" to {_quote(link.second.element)}.{_quote(link.second.interface)};"
            f"  // {link.name}"
        )
    lines.append("};")
    return "\n".join(lines)


def _quote(name: Optional[str]) -> str:
    if name is None:
        return '""'
    if _BARE_IDENTIFIER.match(name):
        return name
    return _string(name)


def _string(value: str) -> str:
    escaped = value.replace("\\", "\\\\").replace('"', '\\"')
    return f'"{escaped}"'


# ----------------------------------------------------------------------
# Parsing
# ----------------------------------------------------------------------

class _Tokens:
    """A peekable token stream over Acme-lite text (comments stripped)."""

    def __init__(self, text: str) -> None:
        text = re.sub(r"//[^\n]*", "", text)
        self._tokens: list[str] = []
        position = 0
        while position < len(text):
            match = _TOKEN.match(text, position)
            if match is None:
                remainder = text[position:].strip()
                if not remainder:
                    break
                raise SerializationError(
                    f"unexpected Acme input at: {remainder[:40]!r}"
                )
            position = match.end()
            token = match.group("string") or match.group("word") or match.group(
                "punct"
            )
            if token is not None and token.strip():
                self._tokens.append(token)
        self._index = 0

    def peek(self) -> Optional[str]:
        if self._index < len(self._tokens):
            return self._tokens[self._index]
        return None

    def next(self) -> str:
        token = self.peek()
        if token is None:
            raise SerializationError("unexpected end of Acme input")
        self._index += 1
        return token

    def expect(self, expected: str) -> str:
        token = self.next()
        if token != expected:
            raise SerializationError(
                f"expected {expected!r} in Acme input, found {token!r}"
            )
        return token

    def name(self) -> str:
        """Consume a bare identifier or quoted string as a name."""
        token = self.next()
        if token.startswith('"'):
            return _unescape(token)
        return token


def _unescape(token: str) -> str:
    body = token[1:-1]
    return re.sub(r"\\(.)", r"\1", body)


def parse_acme(text: str) -> Architecture:
    """Parse Acme-lite text into an :class:`Architecture`."""
    tokens = _Tokens(text)
    tokens.expect("System")
    name = tokens.name()
    style = None
    if tokens.peek() == ":":
        tokens.next()
        style = tokens.name()
    tokens.expect("=")
    tokens.expect("{")
    architecture = Architecture(name=name, style=style)
    pending_links: list[tuple[str, str, str, str]] = []
    while tokens.peek() != "}":
        keyword = tokens.next()
        if keyword == "Component":
            _parse_acme_element(tokens, architecture, is_component=True)
        elif keyword == "Connector":
            _parse_acme_element(tokens, architecture, is_component=False)
        elif keyword == "Attachment":
            pending_links.append(_parse_attachment(tokens))
        elif keyword == "Property":
            key, value = _parse_property(tokens)
            if key == _DESCRIPTION_KEY:
                architecture.description = value
        else:
            raise SerializationError(
                f"unexpected keyword {keyword!r} in Acme system body"
            )
    tokens.expect("}")
    if tokens.peek() == ";":
        tokens.next()
    for source_element, source_port, target_element, target_port in pending_links:
        architecture.link(
            (source_element, source_port), (target_element, target_port)
        )
    architecture.validate()
    return architecture


def _parse_acme_element(
    tokens: _Tokens, architecture: Architecture, is_component: bool
) -> None:
    name = tokens.name()
    tokens.expect("=")
    tokens.expect("{")
    description = ""
    properties: dict[str, str] = {}
    responsibilities: dict[int, str] = {}
    interfaces: list[tuple[str, Direction]] = []
    port_keyword = "Port" if is_component else "Role"
    while tokens.peek() != "}":
        keyword = tokens.next()
        if keyword == "Property":
            key, value = _parse_property(tokens)
            if key == _DESCRIPTION_KEY:
                description = value
            elif key.startswith(_RESPONSIBILITY_PREFIX):
                index = int(key[len(_RESPONSIBILITY_PREFIX):])
                responsibilities[index] = value
            else:
                properties[key] = value
        elif keyword == port_keyword:
            port_name = tokens.name()
            direction = Direction.INOUT
            if tokens.peek() == ":":
                tokens.next()
                direction = _parse_acme_direction(tokens.name())
            tokens.expect(";")
            interfaces.append((port_name, direction))
        else:
            raise SerializationError(
                f"unexpected keyword {keyword!r} inside "
                f"{'Component' if is_component else 'Connector'} {name!r}"
            )
    tokens.expect("}")
    if tokens.peek() == ";":
        tokens.next()
    if is_component:
        element = architecture.add_component(
            name=name,
            description=description,
            responsibilities=tuple(
                responsibilities[index] for index in sorted(responsibilities)
            ),
        )
    else:
        element = architecture.add_connector(name=name, description=description)
    element.properties.update(properties)
    for port_name, direction in interfaces:
        element.add_interface(port_name, direction)


def _parse_property(tokens: _Tokens) -> tuple[str, str]:
    key = tokens.name()
    tokens.expect("=")
    value = tokens.name()
    tokens.expect(";")
    return key, value


def _parse_attachment(tokens: _Tokens) -> tuple[str, str, str, str]:
    source_element, source_port = _parse_endpoint(tokens)
    tokens.expect("to")
    target_element, target_port = _parse_endpoint(tokens)
    tokens.expect(";")
    return source_element, source_port, target_element, target_port


def _parse_endpoint(tokens: _Tokens) -> tuple[str, str]:
    """An attachment endpoint is ``element.port``.

    A quoted element name keeps its dot outside the quotes (``"a b".p``);
    bare names fuse ``element.port`` into one token. The raw token must be
    inspected before unquoting, because quoted names may themselves
    contain dots.
    """
    token = tokens.next()
    if token.startswith('"'):
        element = _unescape(token)
        follower = tokens.next()
        if follower == ".":
            return element, tokens.name()  # quoted port after a lone dot
        if follower.startswith("."):
            return element, follower[1:]
        raise SerializationError(
            f"malformed attachment endpoint near {element!r} {follower!r}"
        )
    element, _, port = token.rpartition(".")
    if element and port:
        return element, port
    raise SerializationError(
        f"malformed attachment endpoint {token!r} (expected element.port)"
    )


def _parse_acme_direction(value: str) -> Direction:
    try:
        return Direction(value)
    except ValueError:
        raise SerializationError(
            f"unknown port/role direction {value!r}"
        ) from None
