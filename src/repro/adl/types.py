"""Component and connector types (the xADL types layer).

xADL 2.0's distinguishing feature is its *types* schema: components and
connectors are instances of reusable types declaring signatures
(interface names and directions). This module reproduces that layer on
top of the structural model:

* a :class:`ComponentType` / :class:`ConnectorType` declares a set of
  :class:`Signature`\\ s (name + direction) and optional shared
  responsibilities;
* a :class:`TypeRegistry` holds the types of a family of architectures
  (e.g. "every CRASH peer instantiates the `command-and-control` type");
* :func:`instantiate` stamps out a conforming element in an architecture;
* :func:`check_conformance` verifies that every element declaring a type
  (via the ``type`` property) matches its type's signatures — the typed
  counterpart of style checking.

Types make families cheap: the CRASH architecture's seven structurally
identical peers are the motivating case.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional

from repro.adl.structure import (
    Architecture,
    Component,
    Connector,
    Direction,
    Interface,
)
from repro.errors import ArchitectureError

TYPE_PROPERTY = "type"


@dataclass(frozen=True)
class Signature:
    """One declared interaction point of a type."""

    name: str
    direction: Direction = Direction.INOUT
    description: str = ""

    def __post_init__(self) -> None:
        if not self.name:
            raise ArchitectureError("a signature must have a non-empty name")


@dataclass(frozen=True)
class _ElementType:
    """Shared shape of component and connector types."""

    name: str
    signatures: tuple[Signature, ...] = ()
    description: str = ""

    def __post_init__(self) -> None:
        if not self.name:
            raise ArchitectureError("a type must have a non-empty name")
        seen: set[str] = set()
        for signature in self.signatures:
            if signature.name in seen:
                raise ArchitectureError(
                    f"type {self.name!r} declares signature "
                    f"{signature.name!r} twice"
                )
            seen.add(signature.name)

    def signature(self, name: str) -> Signature:
        """Resolve a signature by name."""
        for signature in self.signatures:
            if signature.name == name:
                return signature
        raise ArchitectureError(
            f"type {self.name!r} has no signature {name!r}"
        )


@dataclass(frozen=True)
class ComponentType(_ElementType):
    """A reusable component type with shared responsibilities."""

    responsibilities: tuple[str, ...] = ()


@dataclass(frozen=True)
class ConnectorType(_ElementType):
    """A reusable connector type."""


@dataclass(frozen=True)
class ConformanceViolation:
    """One mismatch between an element and its declared type."""

    element: str
    type_name: str
    message: str

    def __str__(self) -> str:
        return f"{self.element} (: {self.type_name}): {self.message}"


class TypeRegistry:
    """The component/connector types of an architectural family."""

    def __init__(self, name: str = "types") -> None:
        self.name = name
        self._component_types: dict[str, ComponentType] = {}
        self._connector_types: dict[str, ConnectorType] = {}

    def add(self, element_type: ComponentType | ConnectorType):
        """Register a type; names are unique per kind."""
        if isinstance(element_type, ComponentType):
            table = self._component_types
        elif isinstance(element_type, ConnectorType):
            table = self._connector_types
        else:
            raise ArchitectureError(
                f"cannot register {type(element_type).__name__} as a type"
            )
        if element_type.name in table:
            raise ArchitectureError(
                f"registry {self.name!r} already has a "
                f"{type(element_type).__name__} named {element_type.name!r}"
            )
        table[element_type.name] = element_type
        return element_type

    def component_type(self, name: str) -> ComponentType:
        """Resolve a component type by name."""
        try:
            return self._component_types[name]
        except KeyError:
            raise ArchitectureError(
                f"registry {self.name!r} has no component type {name!r}"
            ) from None

    def connector_type(self, name: str) -> ConnectorType:
        """Resolve a connector type by name."""
        try:
            return self._connector_types[name]
        except KeyError:
            raise ArchitectureError(
                f"registry {self.name!r} has no connector type {name!r}"
            ) from None

    @property
    def component_types(self) -> tuple[ComponentType, ...]:
        """All component types, in registration order."""
        return tuple(self._component_types.values())

    @property
    def connector_types(self) -> tuple[ConnectorType, ...]:
        """All connector types, in registration order."""
        return tuple(self._connector_types.values())

    # ------------------------------------------------------------------
    # Instantiation
    # ------------------------------------------------------------------

    def instantiate_component(
        self,
        architecture: Architecture,
        type_name: str,
        instance_name: str,
        description: str = "",
        extra_responsibilities: Iterable[str] = (),
        layer: Optional[int] = None,
    ) -> Component:
        """Create a component conforming to a registered type."""
        component_type = self.component_type(type_name)
        component = architecture.add_component(
            instance_name,
            description=description or component_type.description,
            responsibilities=(
                *component_type.responsibilities,
                *extra_responsibilities,
            ),
            interfaces=[
                Interface(s.name, s.direction, s.description)
                for s in component_type.signatures
            ],
            layer=layer,
        )
        component.properties[TYPE_PROPERTY] = type_name
        return component

    def instantiate_connector(
        self,
        architecture: Architecture,
        type_name: str,
        instance_name: str,
        description: str = "",
    ) -> Connector:
        """Create a connector conforming to a registered type."""
        connector_type = self.connector_type(type_name)
        connector = architecture.add_connector(
            instance_name,
            description=description or connector_type.description,
            interfaces=[
                Interface(s.name, s.direction, s.description)
                for s in connector_type.signatures
            ],
        )
        connector.properties[TYPE_PROPERTY] = type_name
        return connector

    # ------------------------------------------------------------------
    # Conformance
    # ------------------------------------------------------------------

    def check_conformance(
        self, architecture: Architecture
    ) -> list[ConformanceViolation]:
        """Check every typed element against its declared type.

        An element conforms when it carries every signature of its type
        with the declared direction; extra interfaces are allowed (types
        are minimal contracts). Elements without a ``type`` property are
        skipped; a dangling type name is itself a violation.
        """
        violations: list[ConformanceViolation] = []
        for component in architecture.components:
            violations.extend(
                self._check_element(
                    component, self._component_types, "component"
                )
            )
        for connector in architecture.connectors:
            violations.extend(
                self._check_element(
                    connector, self._connector_types, "connector"
                )
            )
        return violations

    def _check_element(
        self, element, table: dict, kind: str
    ) -> list[ConformanceViolation]:
        type_name = element.properties.get(TYPE_PROPERTY)
        if type_name is None:
            return []
        element_type = table.get(type_name)
        if element_type is None:
            return [
                ConformanceViolation(
                    element.name,
                    type_name,
                    f"declares unknown {kind} type",
                )
            ]
        violations = []
        for signature in element_type.signatures:
            interface = element.interfaces.get(signature.name)
            if interface is None:
                violations.append(
                    ConformanceViolation(
                        element.name,
                        type_name,
                        f"missing interface {signature.name!r} required by "
                        "its type",
                    )
                )
            elif interface.direction is not signature.direction:
                violations.append(
                    ConformanceViolation(
                        element.name,
                        type_name,
                        f"interface {signature.name!r} has direction "
                        f"{interface.direction.value!r}, type requires "
                        f"{signature.direction.value!r}",
                    )
                )
        return violations

    def instances_of(
        self, architecture: Architecture, type_name: str
    ) -> tuple[str, ...]:
        """Names of elements declaring the given type."""
        return tuple(
            element.name
            for element in (*architecture.components, *architecture.connectors)
            if element.properties.get(TYPE_PROPERTY) == type_name
        )
