"""Statechart behavioral descriptions for architecture elements.

This module reproduces the xADL behavioral extension of Naslavsky et al.
(2004): each component or connector may carry a statechart describing how
it reacts to incoming messages. The dynamic evaluation engine
(:mod:`repro.core.dynamic`) drives these statecharts inside the simulator.

A :class:`Statechart` is a set of (optionally hierarchical) states and
trigger-labelled transitions whose :class:`Action`\\ s describe the
element's visible reactions — chiefly sending messages through named
interfaces. :class:`StatechartInstance` is the run-time interpreter.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Callable, Iterable, Mapping, Optional, Sequence

from repro.errors import ArchitectureError


class ActionKind(Enum):
    """What a transition action does."""

    SEND = "send"        # emit a message through an interface
    REPLY = "reply"      # respond to the message that triggered the transition
    INTERNAL = "internal"  # local computation, no visible communication
    LOG = "log"          # record a diagnostic observation


@dataclass(frozen=True)
class Action:
    """One visible reaction of a transition.

    For ``SEND``/``REPLY``, ``message`` is the message name emitted and
    ``via`` names the interface it leaves through (``None`` means any
    suitable interface — resolved by the runtime). ``message_kind``
    optionally fixes the emitted message's kind (``"request"`` or
    ``"notification"``); when unset the runtime infers it from the
    interface (C2 top/bottom) or the triggering message."""

    kind: ActionKind
    message: str = ""
    via: Optional[str] = None
    message_kind: Optional[str] = None
    description: str = ""

    def __post_init__(self) -> None:
        if self.kind in (ActionKind.SEND, ActionKind.REPLY) and not self.message:
            raise ArchitectureError(
                f"a {self.kind.value} action must name the message it emits"
            )


@dataclass(frozen=True)
class State:
    """A statechart state; ``parent`` makes it a substate.

    ``entry_actions``/``exit_actions`` run when the state is entered or
    left by a transition (outermost-exited first on exit, outermost-entered
    first on entry, per standard statechart semantics)."""

    name: str
    initial: bool = False
    parent: Optional[str] = None
    description: str = ""
    entry_actions: tuple[Action, ...] = ()
    exit_actions: tuple[Action, ...] = ()

    def __post_init__(self) -> None:
        if not self.name:
            raise ArchitectureError("a state must have a non-empty name")
        if self.parent == self.name:
            raise ArchitectureError(f"state {self.name!r} cannot be its own parent")
        object.__setattr__(self, "entry_actions", tuple(self.entry_actions))
        object.__setattr__(self, "exit_actions", tuple(self.exit_actions))


@dataclass(frozen=True)
class Transition:
    """A trigger-labelled edge between states.

    ``trigger`` is the incoming message (or internal event) name; ``guard``
    optionally names a boolean condition resolved against a guard context
    at run time; ``actions`` are performed when the transition fires.
    """

    source: str
    target: str
    trigger: str
    guard: Optional[str] = None
    actions: tuple[Action, ...] = ()

    def __post_init__(self) -> None:
        if not self.trigger:
            raise ArchitectureError(
                f"transition {self.source!r}->{self.target!r} needs a trigger"
            )
        object.__setattr__(self, "actions", tuple(self.actions))


class Statechart:
    """A statechart: states, transitions, and a unique top-level initial
    state."""

    def __init__(self, name: str, description: str = "") -> None:
        if not name:
            raise ArchitectureError("a statechart must have a non-empty name")
        self.name = name
        self.description = description
        self._states: dict[str, State] = {}
        self._transitions: list[Transition] = []

    def add_state(
        self,
        name: str,
        initial: bool = False,
        parent: Optional[str] = None,
        description: str = "",
        entry_actions: Sequence[Action] = (),
        exit_actions: Sequence[Action] = (),
    ) -> State:
        """Register a state; names are unique per chart."""
        if name in self._states:
            raise ArchitectureError(
                f"statechart {self.name!r} already has a state {name!r}"
            )
        state = State(
            name,
            initial,
            parent,
            description,
            tuple(entry_actions),
            tuple(exit_actions),
        )
        self._states[name] = state
        return state

    def add_transition(
        self,
        source: str,
        target: str,
        trigger: str,
        guard: Optional[str] = None,
        actions: Sequence[Action] = (),
    ) -> Transition:
        """Register a transition between existing states."""
        for endpoint in (source, target):
            if endpoint not in self._states:
                raise ArchitectureError(
                    f"statechart {self.name!r} has no state {endpoint!r}"
                )
        transition = Transition(source, target, trigger, guard, tuple(actions))
        self._transitions.append(transition)
        return transition

    @property
    def states(self) -> tuple[State, ...]:
        """All states, in registration order."""
        return tuple(self._states.values())

    @property
    def transitions(self) -> tuple[Transition, ...]:
        """All transitions, in registration order."""
        return tuple(self._transitions)

    def state(self, name: str) -> State:
        """Resolve a state by name."""
        try:
            return self._states[name]
        except KeyError:
            raise ArchitectureError(
                f"statechart {self.name!r} has no state {name!r}"
            ) from None

    def initial_state(self) -> State:
        """The unique top-level initial state."""
        initials = [
            state
            for state in self._states.values()
            if state.initial and state.parent is None
        ]
        if len(initials) != 1:
            raise ArchitectureError(
                f"statechart {self.name!r} must have exactly one top-level "
                f"initial state, found {len(initials)}"
            )
        return initials[0]

    def initial_substate(self, parent: str) -> Optional[State]:
        """The initial substate of a composite state, if it has substates."""
        substates = [s for s in self._states.values() if s.parent == parent]
        if not substates:
            return None
        initials = [s for s in substates if s.initial]
        if len(initials) != 1:
            raise ArchitectureError(
                f"composite state {parent!r} in {self.name!r} must have "
                f"exactly one initial substate, found {len(initials)}"
            )
        return initials[0]

    def ancestors(self, name: str) -> tuple[str, ...]:
        """Parent chain of a state, nearest first."""
        chain: list[str] = []
        seen = {name}
        current = self.state(name).parent
        while current is not None:
            if current in seen:
                raise ArchitectureError(
                    f"state parent cycle through {current!r} in {self.name!r}"
                )
            chain.append(current)
            seen.add(current)
            current = self.state(current).parent
        return tuple(chain)

    def enter(self, name: str) -> str:
        """Descend from a (possibly composite) state to the leaf reached by
        following initial substates."""
        current = name
        while True:
            substate = self.initial_substate(current)
            if substate is None:
                return current
            current = substate.name

    def triggers(self) -> frozenset[str]:
        """All trigger names used by any transition."""
        return frozenset(t.trigger for t in self._transitions)

    def validate(self) -> None:
        """Check the chart is well-formed: a unique top-level initial
        state, resolvable parents without cycles, and transitions between
        existing states (enforced at construction, re-checked here)."""
        self.initial_state()
        for state in self._states.values():
            if state.parent is not None:
                self.state(state.parent)
            self.ancestors(state.name)
        for transition in self._transitions:
            self.state(transition.source)
            self.state(transition.target)

    def __repr__(self) -> str:
        return (
            f"Statechart({self.name!r}: {len(self._states)} states, "
            f"{len(self._transitions)} transitions)"
        )


GuardContext = Mapping[str, bool] | Callable[[str], bool]


class StatechartInstance:
    """A running statechart.

    The instance tracks the current leaf state; :meth:`fire` consumes a
    trigger, takes the innermost enabled transition (current state first,
    then ancestors, in registration order within each level), and returns
    the transition's actions. Unknown triggers are ignored and return no
    actions — message-discarding is the conventional statechart semantics
    the runtime relies on.
    """

    def __init__(self, chart: Statechart) -> None:
        chart.validate()
        self.chart = chart
        self.current = chart.enter(chart.initial_state().name)
        self.fired: list[Transition] = []

    def configuration(self) -> tuple[str, ...]:
        """The active state names: current leaf plus its ancestors."""
        return (self.current, *self.chart.ancestors(self.current))

    def enabled(
        self, trigger: str, guard_context: Optional[GuardContext] = None
    ) -> Optional[Transition]:
        """The transition :meth:`fire` would take for this trigger, if any."""
        for state_name in self.configuration():
            for transition in self.chart.transitions:
                if transition.source != state_name:
                    continue
                if transition.trigger != trigger:
                    continue
                if not _guard_holds(transition.guard, guard_context):
                    continue
                return transition
        return None

    def fire(
        self, trigger: str, guard_context: Optional[GuardContext] = None
    ) -> tuple[Action, ...]:
        """Consume a trigger; move state and return the actions performed.

        The returned actions are, in order: exit actions of the states
        left (innermost first), the transition's own actions, and entry
        actions of the states entered (outermost first). Returns ``()``
        when no transition is enabled (the trigger is discarded).
        """
        transition = self.enabled(trigger, guard_context)
        if transition is None:
            return ()
        exited = self._exit_chain(transition.source)
        self.current = self.chart.enter(transition.target)
        entered = self._entry_chain(transition.target)
        self.fired.append(transition)
        actions: list[Action] = []
        for state in exited:
            actions.extend(state.exit_actions)
        actions.extend(transition.actions)
        for state in entered:
            actions.extend(state.entry_actions)
        return tuple(actions)

    def _exit_chain(self, source: str) -> tuple[State, ...]:
        """States left when a transition at ``source`` fires: the current
        leaf up to and including ``source``, innermost first."""
        chain: list[State] = []
        for name in self.configuration():
            chain.append(self.chart.state(name))
            if name == source:
                break
        return tuple(chain)

    def _entry_chain(self, target: str) -> tuple[State, ...]:
        """States entered when the transition targets ``target``: the
        target and every initial substate descended into, outermost
        first."""
        chain: list[State] = [self.chart.state(target)]
        current = target
        while current != self.current:
            substate = self.chart.initial_substate(current)
            if substate is None:
                break
            chain.append(substate)
            current = substate.name
        return tuple(chain)

    def can_fire(
        self, trigger: str, guard_context: Optional[GuardContext] = None
    ) -> bool:
        """Whether the trigger would cause a transition right now."""
        return self.enabled(trigger, guard_context) is not None

    def reset(self) -> None:
        """Return to the initial configuration and clear history."""
        self.current = self.chart.enter(self.chart.initial_state().name)
        self.fired.clear()


def _guard_holds(
    guard: Optional[str], guard_context: Optional[GuardContext]
) -> bool:
    """Evaluate a guard name against the context; a missing guard is true,
    an unresolvable named guard is false (fail closed)."""
    if guard is None:
        return True
    if guard_context is None:
        return False
    if callable(guard_context):
        return bool(guard_context(guard))
    return bool(guard_context.get(guard, False))
