"""The C2 architectural style (used by CRASH).

C2 (Taylor et al. 1995) organizes components and connectors into layers.
"Components in a layer are only aware of components in the layers above and
have no knowledge about components in layers below. Components communicate
with each other using two types of asynchronous event-based messages,
requests and notifications. Request messages travel up the architecture
while notification messages move down" (paper §4.2).

Modeling convention: every element exposes a ``top`` and/or ``bottom``
interface; a link joins one element's ``top`` to another element's
``bottom``, making the latter the *upper* neighbor. The style rules:

* ``components-attach-to-connectors`` — no direct component-to-component
  links; communication is always mediated by a connector.
* ``top-bottom-pairing`` — every link joins a ``top`` interface to a
  ``bottom`` interface.
* ``component-port-cardinality`` — a component's top (bottom) side attaches
  to at most one connector.
* ``acyclic-above`` — the induced above/below relation is acyclic (the
  architecture really is layered).

:func:`above_graph` exposes the induced ordering for the simulator's
request/notification routing, and :class:`MessageKind` names the two C2
message types.
"""

from __future__ import annotations

from enum import Enum

import networkx as nx

from repro.adl.structure import Architecture, Link
from repro.adl.styles import Style, StyleViolation, register_style

TOP = "top"
BOTTOM = "bottom"


class MessageKind(Enum):
    """The two asynchronous C2 message types."""

    REQUEST = "request"        # travels up the architecture
    NOTIFICATION = "notification"  # travels down the architecture


def upper_element(architecture: Architecture, link: Link) -> str | None:
    """The element on the *upper* side of a link under the top/bottom
    convention, or ``None`` when the link is not top-to-bottom."""
    first_name = link.first.interface
    second_name = link.second.interface
    if first_name == TOP and second_name == BOTTOM:
        return link.second.element
    if first_name == BOTTOM and second_name == TOP:
        return link.first.element
    return None


def above_graph(architecture: Architecture) -> nx.DiGraph:
    """The directed above/below relation: an edge ``a -> b`` means ``b``
    is directly above ``a`` (``a.top`` links to ``b.bottom``)."""
    graph = nx.DiGraph()
    for component in architecture.components:
        graph.add_node(component.name, kind="component")
    for connector in architecture.connectors:
        graph.add_node(connector.name, kind="connector")
    for link in architecture.links:
        upper = upper_element(architecture, link)
        if upper is None:
            continue
        lower = link.other(upper).element
        graph.add_edge(lower, upper, link=link.name)
    return graph


class C2Style(Style):
    """Conformance rules for C2 architectures."""

    name = "c2"
    description = (
        "C2: connector-mediated, top/bottom-linked, acyclically layered "
        "components with request/notification messaging."
    )

    def _register_rules(self) -> None:
        self.rule(
            "components-attach-to-connectors", self._check_connector_mediation
        )
        self.rule("top-bottom-pairing", self._check_top_bottom)
        self.rule("component-port-cardinality", self._check_port_cardinality)
        self.rule("acyclic-above", self._check_acyclic)

    def _check_connector_mediation(
        self, architecture: Architecture
    ) -> list[StyleViolation]:
        return [
            self.violation(
                "components-attach-to-connectors",
                f"link {link.name!r} directly joins two components",
                link.first.element,
                link.second.element,
            )
            for link in architecture.links
            if architecture.is_component(link.first.element)
            and architecture.is_component(link.second.element)
        ]

    def _check_top_bottom(
        self, architecture: Architecture
    ) -> list[StyleViolation]:
        violations = []
        for link in architecture.links:
            interfaces = {link.first.interface, link.second.interface}
            if interfaces != {TOP, BOTTOM}:
                violations.append(
                    self.violation(
                        "top-bottom-pairing",
                        f"link {link.name!r} joins interfaces "
                        f"{sorted(interfaces)} (expected one 'top' and one "
                        f"'bottom')",
                        link.first.element,
                        link.second.element,
                    )
                )
        return violations

    def _check_port_cardinality(
        self, architecture: Architecture
    ) -> list[StyleViolation]:
        violations = []
        for component in architecture.components:
            for side in (TOP, BOTTOM):
                attachments = [
                    link
                    for link in architecture.links_of(component.name)
                    if _endpoint_interface(link, component.name) == side
                ]
                if len(attachments) > 1:
                    violations.append(
                        self.violation(
                            "component-port-cardinality",
                            f"component {component.name!r} attaches its "
                            f"{side} side to {len(attachments)} links",
                            component.name,
                        )
                    )
        return violations

    def _check_acyclic(self, architecture: Architecture) -> list[StyleViolation]:
        graph = above_graph(architecture)
        try:
            cycle = nx.find_cycle(graph)
        except nx.NetworkXNoCycle:
            return []
        members = tuple(edge[0] for edge in cycle)
        return [
            self.violation(
                "acyclic-above",
                "the above/below relation contains a cycle: "
                + " -> ".join((*members, members[0])),
                *members,
            )
        ]


def _endpoint_interface(link: Link, element: str) -> str | None:
    """The interface name ``link`` uses on ``element``."""
    if link.first.element == element:
        return link.first.interface
    if link.second.element == element:
        return link.second.interface
    return None


C2_STYLE = register_style(C2Style())
