"""repro: ontology-based requirements-level scenario evaluation of
software architectures.

A full reproduction of Diallo, Naslavsky, Alspaugh, Ziv, Richardson,
"Toward Architecture Evaluation Through Ontology-based Requirements-level
Scenarios" (DSN WADS 2007): the ScenarioML scenario/ontology language, an
xADL-flavoured ADL with statechart behavior and Layered/C2 style checking,
the ontology-to-architecture mapping, static walkthrough and simulated
dynamic execution engines, constraints, negative scenarios, traceability,
and the two case studies (PIMS and CRASH).

Quickstart::

    from repro import Ontology, Scenario, ScenarioSet, TypedEvent
    from repro import Architecture, Mapping, Sosae

    ontology = Ontology("demo")
    ontology.define_event_type("greet", "The user greets the [name]",
                               parameters=["name"])
    scenarios = ScenarioSet(ontology)
    scenarios.add(Scenario("hello", events=(
        TypedEvent(type_name="greet", arguments={"name": "system"}),
    )))

    architecture = Architecture("demo-arch")
    architecture.add_component("ui")
    mapping = Mapping(ontology, architecture)
    mapping.map_event("greet", "ui")

    report = Sosae(scenarios, architecture, mapping).evaluate()
    assert report.consistent
"""

from repro.errors import (
    ArchitectureError,
    ArityError,
    DuplicateDefinitionError,
    EpisodeCycleError,
    EvaluationError,
    MappingError,
    OntologyError,
    ReproError,
    ScenarioError,
    SerializationError,
    SimulationError,
    StyleViolationError,
    SubsumptionCycleError,
    UnknownDefinitionError,
)
from repro.scenarioml import (
    Alternation,
    CompoundEvent,
    Episode,
    EventType,
    Instance,
    InstanceType,
    Iteration,
    Ontology,
    Optional_,
    Parameter,
    QualityAttribute,
    Scenario,
    ScenarioKind,
    ScenarioSet,
    SimpleEvent,
    Term,
    TypedEvent,
    parse_scenarioml,
    to_scenarioml_xml,
)
from repro.adl import (
    Architecture,
    C2Style,
    CommunicationIndex,
    Component,
    Connector,
    Direction,
    Interface,
    LayeredStyle,
    Link,
    Statechart,
    StatechartInstance,
    can_communicate,
    check_style,
    communication_index,
    communication_path,
    diff_architectures,
    parse_acme,
    parse_xadl,
    to_acme,
    to_xadl_xml,
)
from repro.core import (
    DynamicEvaluator,
    DynamicVerdict,
    EntityMapping,
    EvaluationReport,
    ForbidsDirectLink,
    Inconsistency,
    InconsistencyKind,
    Mapping,
    MappingTable,
    MustNotCommunicate,
    MustRouteVia,
    RequiresPath,
    ScenarioBindings,
    ScenarioVerdict,
    Sosae,
    TraceabilityMatrix,
    WalkthroughEngine,
    WalkthroughOptions,
    compute_coverage,
    evaluate_negative_scenario,
    render_report,
)
from repro.sim import (
    ArchitectureRuntime,
    ChannelPolicy,
    RuntimeConfig,
    Simulator,
)

__version__ = "1.0.0"

__all__ = [
    "Alternation",
    "ArchitectureError",
    "Architecture",
    "ArchitectureRuntime",
    "ArityError",
    "C2Style",
    "ChannelPolicy",
    "CommunicationIndex",
    "Component",
    "CompoundEvent",
    "Connector",
    "Direction",
    "DuplicateDefinitionError",
    "DynamicEvaluator",
    "DynamicVerdict",
    "EntityMapping",
    "Episode",
    "EpisodeCycleError",
    "EvaluationError",
    "EvaluationReport",
    "EventType",
    "ForbidsDirectLink",
    "Inconsistency",
    "InconsistencyKind",
    "Instance",
    "InstanceType",
    "Interface",
    "Iteration",
    "LayeredStyle",
    "Link",
    "Mapping",
    "MappingError",
    "MappingTable",
    "MustNotCommunicate",
    "MustRouteVia",
    "Ontology",
    "OntologyError",
    "Optional_",
    "Parameter",
    "QualityAttribute",
    "ReproError",
    "RequiresPath",
    "RuntimeConfig",
    "Scenario",
    "ScenarioBindings",
    "ScenarioError",
    "ScenarioKind",
    "ScenarioSet",
    "ScenarioVerdict",
    "SerializationError",
    "SimpleEvent",
    "SimulationError",
    "Simulator",
    "Sosae",
    "Statechart",
    "StatechartInstance",
    "StyleViolationError",
    "SubsumptionCycleError",
    "Term",
    "TraceabilityMatrix",
    "TypedEvent",
    "UnknownDefinitionError",
    "WalkthroughEngine",
    "WalkthroughOptions",
    "can_communicate",
    "check_style",
    "communication_index",
    "communication_path",
    "compute_coverage",
    "diff_architectures",
    "evaluate_negative_scenario",
    "parse_acme",
    "parse_scenarioml",
    "parse_xadl",
    "render_report",
    "to_acme",
    "to_scenarioml_xml",
    "to_xadl_xml",
    "__version__",
]
