"""Unit tests for scenario lints."""

from __future__ import annotations

from repro.scenarioml.events import SimpleEvent, TypedEvent
from repro.scenarioml.lint import LintOptions, lint_scenario_set
from repro.scenarioml.ontology import Ontology
from repro.scenarioml.scenario import Scenario, ScenarioSet


def rules(findings):
    return {finding.rule for finding in findings}


def minimal_world(*scenarios: Scenario, ontology=None) -> ScenarioSet:
    if ontology is None:
        ontology = Ontology("lint-world")
        ontology.define_event_type("do", "The system does the [thing]",
                                   parameters=["thing"])
    scenario_set = ScenarioSet(ontology)
    scenario_set.extend(scenarios)
    return scenario_set


class TestProseAndLength:
    def test_mostly_prose_flagged(self):
        scenario = Scenario(
            name="prosey",
            events=(
                SimpleEvent(text="a"),
                SimpleEvent(text="b"),
                TypedEvent(type_name="do", arguments={"thing": "x"}),
            ),
        )
        findings = lint_scenario_set(minimal_world(scenario))
        assert "prefer-typed-events" in rules(findings)

    def test_mostly_typed_not_flagged(self):
        scenario = Scenario(
            name="typed",
            events=(
                TypedEvent(type_name="do", arguments={"thing": "x"}),
                TypedEvent(type_name="do", arguments={"thing": "y"}),
                SimpleEvent(text="a"),
            ),
        )
        findings = lint_scenario_set(minimal_world(scenario))
        assert "prefer-typed-events" not in rules(findings)

    def test_long_scenario_flagged(self):
        scenario = Scenario(
            name="long",
            events=tuple(
                TypedEvent(type_name="do", arguments={"thing": str(i)})
                for i in range(12)
            ),
        )
        findings = lint_scenario_set(minimal_world(scenario))
        assert "long-scenario" in rules(findings)

    def test_step_budget_configurable(self):
        scenario = Scenario(
            name="longish",
            events=tuple(
                TypedEvent(type_name="do", arguments={"thing": str(i)})
                for i in range(5)
            ),
        )
        findings = lint_scenario_set(
            minimal_world(scenario), LintOptions(max_steps=3)
        )
        assert "long-scenario" in rules(findings)


class TestOntologyLints:
    def test_similar_texts_flagged(self):
        ontology = Ontology("similar")
        ontology.define_event_type("saveRecord", "The system saves the record")
        ontology.define_event_type(
            "savesRecord", "The system saves the records"
        )
        scenario = Scenario(
            name="s",
            events=(
                TypedEvent(type_name="saveRecord"),
                TypedEvent(type_name="savesRecord"),
            ),
        )
        findings = lint_scenario_set(minimal_world(scenario, ontology=ontology))
        assert "generalize-similar-types" in rules(findings)

    def test_shared_supertype_suppresses_similarity(self):
        ontology = Ontology("generalized")
        ontology.define_event_type("change", abstract=True)
        ontology.define_event_type(
            "saveRecord", "The system saves the record", super_name="change"
        )
        ontology.define_event_type(
            "savesRecord", "The system saves the records", super_name="change"
        )
        scenario = Scenario(
            name="s",
            events=(
                TypedEvent(type_name="saveRecord"),
                TypedEvent(type_name="savesRecord"),
            ),
        )
        findings = lint_scenario_set(minimal_world(scenario, ontology=ontology))
        assert "generalize-similar-types" not in rules(findings)

    def test_stale_parameter_flagged(self):
        ontology = Ontology("stale")
        ontology.define_event_type(
            "ping", "The system pings", parameters=["unused"]
        )
        scenario = Scenario(
            name="s",
            events=(
                TypedEvent(type_name="ping", arguments={"unused": "x"}),
                TypedEvent(type_name="ping", arguments={"unused": "x"}),
            ),
        )
        findings = lint_scenario_set(minimal_world(scenario, ontology=ontology))
        assert "stale-parameter" in rules(findings)

    def test_varying_parameter_not_stale(self):
        ontology = Ontology("varying")
        ontology.define_event_type(
            "ping", "The system pings", parameters=["target"]
        )
        scenario = Scenario(
            name="s",
            events=(
                TypedEvent(type_name="ping", arguments={"target": "x"}),
                TypedEvent(type_name="ping", arguments={"target": "y"}),
            ),
        )
        findings = lint_scenario_set(minimal_world(scenario, ontology=ontology))
        assert "stale-parameter" not in rules(findings)

    def test_referenced_parameter_not_stale(self):
        ontology = Ontology("referenced")
        ontology.define_event_type(
            "ping", "The system pings [target]", parameters=["target"]
        )
        scenario = Scenario(
            name="s",
            events=(TypedEvent(type_name="ping", arguments={"target": "x"}),),
        )
        findings = lint_scenario_set(minimal_world(scenario, ontology=ontology))
        assert "stale-parameter" not in rules(findings)

    def test_single_use_type_flagged(self):
        scenario = Scenario(
            name="s",
            events=(TypedEvent(type_name="do", arguments={"thing": "x"}),),
        )
        findings = lint_scenario_set(minimal_world(scenario))
        assert "single-use-type" in rules(findings)

    def test_reused_type_not_flagged(self):
        scenario = Scenario(
            name="s",
            events=(
                TypedEvent(type_name="do", arguments={"thing": "x"}),
                TypedEvent(type_name="do", arguments={"thing": "y"}),
            ),
        )
        findings = lint_scenario_set(minimal_world(scenario))
        assert "single-use-type" not in rules(findings)

    def test_unanchored_term_flagged(self):
        ontology = Ontology("terms")
        ontology.define_term("flux capacitor", "Makes time travel possible.")
        ontology.define_event_type("do", "The system does the [thing]",
                                   parameters=["thing"])
        scenario = Scenario(
            name="s",
            events=(TypedEvent(type_name="do", arguments={"thing": "x"}),),
        )
        findings = lint_scenario_set(minimal_world(scenario, ontology=ontology))
        assert "undefined-term-reference" in rules(findings)

    def test_anchored_term_not_flagged(self):
        ontology = Ontology("terms")
        ontology.define_term("portfolio", "A collection of investments.")
        ontology.define_event_type(
            "do", "The system updates the portfolio"
        )
        scenario = Scenario(
            name="s", events=(TypedEvent(type_name="do"),)
        )
        findings = lint_scenario_set(minimal_world(scenario, ontology=ontology))
        assert "undefined-term-reference" not in rules(findings)


class TestCaseStudies:
    def test_pims_lints_are_modest(self, pims):
        findings = lint_scenario_set(pims.scenarios)
        # The disciplined PIMS set has no prose-heavy or over-long scenarios.
        assert "prefer-typed-events" not in rules(findings)
        assert "long-scenario" not in rules(findings)

    def test_finding_str(self):
        from repro.scenarioml.lint import LintFinding

        finding = LintFinding(rule="r", message="m", scenario="s")
        assert str(finding) == "r [s]: m"
