"""The persistent run registry and its cross-run regression diffing."""

from __future__ import annotations

import json

import pytest

from repro.core.evaluator import Sosae
from repro.errors import ReproError
from repro.obs import (
    Profile,
    Recorder,
    RunRecord,
    RunRegistry,
    attribute_runs,
    bisect_runs,
    diff_runs,
    record_metric_value,
    scenario_costs,
    stage_summary,
    use,
)
from repro.obs.spans import Span


def _span(name: str, start: float, end: float) -> Span:
    span = Span(name)
    span.start_wall = start
    span.end_wall = end
    span.start_cpu = 0.0
    span.end_cpu = (end - start) / 2
    return span


def _record(run_id="r0001", metrics=None, stages=None, digest="d", label="l"):
    return RunRecord(
        run_id=run_id,
        label=label,
        timestamp=0.0,
        git_sha=None,
        wall_seconds=0.01,
        consistent=True,
        scenarios_passed=1,
        scenarios_failed=0,
        findings=0,
        report_digest=digest,
        metrics=metrics or {},
        stages=stages or {},
    )


def _counter(value):
    return {"type": "counter", "value": value}


def _histogram(count, mean):
    return {"type": "histogram", "count": count, "mean": mean}


@pytest.fixture
def recorded_evaluation(small_scenarios, chain_architecture, chain_mapping):
    """A real evaluation captured by a live recorder."""
    recorder = Recorder()
    with use(recorder):
        report = Sosae(
            small_scenarios, chain_architecture, chain_mapping
        ).evaluate()
    return report, recorder


class TestStageSummary:
    def test_aggregates_by_name_across_the_forest(self):
        root = _span("evaluate", 0.0, 1.0)
        first = _span("step", 0.0, 0.25)
        second = _span("step", 0.25, 0.75)
        root.add_child(first)
        root.add_child(second)
        other_root = _span("evaluate", 1.0, 1.5)
        stages = stage_summary((root, other_root))
        assert stages["evaluate"]["count"] == 2
        assert stages["evaluate"]["wall_seconds"] == pytest.approx(1.5)
        assert stages["step"]["count"] == 2
        assert stages["step"]["wall_seconds"] == pytest.approx(0.75)

    def test_empty_forest(self):
        assert stage_summary(()) == {}


class TestRunRegistry:
    def test_record_assigns_sequential_ids(self, tmp_path, recorded_evaluation):
        report, recorder = recorded_evaluation
        registry = RunRegistry(tmp_path / "runs")
        first = registry.record("demo", report, recorder, git_sha="abc")
        second = registry.record("demo", report, recorder, git_sha="abc")
        assert (first.run_id, second.run_id) == ("r0001", "r0002")
        assert first.report_digest == second.report_digest
        assert first.metrics == second.metrics
        assert "evaluate" in first.stages
        assert first.wall_seconds > 0

    def test_load_round_trips_records(self, tmp_path, recorded_evaluation):
        report, recorder = recorded_evaluation
        registry = RunRegistry(tmp_path / "runs")
        written = registry.record(
            "demo", report, recorder, git_sha="abc", timestamp=123.0
        )
        (loaded,) = registry.load()
        assert loaded == written

    def test_get_by_id_and_aliases(self, tmp_path, recorded_evaluation):
        report, recorder = recorded_evaluation
        registry = RunRegistry(tmp_path / "runs")
        registry.record("one", report, recorder)
        registry.record("two", report, recorder)
        assert registry.get("latest").label == "two"
        assert registry.get("previous").label == "one"
        assert registry.get("r0001").label == "one"
        with pytest.raises(ReproError):
            registry.get("r0042")

    def test_empty_registry_errors_helpfully(self, tmp_path):
        registry = RunRegistry(tmp_path / "nothing")
        with pytest.raises(ReproError, match="--record"):
            registry.get("latest")
        assert "no runs recorded" in registry.render_list()

    def test_corrupt_line_is_a_clear_error(self, tmp_path):
        registry = RunRegistry(tmp_path / "runs")
        registry.root.mkdir(parents=True)
        registry.path.write_text("not json\n")
        with pytest.raises(ReproError, match="line 1"):
            registry.load()

    def test_render_list_shows_every_run(self, tmp_path, recorded_evaluation):
        report, recorder = recorded_evaluation
        registry = RunRegistry(tmp_path / "runs")
        registry.record("first-label", report, recorder, timestamp=0.0)
        registry.record("second-label", report, recorder, timestamp=1.0)
        listing = registry.render_list()
        assert "r0001" in listing and "r0002" in listing
        assert "first-label" in listing and "second-label" in listing

    def test_render_list_shows_walkthrough_percentiles(
        self, tmp_path, recorded_evaluation
    ):
        report, recorder = recorded_evaluation
        registry = RunRegistry(tmp_path / "runs")
        registry.record("demo", report, recorder, timestamp=0.0)
        listing = registry.render_list()
        assert "walk p50" in listing and "walk p95" in listing
        walk = registry.load()[-1].metrics["walkthrough.scenario_seconds"]
        assert walk["p50"] is not None
        assert f"{walk['p50'] * 1e3:.2f}ms" in listing

    def test_render_list_dashes_for_pre_percentile_records(self, tmp_path):
        registry = RunRegistry(tmp_path / "runs")
        registry.root.mkdir(parents=True)
        record = _record(metrics={"lat": _histogram(3, 0.5)})
        with registry.path.open("w") as handle:
            handle.write(json.dumps(record.to_dict()) + "\n")
        lines = registry.render_list().splitlines()
        assert lines[-1].count(" - ") >= 2  # both percentile columns

    def test_from_dict_rejects_unknown_format(self):
        data = _record().to_dict()
        data["format"] = 99
        with pytest.raises(ReproError, match="format"):
            RunRecord.from_dict(data)


class TestDiffRuns:
    def test_identical_runs_are_clean_with_zero_deltas(self):
        metrics = {"index.hits": _counter(42)}
        before = _record("r0001", metrics=metrics)
        after = _record("r0002", metrics=metrics)
        diff = diff_runs(before, after)
        assert diff.clean
        assert all(delta.delta == 0 for delta in diff.metrics)
        rendered = diff.render()
        assert "r0001" in rendered and "r0002" in rendered
        assert "index.hits" in rendered
        assert "no regressions" in rendered

    def test_increase_beyond_threshold_is_flagged(self):
        before = _record("r0001", metrics={"steps": _counter(10)})
        after = _record("r0002", metrics={"steps": _counter(12)})
        diff = diff_runs(before, after, threshold=0.1)
        assert not diff.clean
        (delta,) = diff.metric_regressions
        assert delta.name == "steps"
        assert "<< regression" in diff.render()
        assert "regression(s)" in diff.render()

    def test_increase_within_threshold_is_tolerated(self):
        before = _record("r0001", metrics={"steps": _counter(100)})
        after = _record("r0002", metrics={"steps": _counter(105)})
        assert diff_runs(before, after, threshold=0.1).clean

    def test_decrease_is_never_a_regression(self):
        before = _record("r0001", metrics={"steps": _counter(100)})
        after = _record("r0002", metrics={"steps": _counter(50)})
        assert diff_runs(before, after, threshold=0.0).clean

    def test_any_increase_from_zero_is_flagged(self):
        before = _record("r0001", metrics={"misses": _counter(0)})
        after = _record("r0002", metrics={"misses": _counter(1)})
        assert not diff_runs(before, after).clean

    def test_histograms_flatten_to_count_and_mean(self):
        before = _record(
            "r0001", metrics={"lat": _histogram(10, 0.5)}
        )
        after = _record(
            "r0002", metrics={"lat": _histogram(10, 0.5)}
        )
        names = {delta.name for delta in diff_runs(before, after).metrics}
        assert names == {"lat.count", "lat.mean"}

    def test_histogram_means_are_timing_gated(self):
        before = _record("r0001", metrics={"lat": _histogram(10, 0.5)})
        after = _record("r0002", metrics={"lat": _histogram(10, 1.5)})
        # Without a time threshold the mean jitter is reported only.
        assert diff_runs(before, after, threshold=0.1).clean
        # With one, the tripled mean is a regression.
        assert not diff_runs(
            before, after, threshold=0.1, time_threshold=0.5
        ).clean

    def test_histogram_percentiles_flatten_when_present(self):
        snapshot = dict(_histogram(10, 0.5), p50=0.4, p95=0.9, p99=1.1)
        before = _record("r0001", metrics={"lat": snapshot})
        after = _record("r0002", metrics={"lat": snapshot})
        names = {delta.name for delta in diff_runs(before, after).metrics}
        assert names == {
            "lat.count", "lat.mean", "lat.p50", "lat.p95", "lat.p99",
        }

    def test_histogram_percentiles_are_timing_gated(self):
        before = _record(
            "r0001",
            metrics={"lat": dict(_histogram(10, 0.5), p95=0.5)},
        )
        after = _record(
            "r0002",
            metrics={"lat": dict(_histogram(10, 0.5), p95=2.0)},
        )
        # A quadrupled p95 is invisible to the count threshold...
        assert diff_runs(before, after, threshold=0.0).clean
        # ...but a regression once timing comparisons are requested.
        diff = diff_runs(before, after, threshold=0.0, time_threshold=0.5)
        assert not diff.clean
        assert [d.name for d in diff.metric_regressions] == ["lat.p95"]

    def test_stage_times_flagged_only_with_time_threshold(self):
        slow = {"evaluate": {"count": 1, "wall_seconds": 2.0, "cpu_seconds": 1.0}}
        fast = {"evaluate": {"count": 1, "wall_seconds": 1.0, "cpu_seconds": 0.5}}
        before = _record("r0001", stages=fast)
        after = _record("r0002", stages=slow)
        assert diff_runs(before, after).clean
        diff = diff_runs(before, after, time_threshold=0.5)
        assert not diff.clean
        assert diff.stage_regressions

    def test_render_notes_digest_change(self):
        before = _record("r0001", digest="aaaa")
        after = _record("r0002", digest="bbbb")
        rendered = diff_runs(before, after).render()
        assert "aaaa" in rendered and "bbbb" in rendered
        same = diff_runs(before, _record("r0002", digest="aaaa")).render()
        assert "unchanged" in same

    def test_metric_present_on_one_side_only(self):
        before = _record("r0001", metrics={"old": _counter(1)})
        after = _record("r0002", metrics={"new": _counter(1)})
        diff = diff_runs(before, after)
        by_name = {delta.name: delta for delta in diff.metrics}
        assert by_name["old"].after is None
        assert by_name["new"].before is None
        assert diff.clean  # appearing/disappearing is not an increase

    def test_json_round_trip_preserves_diffability(self, tmp_path):
        record = _record(
            "r0001",
            metrics={"steps": _counter(3)},
            stages={"evaluate": {"count": 1, "wall_seconds": 0.1,
                                 "cpu_seconds": 0.05}},
        )
        restored = RunRecord.from_dict(
            json.loads(json.dumps(record.to_dict()))
        )
        assert diff_runs(record, restored).clean


class TestScenarioCosts:
    def test_harvested_from_walkthrough_scenario_spans(
        self, recorded_evaluation
    ):
        _, recorder = recorded_evaluation
        costs = scenario_costs(recorder.roots)
        assert costs
        for entry in costs.values():
            assert entry["wall_seconds"] > 0
            assert entry["walks"] >= 1
            assert entry["shard"] == 0
            for counter in ("steps", "index_queries", "bfs_expansions",
                            "findings"):
                assert counter in entry

    def test_persisted_on_run_records(self, tmp_path, recorded_evaluation):
        report, recorder = recorded_evaluation
        registry = RunRegistry(tmp_path / "runs")
        registry.record("demo", report, recorder)
        (loaded,) = registry.load()
        assert loaded.scenarios
        assert set(loaded.scenarios) == set(scenario_costs(recorder.roots))

    def test_old_records_without_scenarios_still_load(self, tmp_path):
        record = _record()
        data = record.to_dict()
        del data["scenarios"]
        assert RunRecord.from_dict(data).scenarios == {}

    def test_empty_forest(self):
        assert scenario_costs(()) == {}


class TestAttributeRuns:
    def _recorded_pair(self, tmp_path, slow_scenario=None, extra=0.5):
        """Two recorded runs of the same evaluation; the second
        optionally has ``extra`` seconds injected into one scenario's
        span — the synthetic regression attribution must pinpoint."""
        from repro.systems.pims import build_pims

        pims = build_pims()
        sosae = Sosae(
            pims.scenarios, pims.architecture, pims.mapping,
            constraints=pims.constraints,
            walkthrough_options=pims.options,
        )
        registry = RunRegistry(tmp_path / "runs")
        records = []
        for doctor in (False, True):
            recorder = Recorder()
            with use(recorder):
                report = sosae.evaluate()
            if doctor and slow_scenario is not None:
                for root in recorder.roots:
                    for span in root.iter_spans():
                        if (
                            span.name == "walkthrough.scenario"
                            and span.attributes.get("scenario")
                            == slow_scenario
                        ):
                            span.end_wall += extra
            records.append(registry.record("pims", report, recorder))
        return records

    def test_injected_slowdown_tops_the_ranking(self, tmp_path):
        before, after = self._recorded_pair(
            tmp_path, slow_scenario="compute-net-worth"
        )
        attribution = attribute_runs(before, after)
        assert attribution.top is not None
        assert attribution.top.name == "compute-net-worth"
        assert attribution.top.delta == pytest.approx(0.5, rel=0.2)
        assert "timing only" in attribution.top.driver
        rendered = attribution.render(limit=3)
        lines = rendered.splitlines()
        first_row = lines[lines.index(next(
            line for line in lines if line.startswith("scenario")
        )) + 1]
        assert first_row.startswith("compute-net-worth")

    def test_new_and_removed_scenarios_are_called_out(self):
        before = _record(run_id="rA")
        after = _record(run_id="rB")
        object.__setattr__  # records are plain dataclasses; rebuild
        before = RunRecord.from_dict(
            {**before.to_dict(),
             "scenarios": {"old": {"wall_seconds": 0.1}}}
        )
        after = RunRecord.from_dict(
            {**after.to_dict(),
             "scenarios": {"new": {"wall_seconds": 0.2}}}
        )
        attribution = attribute_runs(before, after)
        drivers = {row.name: row.driver for row in attribution.scenarios}
        # The cause row names which run actually has the scenario.
        assert drivers["new"] == "new scenario (only in rB)"
        assert drivers["old"] == "scenario removed (only in rA)"
        # One-sided rows render with a '-' on the missing side, never
        # a KeyError or a spurious zero-counter comparison.
        by_name = {row.name: row for row in attribution.scenarios}
        assert by_name["new"].before_wall is None
        assert by_name["new"].after_wall == pytest.approx(0.2)
        assert by_name["old"].after_wall is None
        assert by_name["new"].counters == {} and by_name["old"].counters == {}
        rendered = attribution.render()
        assert "new scenario (only in rB)" in rendered
        assert "scenario removed (only in rA)" in rendered

    def test_work_unit_growth_named_as_cause(self):
        before = RunRecord.from_dict(
            {**_record(run_id="rA").to_dict(),
             "scenarios": {"s": {"wall_seconds": 0.1, "steps": 10}}}
        )
        after = RunRecord.from_dict(
            {**_record(run_id="rB").to_dict(),
             "scenarios": {"s": {"wall_seconds": 0.4, "steps": 40}}}
        )
        attribution = attribute_runs(before, after)
        assert attribution.top.name == "s"
        assert "steps 10 -> 40" in attribution.top.driver

    def test_render_without_costs_shows_placeholder(self):
        attribution = attribute_runs(
            _record(run_id="rA"), _record(run_id="rB")
        )
        assert attribution.top is None
        assert "per-scenario costs" in attribution.render()


class TestProfilePersistence:
    def _profile(self):
        return Profile(
            counts={("m:f:1", "m:g:2"): 5, ("m:f:1",): 2},
            hz=97.0,
            wall_seconds=0.25,
        )

    def test_record_persists_the_folded_artifact(
        self, tmp_path, recorded_evaluation
    ):
        report, recorder = recorded_evaluation
        registry = RunRegistry(tmp_path / "runs")
        profile = self._profile()
        record = registry.record("label", report, recorder, profile=profile)
        assert record.profile["digest"] == profile.digest()
        assert record.profile["samples"] == 7
        assert record.profile["stacks"] == 2
        assert record.profile["hz"] == 97.0
        path = registry.profile_path(record.run_id)
        assert path.read_text(encoding="utf-8") == profile.to_folded()

    def test_load_profile_round_trips(self, tmp_path, recorded_evaluation):
        report, recorder = recorded_evaluation
        registry = RunRegistry(tmp_path / "runs")
        registry.record("label", report, recorder, profile=self._profile())
        assert registry.load_profile("latest") == self._profile()

    def test_unprofiled_run_errors_helpfully(
        self, tmp_path, recorded_evaluation
    ):
        report, recorder = recorded_evaluation
        registry = RunRegistry(tmp_path / "runs")
        registry.record("label", report, recorder)
        with pytest.raises(ReproError, match="no recorded profile"):
            registry.load_profile("latest")

    def test_tampered_artifact_fails_the_digest_check(
        self, tmp_path, recorded_evaluation
    ):
        report, recorder = recorded_evaluation
        registry = RunRegistry(tmp_path / "runs")
        record = registry.record(
            "label", report, recorder, profile=self._profile()
        )
        path = registry.profile_path(record.run_id)
        path.write_text(path.read_text() + "m:rogue:9 1\n")
        with pytest.raises(ReproError, match="digest"):
            registry.load_profile(record.run_id)

    def test_missing_artifact_is_a_clear_error(
        self, tmp_path, recorded_evaluation
    ):
        report, recorder = recorded_evaluation
        registry = RunRegistry(tmp_path / "runs")
        record = registry.record(
            "label", report, recorder, profile=self._profile()
        )
        registry.profile_path(record.run_id).unlink()
        with pytest.raises(ReproError, match="missing"):
            registry.load_profile(record.run_id)

    def test_records_without_profiles_still_load(self, tmp_path):
        registry = RunRegistry(tmp_path / "runs")
        data = _record().to_dict()
        data.pop("profile", None)
        registry.path.parent.mkdir(parents=True, exist_ok=True)
        registry.path.write_text(json.dumps(data) + "\n")
        (loaded,) = registry.load()
        assert loaded.profile == {}


class TestRecordMetricValue:
    def test_record_fields_and_consistent(self):
        record = _record()
        assert record_metric_value(record, "findings") == 0.0
        assert record_metric_value(record, "wall_seconds") == 0.01
        assert record_metric_value(record, "consistent") == 1.0

    def test_metric_scalars_resolve(self):
        record = _record(metrics={"walkthrough.steps": _counter(12)})
        assert record_metric_value(record, "walkthrough.steps") == 12.0

    def test_absent_metric_is_none(self):
        assert record_metric_value(_record(), "no.such.metric") is None


class TestBisectRuns:
    def _history(self, values, metric="findings"):
        records = []
        for index, value in enumerate(values, start=1):
            data = _record(run_id=f"r{index:04d}").to_dict()
            if metric == "findings":
                data["findings"] = int(value)
            else:
                data["metrics"] = {metric: _counter(value)}
            records.append(RunRecord.from_dict(data))
        return records

    def test_names_the_first_stepped_run(self):
        records = self._history([0, 0, 0, 0, 2, 2])
        result = bisect_runs(records, "findings", window=3)
        assert result.step is not None
        assert result.step.run_id == "r0005"
        rendered = result.render()
        assert "<< step" in rendered
        assert "stepped at r0005" in rendered

    def test_clean_history_has_no_step(self):
        result = bisect_runs(
            self._history([0, 0, 0, 0, 0, 0]), "findings", window=3
        )
        assert result.step is None
        assert "no step" in result.render()

    def test_metric_scalars_bisect_too(self):
        records = self._history(
            [100, 102, 98, 101, 99, 400, 401], metric="walkthrough.steps"
        )
        result = bisect_runs(records, "walkthrough.steps", window=4)
        assert result.step.run_id == "r0006"

    def test_runs_missing_the_metric_are_skipped_and_reported(self):
        records = self._history(
            [100, 102, 98, 101, 99, 400], metric="walkthrough.steps"
        )
        records.insert(2, _record(run_id="r9999"))
        result = bisect_runs(records, "walkthrough.steps", window=4)
        assert result.skipped == ("r9999",)
        assert result.step.run_id == "r0006"
        assert "skipped 1 run(s)" in result.render()

    def test_unknown_metric_errors(self):
        with pytest.raises(ReproError, match="no recorded run carries"):
            bisect_runs(self._history([0, 0, 0, 0]), "no.such", window=3)

    def test_short_history_errors_not_silently_passes(self):
        with pytest.raises(ReproError, match="at least"):
            bisect_runs(self._history([0, 0]), "findings", window=3)


class TestTenantScoping:
    def test_record_carries_tenant_and_job(
        self, tmp_path, recorded_evaluation
    ):
        report, recorder = recorded_evaluation
        registry = RunRegistry(tmp_path / "runs")
        written = registry.record(
            "job-run", report, recorder, tenant="acme", job_id="j0001"
        )
        (loaded,) = registry.load()
        assert loaded.tenant == "acme"
        assert loaded.job_id == "j0001"
        assert loaded == written

    def test_load_filters_by_tenant(self, tmp_path, recorded_evaluation):
        report, recorder = recorded_evaluation
        registry = RunRegistry(tmp_path / "runs")
        registry.record("a1", report, recorder, tenant="acme")
        registry.record("b1", report, recorder, tenant="beta")
        registry.record("a2", report, recorder, tenant="acme")
        assert [r.label for r in registry.load(tenant="acme")] == ["a1", "a2"]
        assert registry.load(tenant="nobody") == ()

    def test_aliases_resolve_within_the_tenant(
        self, tmp_path, recorded_evaluation
    ):
        report, recorder = recorded_evaluation
        registry = RunRegistry(tmp_path / "runs")
        registry.record("b1", report, recorder, tenant="beta")
        registry.record("a1", report, recorder, tenant="acme")
        # "latest" inside beta's slice is b1 even though a1 is newer
        assert registry.get("latest", tenant="beta").label == "b1"
        # an id from another tenant is invisible under the scope
        with pytest.raises(ReproError, match="beta"):
            registry.get("r0002", tenant="beta")

    def test_render_list_grows_a_tenant_column_when_needed(
        self, tmp_path, recorded_evaluation
    ):
        report, recorder = recorded_evaluation
        registry = RunRegistry(tmp_path / "runs")
        registry.record("plain", report, recorder)
        assert "tenant" not in registry.render_list()
        registry.record("scoped", report, recorder, tenant="acme")
        listing = registry.render_list()
        assert "tenant" in listing.splitlines()[0]
        assert "acme" in listing

    def test_pre_tenant_lines_load_as_untenanted(self, tmp_path):
        registry = RunRegistry(tmp_path / "runs")
        registry.root.mkdir(parents=True)
        legacy = _record().to_dict()
        del legacy["tenant"]
        del legacy["job_id"]
        registry.path.write_text(json.dumps(legacy) + "\n")
        (loaded,) = registry.load()
        assert loaded.tenant == ""
        assert loaded.job_id == ""
