"""Miscellaneous surface tests: error hierarchy, versioning, module entry
point, and runtime execution of entry/exit actions."""

from __future__ import annotations

import subprocess
import sys

import pytest

import repro
from repro import errors


class TestErrorHierarchy:
    def test_every_error_is_a_repro_error(self):
        for name in dir(errors):
            candidate = getattr(errors, name)
            if (
                isinstance(candidate, type)
                and issubclass(candidate, Exception)
                and candidate is not errors.ReproError
            ):
                assert issubclass(candidate, errors.ReproError), name

    def test_specializations(self):
        assert issubclass(errors.DuplicateDefinitionError, errors.OntologyError)
        assert issubclass(errors.UnknownDefinitionError, errors.OntologyError)
        assert issubclass(errors.SubsumptionCycleError, errors.OntologyError)
        assert issubclass(errors.ArityError, errors.OntologyError)
        assert issubclass(errors.EpisodeCycleError, errors.ScenarioError)
        assert issubclass(
            errors.StyleViolationError, errors.ArchitectureError
        )

    def test_catching_the_base_class_works(self):
        from repro import Ontology

        with pytest.raises(errors.ReproError):
            Ontology("")


class TestPackageSurface:
    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_module_entry_point(self):
        completed = subprocess.run(
            [sys.executable, "-m", "repro", "table", "pims"],
            capture_output=True,
            text=True,
            timeout=120,
        )
        assert completed.returncode == 0
        assert "Master Controller" in completed.stdout


class TestRuntimeEntryExitActions:
    def test_entry_send_actions_are_executed_by_the_runtime(self):
        from repro.adl.behavior import Action, ActionKind, Statechart
        from repro.adl.structure import Architecture, Interface
        from repro.sim.network import ChannelPolicy
        from repro.sim.runtime import ArchitectureRuntime, RuntimeConfig

        architecture = Architecture("doors")
        architecture.add_component("door", interfaces=[Interface("port")])
        architecture.add_component("bell", interfaces=[Interface("port")])
        architecture.link(("door", "port"), ("bell", "port"))
        chart = Statechart("door-chart")
        chart.add_state("closed", initial=True)
        chart.add_state(
            "open",
            entry_actions=[Action(ActionKind.SEND, "ding", via="port")],
        )
        chart.add_transition("closed", "open", "push")
        architecture.attach_behavior("door", chart)
        runtime = ArchitectureRuntime(
            architecture, RuntimeConfig(policy=ChannelPolicy(latency=1.0))
        )
        runtime.inject("bell", "push", destination="door")
        runtime.run()
        assert runtime.trace.was_delivered("ding", "bell")
        assert runtime.statechart("door").current == "open"
