"""Unit tests for behavioral completeness checking."""

from __future__ import annotations

from repro.adl.behavior import Action, ActionKind, Statechart
from repro.core.behavior_check import (
    BehaviorCheckOptions,
    check_behavioral_support,
)
from repro.core.consistency import InconsistencyKind, Severity


def attach_reactor(architecture, element, trigger):
    chart = Statechart(f"{element}-chart")
    chart.add_state("idle", initial=True)
    chart.add_transition(
        "idle", "idle", trigger,
        actions=[Action(ActionKind.INTERNAL)],
    )
    architecture.attach_behavior(element, chart)


class TestBehaviorCheck:
    def test_supported_trigger_passes(
        self, small_scenarios, chain_architecture, chain_mapping
    ):
        attach_reactor(chain_architecture, "logic", "create-msg")
        findings = check_behavioral_support(
            small_scenarios,
            chain_architecture,
            chain_mapping,
            BehaviorCheckOptions(trigger_of={"create": "create-msg"}),
        )
        assert findings == []

    def test_missing_trigger_reported(
        self, small_scenarios, chain_architecture, chain_mapping
    ):
        attach_reactor(chain_architecture, "logic", "some-other-msg")
        findings = check_behavioral_support(
            small_scenarios,
            chain_architecture,
            chain_mapping,
            BehaviorCheckOptions(trigger_of={"create": "create-msg"}),
        )
        (finding,) = findings
        assert finding.kind is InconsistencyKind.BEHAVIORAL_DIVERGENCE
        assert "silently discarded" in finding.message
        assert finding.scenario == "make-widget"

    def test_unbound_event_types_skipped(
        self, small_scenarios, chain_architecture, chain_mapping
    ):
        findings = check_behavioral_support(
            small_scenarios, chain_architecture, chain_mapping
        )
        assert findings == []

    def test_chartless_components_skipped_by_default(
        self, small_scenarios, chain_architecture, chain_mapping
    ):
        findings = check_behavioral_support(
            small_scenarios,
            chain_architecture,
            chain_mapping,
            BehaviorCheckOptions(trigger_of={"create": "create-msg"}),
        )
        assert findings == []

    def test_require_charts_warns(
        self, small_scenarios, chain_architecture, chain_mapping
    ):
        findings = check_behavioral_support(
            small_scenarios,
            chain_architecture,
            chain_mapping,
            BehaviorCheckOptions(
                trigger_of={"create": "create-msg"}, require_charts=True
            ),
        )
        assert findings
        assert all(f.severity is Severity.WARNING for f in findings)

    def test_any_mapped_component_supporting_suffices(
        self, small_scenarios, chain_architecture, chain_mapping
    ):
        # create maps to (logic, store); only store reacts — still fine.
        attach_reactor(chain_architecture, "store", "create-msg")
        attach_reactor(chain_architecture, "logic", "unrelated")
        findings = check_behavioral_support(
            small_scenarios,
            chain_architecture,
            chain_mapping,
            BehaviorCheckOptions(trigger_of={"create": "create-msg"}),
        )
        assert findings == []

    def test_crash_charts_support_message_triggers(self, crash):
        findings = check_behavioral_support(
            crash.scenarios,
            crash.architecture,
            crash.mapping,
            BehaviorCheckOptions(
                trigger_of={
                    # Entity-level messaging: centers must consume requests
                    # and failure notices.
                    "sendMessage": "request",
                    "receiveFailureMessage": "failure",
                }
            ),
        )
        assert findings == []

    def test_crash_detects_unconsumed_trigger(self, crash):
        findings = check_behavioral_support(
            crash.scenarios,
            crash.architecture,
            crash.mapping,
            BehaviorCheckOptions(
                trigger_of={"shutdownEntity": "graceful-shutdown-command"}
            ),
        )
        assert findings  # no chart consumes that message anywhere
