"""Unit tests for scenario/ontology validation."""

from __future__ import annotations

import pytest

from repro.errors import ScenarioError
from repro.scenarioml.events import Episode, SimpleEvent, TypedEvent
from repro.scenarioml.ontology import Ontology
from repro.scenarioml.scenario import Scenario, ScenarioSet
from repro.scenarioml.validation import (
    IssueSeverity,
    assert_valid,
    validate_scenario,
    validate_scenario_set,
)


def errors(issues):
    return [i for i in issues if i.severity is IssueSeverity.ERROR]


def warnings(issues):
    return [i for i in issues if i.severity is IssueSeverity.WARNING]


class TestValidateScenario:
    def test_clean_scenario_has_no_issues(
        self, small_ontology: Ontology, small_scenarios: ScenarioSet
    ):
        scenario = small_scenarios.get("make-widget")
        assert validate_scenario(scenario, small_ontology) == []

    def test_unknown_event_type_is_error(self, small_ontology: Ontology):
        scenario = Scenario(
            name="bad", events=(TypedEvent(type_name="ghost"),)
        )
        issues = validate_scenario(scenario, small_ontology)
        assert len(errors(issues)) == 1
        assert "ghost" in issues[0].message

    def test_arity_mismatch_is_error(self, small_ontology: Ontology):
        scenario = Scenario(
            name="bad-args",
            events=(TypedEvent(type_name="create", arguments={}),),
        )
        issues = validate_scenario(scenario, small_ontology)
        assert errors(issues)

    def test_abstract_instantiation_is_error(self, small_ontology: Ontology):
        scenario = Scenario(
            name="abstract",
            events=(
                TypedEvent(type_name="act", arguments={"subject": "x"}),
            ),
        )
        issues = validate_scenario(scenario, small_ontology)
        assert errors(issues)

    def test_unknown_actor_is_warning(self, small_ontology: Ontology):
        scenario = Scenario(
            name="actor",
            events=(SimpleEvent(text="x"),),
            actors=("Nobody",),
        )
        issues = validate_scenario(scenario, small_ontology)
        assert warnings(issues)
        assert not errors(issues)

    def test_known_actor_instance_accepted(self, small_ontology: Ontology):
        scenario = Scenario(
            name="actor-ok",
            events=(SimpleEvent(text="x"),),
            actors=("alice",),
        )
        assert validate_scenario(scenario, small_ontology) == []

    def test_actor_may_be_a_class(self, small_ontology: Ontology):
        scenario = Scenario(
            name="actor-class",
            events=(SimpleEvent(text="x"),),
            actors=("Human",),
        )
        assert validate_scenario(scenario, small_ontology) == []

    def test_episode_reference_checked_against_set(
        self, small_ontology: Ontology
    ):
        scenario_set = ScenarioSet(small_ontology)
        scenario = Scenario(
            name="eps", events=(Episode(scenario_name="missing"),)
        )
        scenario_set.add(scenario)
        issues = validate_scenario(scenario, small_ontology, scenario_set)
        assert errors(issues)

    def test_episode_without_set_is_not_checked(
        self, small_ontology: Ontology
    ):
        scenario = Scenario(
            name="eps", events=(Episode(scenario_name="missing"),)
        )
        assert validate_scenario(scenario, small_ontology) == []

    def test_issue_str_includes_location(self, small_ontology: Ontology):
        scenario = Scenario(
            name="bad",
            events=(TypedEvent(type_name="ghost", label="3"),),
        )
        (issue,) = validate_scenario(scenario, small_ontology)
        assert "bad step 3" in str(issue)
        assert str(issue).startswith("[error]")


class TestValidateScenarioSet:
    def test_clean_set(self, small_scenarios: ScenarioSet):
        assert validate_scenario_set(small_scenarios) == []

    def test_broken_ontology_reported(self):
        ontology = Ontology("broken")
        ontology.define_event_type("e")
        ontology.define_instance("ghostly", "Ghost")  # dangling class name
        scenario_set = ScenarioSet(ontology)
        scenario_set.add(
            Scenario(name="s", events=(SimpleEvent(text="x"),))
        )
        issues = validate_scenario_set(scenario_set)
        assert any(i.scenario_name == "<ontology>" for i in issues)

    def test_alternative_of_checked(self, small_ontology: Ontology):
        scenario_set = ScenarioSet(small_ontology)
        scenario_set.add(
            Scenario(
                name="alt",
                events=(SimpleEvent(text="x"),),
                alternative_of="missing-main",
            )
        )
        issues = validate_scenario_set(scenario_set)
        assert errors(issues)

    def test_episode_cycle_reported_not_raised(
        self, small_ontology: Ontology
    ):
        scenario_set = ScenarioSet(small_ontology)
        scenario_set.add(
            Scenario(name="a", events=(Episode(scenario_name="b"),))
        )
        scenario_set.add(
            Scenario(name="b", events=(Episode(scenario_name="a"),))
        )
        issues = validate_scenario_set(scenario_set)
        assert any("cycle" in i.message for i in issues)

    def test_assert_valid_passes_clean_set(
        self, small_scenarios: ScenarioSet
    ):
        assert_valid(small_scenarios)

    def test_assert_valid_raises_with_summary(
        self, small_ontology: Ontology
    ):
        scenario_set = ScenarioSet(small_ontology)
        scenario_set.add(
            Scenario(name="bad", events=(TypedEvent(type_name="ghost"),))
        )
        with pytest.raises(ScenarioError) as excinfo:
            assert_valid(scenario_set)
        assert "ghost" in str(excinfo.value)

    def test_warnings_do_not_fail_assert_valid(
        self, small_ontology: Ontology
    ):
        scenario_set = ScenarioSet(small_ontology)
        scenario_set.add(
            Scenario(
                name="warned",
                events=(SimpleEvent(text="x"),),
                actors=("Nobody",),
            )
        )
        assert_valid(scenario_set)

    def test_pims_set_is_valid(self, pims):
        assert errors(validate_scenario_set(pims.scenarios)) == []

    def test_crash_set_is_valid(self, crash):
        assert errors(validate_scenario_set(crash.scenarios)) == []
