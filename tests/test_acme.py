"""Unit tests for the Acme-lite interchange format."""

from __future__ import annotations

import pytest

from repro.adl.acme import parse_acme, to_acme
from repro.adl.diff import diff_architectures
from repro.adl.structure import Architecture, Direction, Interface
from repro.errors import SerializationError


def demo_architecture() -> Architecture:
    architecture = Architecture("demo sys", style="layered", description="d")
    architecture.add_component(
        "master controller",
        description="the UI",
        responsibilities=("Interact with the user", "Invoke services"),
        interfaces=[Interface("calls", Direction.OUT)],
        layer=2,
    )
    architecture.add_component(
        "store", interfaces=[Interface("services", Direction.IN)], layer=1
    )
    architecture.add_connector("bus", description="shared bus")
    architecture.link(("master controller", "calls"), ("bus", "a"))
    architecture.link(("bus", "b"), ("store", "services"))
    return architecture


class TestRoundtrip:
    def test_structure_preserved(self):
        original = demo_architecture()
        parsed = parse_acme(to_acme(original))
        assert parsed.name == "demo sys"
        assert parsed.style == "layered"
        assert diff_architectures(original, parsed).is_empty

    def test_description_preserved(self):
        parsed = parse_acme(to_acme(demo_architecture()))
        assert parsed.description == "d"
        assert parsed.component("master controller").description == "the UI"
        assert parsed.connector("bus").description == "shared bus"

    def test_responsibilities_preserved_in_order(self):
        parsed = parse_acme(to_acme(demo_architecture()))
        assert parsed.component("master controller").responsibilities == (
            "Interact with the user",
            "Invoke services",
        )

    def test_port_directions_preserved(self):
        parsed = parse_acme(to_acme(demo_architecture()))
        assert (
            parsed.component("master controller").interface("calls").direction
            is Direction.OUT
        )
        assert (
            parsed.component("store").interface("services").direction
            is Direction.IN
        )

    def test_properties_preserved(self):
        original = demo_architecture()
        original.component("store").properties["replication"] = "3"
        parsed = parse_acme(to_acme(original))
        assert parsed.component("store").properties["replication"] == "3"

    def test_quoted_names_with_special_characters(self):
        architecture = Architecture('tricky "quoted" name')
        architecture.add_component("a b\\c")
        architecture.add_component("plain")
        architecture.link(("a b\\c", "port one"), ("plain", "p"))
        parsed = parse_acme(to_acme(architecture))
        assert parsed.name == 'tricky "quoted" name'
        assert parsed.has_element("a b\\c")
        assert parsed.links_between("a b\\c", "plain")

    def test_dotted_component_name_quoted_and_roundtripped(self):
        architecture = Architecture("dots")
        architecture.add_component("v1.service")
        architecture.add_component("plain")
        architecture.link(("v1.service", "p"), ("plain", "q"))
        parsed = parse_acme(to_acme(architecture))
        assert parsed.has_element("v1.service")
        assert parsed.links_between("v1.service", "plain")

    def test_pims_roundtrip(self, pims):
        parsed = parse_acme(to_acme(pims.architecture))
        diff = diff_architectures(pims.architecture, parsed)
        assert diff.is_empty, diff.summary()

    def test_comments_ignored(self):
        text = to_acme(demo_architecture())
        commented = "// header comment\n" + text
        parsed = parse_acme(commented)
        assert parsed.name == "demo sys"


class TestParsingErrors:
    def test_requires_system_keyword(self):
        with pytest.raises(SerializationError):
            parse_acme("Component x = { };")

    def test_unbalanced_braces(self):
        with pytest.raises(SerializationError):
            parse_acme("System s = { Component c = { ")

    def test_unknown_keyword_in_body(self):
        with pytest.raises(SerializationError):
            parse_acme("System s = { Widget w = { }; };")

    def test_unknown_keyword_in_component(self):
        with pytest.raises(SerializationError):
            parse_acme("System s = { Component c = { Role r; }; };")

    def test_unknown_direction(self):
        with pytest.raises(SerializationError):
            parse_acme(
                "System s = { Component c = { Port p : diagonal; }; };"
            )

    def test_garbage_input(self):
        with pytest.raises(SerializationError):
            parse_acme("System s = @@@")

    def test_attachment_to_unknown_element(self):
        text = (
            "System s = { Component a = { Port p; }; "
            "Attachment a.p to ghost.q; };"
        )
        with pytest.raises(Exception):
            parse_acme(text)
