"""Unit tests for requirements-architecture traceability."""

from __future__ import annotations

from repro.adl.diff import diff_architectures
from repro.core.traceability import TraceabilityMatrix


class TestTraceLinks:
    def test_links_built_from_mapping(
        self, small_scenarios, chain_mapping
    ):
        matrix = TraceabilityMatrix(small_scenarios, chain_mapping)
        assert set(matrix.components_of("make-widget")) == {
            "logic",
            "store",
            "ui",
        }
        assert set(matrix.components_of("drop-widget")) == {"logic", "store"}

    def test_scenarios_of_component(self, small_scenarios, chain_mapping):
        matrix = TraceabilityMatrix(small_scenarios, chain_mapping)
        assert set(matrix.scenarios_of("logic")) == {
            "make-widget",
            "drop-widget",
        }
        assert matrix.scenarios_of("ui") == ("make-widget",)

    def test_links_carry_inducing_event_types(
        self, small_scenarios, chain_mapping
    ):
        matrix = TraceabilityMatrix(small_scenarios, chain_mapping)
        link = next(
            l
            for l in matrix.links
            if l.scenario == "make-widget" and l.component == "ui"
        )
        assert link.event_types == ("notify",)
        assert "notify" in str(link)

    def test_orphan_scenarios(self, small_scenarios, chain_mapping):
        chain_mapping.unmap_event("destroy")
        matrix = TraceabilityMatrix(small_scenarios, chain_mapping)
        assert matrix.orphan_scenarios() == ("drop-widget",)

    def test_no_orphans_with_full_mapping(
        self, small_scenarios, chain_mapping
    ):
        matrix = TraceabilityMatrix(small_scenarios, chain_mapping)
        assert matrix.orphan_scenarios() == ()


class TestImpactAnalysis:
    def test_impacted_scenarios_by_names(
        self, small_scenarios, chain_mapping
    ):
        matrix = TraceabilityMatrix(small_scenarios, chain_mapping)
        assert matrix.impacted_scenarios(["ui"]) == ("make-widget",)
        assert set(matrix.impacted_scenarios(["store"])) == {
            "make-widget",
            "drop-widget",
        }

    def test_impacted_scenarios_from_diff(
        self, small_scenarios, chain_mapping, chain_architecture
    ):
        variant = chain_architecture.clone("variant")
        variant.excise_links_between("ui", "ui-logic")
        diff = diff_architectures(chain_architecture, variant)
        matrix = TraceabilityMatrix(small_scenarios, chain_mapping)
        assert matrix.impacted_scenarios(diff) == ("make-widget",)

    def test_unrelated_change_impacts_nothing(
        self, small_scenarios, chain_mapping, chain_architecture
    ):
        variant = chain_architecture.clone("variant")
        variant.add_component("bystander")
        diff = diff_architectures(chain_architecture, variant)
        matrix = TraceabilityMatrix(small_scenarios, chain_mapping)
        assert matrix.impacted_scenarios(diff) == ()

    def test_impacted_components_by_scenario_name(
        self, small_scenarios, chain_mapping
    ):
        matrix = TraceabilityMatrix(small_scenarios, chain_mapping)
        assert set(matrix.impacted_components("drop-widget")) == {
            "logic",
            "store",
        }

    def test_impacted_components_by_scenario_object(
        self, small_scenarios, chain_mapping
    ):
        matrix = TraceabilityMatrix(small_scenarios, chain_mapping)
        scenario = small_scenarios.get("make-widget")
        assert "ui" in matrix.impacted_components(scenario)

    def test_impacted_components_by_iterable(
        self, small_scenarios, chain_mapping
    ):
        matrix = TraceabilityMatrix(small_scenarios, chain_mapping)
        impacted = matrix.impacted_components(
            ["make-widget", "drop-widget"]
        )
        assert set(impacted) == {"ui", "logic", "store"}

    def test_render_grid(self, small_scenarios, chain_mapping):
        matrix = TraceabilityMatrix(small_scenarios, chain_mapping)
        rendered = matrix.render()
        assert "make-widget" in rendered
        assert "X" in rendered

    def test_pims_excision_impacts_only_share_price_scenarios(self, pims):
        matrix = TraceabilityMatrix(pims.scenarios, pims.mapping)
        diff = diff_architectures(
            pims.architecture, pims.excised_architecture()
        )
        impacted = matrix.impacted_scenarios(diff)
        assert "get-share-prices" in impacted
        assert "create-portfolio" not in impacted
