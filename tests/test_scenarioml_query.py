"""Unit tests for scenario/ontology queries."""

from __future__ import annotations

from repro.scenarioml.events import TypedEvent
from repro.scenarioml.ontology import Ontology
from repro.scenarioml.query import (
    actors_in_use,
    entities_referenced,
    event_type_usage,
    events_of_type,
    reuse_factor,
    unused_event_types,
)
from repro.scenarioml.scenario import Scenario, ScenarioSet


class TestUsage:
    def test_counts_occurrences_across_scenarios(self, small_scenarios):
        usage = event_type_usage(small_scenarios.scenarios)
        assert usage["create"] == 1
        assert usage["destroy"] == 1
        assert usage["notify"] == 1

    def test_counts_repeats_within_one_scenario(self, small_ontology):
        scenario = Scenario(
            name="rep",
            events=(
                TypedEvent(type_name="create", arguments={"subject": "a"}),
                TypedEvent(type_name="create", arguments={"subject": "b"}),
            ),
        )
        usage = event_type_usage([scenario])
        assert usage["create"] == 2

    def test_empty_scenarios_have_empty_usage(self):
        assert event_type_usage([]) == {}


class TestEventsOfType:
    def test_exact_match(self, small_scenarios):
        matches = events_of_type(small_scenarios.scenarios, "create")
        assert len(matches) == 1
        scenario, event = matches[0]
        assert scenario.name == "make-widget"
        assert event.type_name == "create"

    def test_subtype_matching(self, small_ontology, small_scenarios):
        matches = events_of_type(
            small_scenarios.scenarios,
            "act",
            ontology=small_ontology,
            include_subtypes=True,
        )
        found = {event.type_name for _scenario, event in matches}
        assert found == {"create", "destroy"}

    def test_without_subtypes_abstract_type_matches_nothing(
        self, small_scenarios
    ):
        assert events_of_type(small_scenarios.scenarios, "act") == ()


class TestEntitiesAndActors:
    def test_entities_referenced(self, small_ontology, small_scenarios):
        scenario = small_scenarios.get("make-widget")
        assert entities_referenced(scenario, small_ontology) == ("alice",)

    def test_entities_deduplicated(self, small_ontology):
        scenario = Scenario(
            name="double",
            events=(
                TypedEvent(type_name="notify", arguments={"who": "alice"}),
                TypedEvent(type_name="notify", arguments={"who": "alice"}),
            ),
        )
        assert entities_referenced(scenario, small_ontology) == ("alice",)

    def test_actors_in_use(self, small_scenarios):
        assert actors_in_use(small_scenarios) == ("System",)


class TestReuse:
    def test_reuse_factor_no_events(self):
        assert reuse_factor([]) == 0.0

    def test_reuse_factor_one_each(self, small_scenarios):
        assert reuse_factor(small_scenarios.scenarios) == 1.0

    def test_reuse_factor_counts_repetition(self, small_ontology):
        scenario = Scenario(
            name="r",
            events=tuple(
                TypedEvent(type_name="create", arguments={"subject": str(i)})
                for i in range(4)
            ),
        )
        assert reuse_factor([scenario]) == 4.0

    def test_pims_reuses_event_types(self, pims):
        assert reuse_factor(pims.scenarios.scenarios) > 2.0


class TestUnusedEventTypes:
    def test_all_concrete_types_used(self, small_scenarios):
        assert unused_event_types(small_scenarios) == ()

    def test_unused_type_reported(self, small_ontology):
        small_ontology.define_event_type("lonely")
        scenarios = ScenarioSet(small_ontology)
        scenarios.add(
            Scenario(
                name="s",
                events=(
                    TypedEvent(type_name="create", arguments={"subject": "x"}),
                ),
            )
        )
        assert "lonely" in unused_event_types(scenarios)

    def test_abstract_types_not_reported(self, small_ontology):
        scenarios = ScenarioSet(small_ontology)
        scenarios.add(
            Scenario(
                name="s",
                events=(
                    TypedEvent(type_name="create", arguments={"subject": "x"}),
                ),
            )
        )
        assert "act" not in unused_event_types(scenarios)
