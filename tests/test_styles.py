"""Unit tests for architectural styles (framework, Layered, C2)."""

from __future__ import annotations

import pytest

from repro.adl.c2 import BOTTOM, TOP, C2Style, above_graph, upper_element
from repro.adl.layered import LayeredStyle
from repro.adl.structure import Architecture, Interface
from repro.adl.styles import (
    Style,
    StyleViolation,
    check_style,
    get_style,
    register_style,
    registered_styles,
)
from repro.errors import ArchitectureError, StyleViolationError


class TestStyleFramework:
    def test_builtin_styles_registered(self):
        assert "layered" in registered_styles()
        assert "c2" in registered_styles()

    def test_get_style_unknown_raises(self):
        with pytest.raises(ArchitectureError):
            get_style("baroque")

    def test_register_conflicting_instance_rejected(self):
        with pytest.raises(ArchitectureError):
            register_style(LayeredStyle())

    def test_architecture_without_style_conforms(self):
        architecture = Architecture("free")
        architecture.add_component("x")
        assert check_style(architecture) == []

    def test_violation_str(self):
        violation = StyleViolation("s", "r", "message", ("a", "b"))
        assert str(violation) == "s/r: message [a, b]"

    def test_assert_conforms_raises_with_summary(self):
        architecture = Architecture("bad", style="layered")
        architecture.add_component("unlayered")
        with pytest.raises(StyleViolationError) as excinfo:
            get_style("layered").assert_conforms(architecture)
        assert "layers-assigned" in str(excinfo.value)

    def test_duplicate_rule_names_rejected(self):
        class Dodgy(Style):
            name = "dodgy"

            def _register_rules(self):
                self.rule("r", lambda a: [])
                self.rule("r", lambda a: [])

        with pytest.raises(ArchitectureError):
            Dodgy()


class TestLayeredStyle:
    def test_conforming_chain(self, chain_architecture):
        chain_architecture.style = "layered"
        assert check_style(chain_architecture) == []

    def test_missing_layer_reported(self):
        architecture = Architecture("a", style="layered")
        architecture.add_component("floating")
        violations = check_style(architecture)
        assert [v.rule for v in violations] == ["layers-assigned"]

    def test_direct_link_across_two_layers_reported(self):
        architecture = Architecture("skip", style="layered")
        architecture.add_component("top", layer=3)
        architecture.add_component("bottom", layer=1)
        architecture.link(("top", "p"), ("bottom", "q"))
        violations = check_style(architecture)
        assert any(v.rule == "adjacent-layers-only" for v in violations)

    def test_adjacent_direct_link_allowed(self):
        architecture = Architecture("adj", style="layered")
        architecture.add_component("top", layer=2)
        architecture.add_component("bottom", layer=1)
        architecture.link(("top", "p"), ("bottom", "q"))
        assert check_style(architecture) == []

    def test_same_layer_link_allowed(self):
        architecture = Architecture("same", style="layered")
        architecture.add_component("a", layer=2)
        architecture.add_component("b", layer=2)
        architecture.link(("a", "p"), ("b", "q"))
        assert check_style(architecture) == []

    def test_connector_spanning_layers_reported(self):
        architecture = Architecture("span", style="layered")
        architecture.add_component("top", layer=3)
        architecture.add_component("bottom", layer=1)
        architecture.add_connector("bridge")
        architecture.link(("top", "p"), ("bridge", "a"))
        architecture.link(("bridge", "b"), ("bottom", "q"))
        violations = check_style(architecture)
        assert any(
            v.rule == "no-layer-skipping-connectors" for v in violations
        )

    def test_pims_architecture_conforms(self, pims):
        assert check_style(pims.architecture) == []


class TestC2Style:
    def make_valid(self) -> Architecture:
        architecture = Architecture("c2-ok", style="c2")
        architecture.add_component("upper", interfaces=[Interface(BOTTOM)])
        architecture.add_connector(
            "bus", interfaces=[Interface(TOP), Interface(BOTTOM)]
        )
        architecture.add_component("lower", interfaces=[Interface(TOP)])
        architecture.link(("bus", TOP), ("upper", BOTTOM))
        architecture.link(("lower", TOP), ("bus", BOTTOM))
        return architecture

    def test_valid_architecture_conforms(self):
        assert check_style(self.make_valid()) == []

    def test_direct_component_link_reported(self):
        architecture = self.make_valid()
        architecture.link(("upper", TOP), ("lower", BOTTOM))
        violations = check_style(architecture)
        assert any(
            v.rule == "components-attach-to-connectors" for v in violations
        )

    def test_non_top_bottom_interface_reported(self):
        architecture = Architecture("bad-iface", style="c2")
        architecture.add_component("a", interfaces=[Interface("side")])
        architecture.add_connector("bus", interfaces=[Interface(TOP)])
        architecture.link(("a", "side"), ("bus", TOP))
        violations = check_style(architecture)
        assert any(v.rule == "top-bottom-pairing" for v in violations)

    def test_port_cardinality_reported(self):
        architecture = self.make_valid()
        architecture.add_connector(
            "bus2", interfaces=[Interface(TOP), Interface(BOTTOM)]
        )
        architecture.link(("lower", TOP), ("bus2", BOTTOM))
        violations = check_style(architecture)
        assert any(
            v.rule == "component-port-cardinality" for v in violations
        )

    def test_cycle_reported(self):
        architecture = Architecture("cycle", style="c2")
        architecture.add_connector(
            "c1", interfaces=[Interface(TOP), Interface(BOTTOM)]
        )
        architecture.add_connector(
            "c2", interfaces=[Interface(TOP), Interface(BOTTOM)]
        )
        architecture.link(("c1", TOP), ("c2", BOTTOM))
        architecture.link(("c2", TOP), ("c1", BOTTOM))
        violations = check_style(architecture)
        assert any(v.rule == "acyclic-above" for v in violations)

    def test_upper_element_resolution(self):
        architecture = self.make_valid()
        link = architecture.links_between("bus", "upper")[0]
        assert upper_element(architecture, link) == "upper"

    def test_upper_element_none_for_non_c2_link(self):
        architecture = Architecture("plain")
        architecture.add_component("a")
        architecture.add_component("b")
        link = architecture.link(("a", "x"), ("b", "y"))
        assert upper_element(architecture, link) is None

    def test_above_graph_edges(self):
        architecture = self.make_valid()
        graph = above_graph(architecture)
        assert graph.has_edge("bus", "upper")
        assert graph.has_edge("lower", "bus")

    def test_crash_entity_architecture_conforms(self, crash):
        police = crash.architecture.component(
            "Police Department Command and Control"
        )
        assert police.subarchitecture is not None
        assert check_style(police.subarchitecture) == []
