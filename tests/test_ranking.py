"""Unit tests for scenario ranking."""

from __future__ import annotations

from repro.core.ranking import (
    RankingWeights,
    rank_scenarios,
    top_scenarios,
)
from repro.scenarioml.events import TypedEvent
from repro.scenarioml.scenario import (
    QualityAttribute,
    Scenario,
    ScenarioKind,
    ScenarioSet,
)


def typed(type_name, **arguments):
    return TypedEvent(type_name=type_name, arguments=arguments)


class TestRanking:
    def test_scores_are_normalized(self, small_scenarios, chain_mapping):
        ranked = rank_scenarios(small_scenarios, chain_mapping)
        for score in ranked:
            assert 0.0 <= score.score <= 1.0
            assert 0.0 <= score.criticality <= 1.0
            assert 0.0 <= score.breadth <= 1.0

    def test_sorted_descending(self, small_scenarios, chain_mapping):
        ranked = rank_scenarios(small_scenarios, chain_mapping)
        scores = [score.score for score in ranked]
        assert scores == sorted(scores, reverse=True)

    def test_quality_scenarios_outrank_functional_peers(
        self, small_ontology, chain_mapping
    ):
        scenarios = ScenarioSet(small_ontology)
        scenarios.add(
            Scenario(name="plain", events=(typed("create", subject="w"),))
        )
        scenarios.add(
            Scenario(
                name="critical",
                events=(typed("create", subject="w"),),
                quality_attributes=(QualityAttribute.AVAILABILITY,),
            )
        )
        ranked = rank_scenarios(scenarios, chain_mapping)
        assert ranked[0].scenario == "critical"

    def test_negative_scenarios_weighted_like_dependability(
        self, small_ontology, chain_mapping
    ):
        scenarios = ScenarioSet(small_ontology)
        scenarios.add(
            Scenario(name="plain", events=(typed("create", subject="w"),))
        )
        scenarios.add(
            Scenario(
                name="forbidden",
                events=(typed("create", subject="w"),),
                kind=ScenarioKind.NEGATIVE,
            )
        )
        ranked = rank_scenarios(scenarios, chain_mapping)
        assert ranked[0].scenario == "forbidden"

    def test_breadth_rewards_wide_scenarios(
        self, small_ontology, chain_mapping
    ):
        scenarios = ScenarioSet(small_ontology)
        scenarios.add(
            Scenario(name="narrow", events=(typed("notify", who="alice"),))
        )
        scenarios.add(
            Scenario(
                name="wide",
                events=(
                    typed("notify", who="alice"),
                    typed("create", subject="w"),
                ),
            )
        )
        by_name = {
            score.scenario: score
            for score in rank_scenarios(scenarios, chain_mapping)
        }
        assert by_name["wide"].breadth > by_name["narrow"].breadth

    def test_criticality_tracks_articulation_components(
        self, small_ontology, chain_mapping
    ):
        # 'logic' is the chain's articulation component.
        scenarios = ScenarioSet(small_ontology)
        scenarios.add(
            Scenario(name="through-logic", events=(typed("create", subject="w"),))
        )
        scenarios.add(
            Scenario(name="ui-only", events=(typed("notify", who="a"),))
        )
        by_name = {
            score.scenario: score
            for score in rank_scenarios(scenarios, chain_mapping)
        }
        assert by_name["through-logic"].criticality > by_name["ui-only"].criticality

    def test_weights_change_the_order(self, small_ontology, chain_mapping):
        scenarios = ScenarioSet(small_ontology)
        scenarios.add(
            Scenario(
                name="qa-narrow",
                events=(typed("notify", who="a"),),
                quality_attributes=(QualityAttribute.SECURITY,),
            )
        )
        scenarios.add(
            Scenario(
                name="functional-wide",
                events=(
                    typed("notify", who="a"),
                    typed("create", subject="w"),
                    typed("destroy", subject="w"),
                ),
            )
        )
        quality_first = rank_scenarios(
            scenarios,
            chain_mapping,
            RankingWeights(criticality=0, breadth=0, quality=1, representativeness=0),
        )
        breadth_first = rank_scenarios(
            scenarios,
            chain_mapping,
            RankingWeights(criticality=0, breadth=1, quality=0, representativeness=0),
        )
        assert quality_first[0].scenario == "qa-narrow"
        assert breadth_first[0].scenario == "functional-wide"

    def test_top_scenarios_helper(self, small_scenarios, chain_mapping):
        top = top_scenarios(small_scenarios, chain_mapping, 1)
        assert len(top) == 1
        assert top[0] in ("make-widget", "drop-widget")

    def test_score_str(self, small_scenarios, chain_mapping):
        (first, *_rest) = rank_scenarios(small_scenarios, chain_mapping)
        assert first.scenario in str(first)
        assert "crit=" in str(first)

    def test_crash_ranks_dependability_scenarios_first(self, crash):
        ranked = rank_scenarios(crash.scenarios, crash.mapping)
        top_three = [score.scenario for score in ranked[:3]]
        assert "entity-availability" in top_three
        assert "message-sequence" in top_three
