"""Unit tests for the ontology-to-architecture mapping."""

from __future__ import annotations

import pytest

from repro.adl.structure import Architecture
from repro.core.mapping import Mapping
from repro.errors import MappingError
from repro.scenarioml.events import TypedEvent
from repro.scenarioml.ontology import Ontology
from repro.scenarioml.scenario import Scenario, ScenarioSet


class TestConstruction:
    def test_map_event_requires_known_event_type(
        self, small_ontology, chain_architecture
    ):
        mapping = Mapping(small_ontology, chain_architecture)
        with pytest.raises(MappingError):
            mapping.map_event("ghost", "ui")

    def test_map_event_requires_known_component(
        self, small_ontology, chain_architecture
    ):
        mapping = Mapping(small_ontology, chain_architecture)
        with pytest.raises(MappingError):
            mapping.map_event("create", "ghost")

    def test_map_event_requires_some_component(
        self, small_ontology, chain_architecture
    ):
        mapping = Mapping(small_ontology, chain_architecture)
        with pytest.raises(MappingError):
            mapping.map_event("create")

    def test_repeated_calls_accumulate(
        self, small_ontology, chain_architecture
    ):
        mapping = Mapping(small_ontology, chain_architecture)
        mapping.map_event("create", "ui")
        mapping.map_event("create", "logic", "ui")
        assert mapping.components_for("create") == ("ui", "logic")

    def test_unmap_event(self, chain_mapping):
        chain_mapping.unmap_event("create")
        assert chain_mapping.components_for("create") == ()

    def test_update_bulk(self, small_ontology, chain_architecture):
        mapping = Mapping(small_ontology, chain_architecture)
        mapping.update({"create": ["logic"], "notify": ["ui"]})
        assert mapping.mapped_event_types == ("create", "notify")

    def test_entries_are_copies(self, chain_mapping):
        entries = chain_mapping.entries
        entries["create"] = ("hacked",)
        assert chain_mapping.components_for("create") == ("logic", "store")


class TestResolution:
    def test_components_for_direct(self, chain_mapping):
        assert chain_mapping.components_for("notify") == ("ui",)

    def test_supertype_fallback(self, small_ontology, chain_architecture):
        mapping = Mapping(small_ontology, chain_architecture)
        mapping.map_event("act", "logic")  # abstract parent mapped once
        assert mapping.components_for("create") == ("logic",)
        assert mapping.components_for("destroy") == ("logic",)

    def test_supertype_fallback_disabled(
        self, small_ontology, chain_architecture
    ):
        mapping = Mapping(small_ontology, chain_architecture)
        mapping.map_event("act", "logic")
        assert mapping.components_for("create", use_supertypes=False) == ()

    def test_direct_mapping_beats_supertype(
        self, small_ontology, chain_architecture
    ):
        mapping = Mapping(small_ontology, chain_architecture)
        mapping.map_event("act", "logic")
        mapping.map_event("create", "store")
        assert mapping.components_for("create") == ("store",)

    def test_unknown_event_type_resolves_empty(self, chain_mapping):
        assert chain_mapping.components_for("ghost") == ()

    def test_event_types_for_component(self, chain_mapping):
        assert set(chain_mapping.event_types_for("store")) == {
            "create",
            "destroy",
        }
        assert chain_mapping.event_types_for("ui") == ("notify",)

    def test_is_mapped(self, chain_mapping):
        assert chain_mapping.is_mapped("create")
        assert not chain_mapping.is_mapped("act")  # no entry, no ancestor


class TestNestedComponents:
    def make_nested(self, small_ontology):
        inner = Architecture("inner")
        inner.add_component("worker")
        outer = Architecture("outer")
        outer.add_component("host", subarchitecture=inner)
        outer.add_component("flat")
        return Mapping(small_ontology, outer), outer

    def test_can_map_to_nested_component(self, small_ontology):
        mapping, _outer = self.make_nested(small_ontology)
        mapping.map_event("create", "worker")
        assert mapping.components_for("create") == ("worker",)

    def test_top_level_resolution(self, small_ontology):
        mapping, _outer = self.make_nested(small_ontology)
        assert mapping.top_level_component("worker") == "host"
        assert mapping.top_level_component("flat") == "flat"

    def test_unknown_component_resolution_raises(self, small_ontology):
        mapping, _outer = self.make_nested(small_ontology)
        with pytest.raises(MappingError):
            mapping.top_level_component("ghost")

    def test_nested_mapping_counts_for_coverage(self, small_ontology):
        mapping, _outer = self.make_nested(small_ontology)
        mapping.map_event("create", "worker")
        assert "host" not in mapping.unmapped_components()
        assert "flat" in mapping.unmapped_components()


class TestCoverageChecks:
    def test_unmapped_event_types_all(self, small_ontology, chain_architecture):
        mapping = Mapping(small_ontology, chain_architecture)
        mapping.map_event("create", "logic")
        unmapped = mapping.unmapped_event_types()
        assert "notify" in unmapped
        assert "destroy" in unmapped
        assert "act" not in unmapped  # abstract types are not expected

    def test_unmapped_event_types_restricted_to_scenarios(
        self, chain_mapping, small_scenarios
    ):
        assert chain_mapping.unmapped_event_types(small_scenarios) == ()

    def test_unmapped_components(self, small_ontology, chain_architecture):
        mapping = Mapping(small_ontology, chain_architecture)
        mapping.map_event("create", "logic")
        assert set(mapping.unmapped_components()) == {"ui", "store"}

    def test_validate_detects_stale_component(self, chain_mapping):
        chain_mapping._event_to_components["create"] = ("vanished",)
        with pytest.raises(MappingError):
            chain_mapping.validate()


class TestComplexityMetrics:
    def repeated_scenarios(self, small_ontology) -> ScenarioSet:
        scenarios = ScenarioSet(small_ontology)
        for index in range(5):
            scenarios.add(
                Scenario(
                    name=f"s{index}",
                    events=tuple(
                        TypedEvent(
                            type_name="create",
                            arguments={"subject": f"{index}-{j}"},
                        )
                        for j in range(4)
                    ),
                )
            )
        return scenarios

    def test_link_count(self, chain_mapping):
        assert chain_mapping.link_count() == 5  # 2 + 2 + 1

    def test_direct_link_count_scales_with_occurrences(
        self, chain_mapping, small_ontology
    ):
        scenarios = self.repeated_scenarios(small_ontology)
        # 20 occurrences of 'create', each linked to 2 components.
        assert chain_mapping.direct_link_count(scenarios) == 40

    def test_complexity_reduction_equals_reuse(
        self, chain_mapping, small_ontology
    ):
        scenarios = self.repeated_scenarios(small_ontology)
        # mediated: 2 links; direct: 40 -> factor 20 (the reuse count).
        assert chain_mapping.complexity_reduction(scenarios) == 20.0

    def test_no_reuse_means_no_reduction(
        self, chain_mapping, small_scenarios
    ):
        assert chain_mapping.complexity_reduction(small_scenarios) == 1.0

    def test_empty_scenarios_reduction_is_one(
        self, chain_mapping, small_ontology
    ):
        assert chain_mapping.complexity_reduction(ScenarioSet(small_ontology)) == 1.0


class TestTableAndPersistence:
    def test_table_rows_follow_scenario_usage(
        self, chain_mapping, small_scenarios
    ):
        table = chain_mapping.table(small_scenarios)
        assert table.rows == ("create", "notify", "destroy")
        assert table.columns == ("ui", "logic", "store")

    def test_table_marks(self, chain_mapping, small_scenarios):
        table = chain_mapping.table(small_scenarios)
        assert table.is_marked("create", "logic")
        assert table.is_marked("notify", "ui")
        assert not table.is_marked("notify", "store")

    def test_table_without_scenarios_lists_all_mapped(self, chain_mapping):
        table = chain_mapping.table()
        assert set(table.rows) == {"create", "destroy", "notify"}

    def test_table_render_contains_marks(self, chain_mapping):
        rendered = chain_mapping.table().render()
        assert "X" in rendered
        assert "create" in rendered

    def test_table_render_markdown(self, chain_mapping):
        rendered = chain_mapping.table().render_markdown()
        assert rendered.startswith("| event type")
        assert "| X |" in rendered

    def test_json_roundtrip(
        self, chain_mapping, small_ontology, chain_architecture
    ):
        text = chain_mapping.to_json()
        rebuilt = Mapping.from_json(text, small_ontology, chain_architecture)
        assert rebuilt.entries == chain_mapping.entries
        assert rebuilt.name == chain_mapping.name

    def test_from_dict_validates(self, small_ontology, chain_architecture):
        with pytest.raises(MappingError):
            Mapping.from_dict(
                {"entries": {"create": ["ghost"]}},
                small_ontology,
                chain_architecture,
            )

    def test_repr(self, chain_mapping):
        assert "3 event types" in repr(chain_mapping)
