"""Unit tests for incremental re-evaluation after evolution."""

from __future__ import annotations

import random

import pytest

from repro.adl.diff import diff_architectures
from repro.core.constraints import MustNotCommunicate, RequiresPath
from repro.core.evaluator import Sosae
from repro.core.incremental import (
    CARRIED_OVER_NOTE,
    DependencyTracker,
    StaleTrackerError,
    impacted_scenario_names,
    reevaluate,
)
from repro.core.mapping import Mapping
from repro.core.walkthrough import WalkthroughEngine
from repro.systems.generators import SyntheticSpec, build_synthetic
from repro.systems.pims import GET_SHARE_PRICES


class TestImpactSet:
    def test_component_change_impacts_its_scenarios(
        self, small_scenarios, chain_mapping, chain_architecture
    ):
        variant = chain_architecture.clone("v2")
        variant.component("ui").description = "redesigned"
        diff = diff_architectures(chain_architecture, variant)
        impacted = impacted_scenario_names(
            small_scenarios, chain_mapping, diff, chain_architecture
        )
        assert impacted == {"make-widget"}

    def test_connector_change_widens_to_adjacent_components(
        self, small_scenarios, chain_mapping, chain_architecture
    ):
        variant = chain_architecture.clone("v2")
        variant.excise_links_between("logic", "logic-store")
        diff = diff_architectures(chain_architecture, variant)
        impacted = impacted_scenario_names(
            small_scenarios, chain_mapping, diff, chain_architecture
        )
        # The excised link touches logic and the logic-store connector;
        # widening reaches 'store', so both scenarios are impacted.
        assert impacted == {"make-widget", "drop-widget"}

    def test_no_change_impacts_nothing(
        self, small_scenarios, chain_mapping, chain_architecture
    ):
        diff = diff_architectures(
            chain_architecture, chain_architecture.clone("same")
        )
        assert (
            impacted_scenario_names(
                small_scenarios, chain_mapping, diff, chain_architecture
            )
            == frozenset()
        )


class TestReevaluate:
    def test_unchanged_architecture_carries_everything_over(
        self, small_scenarios, chain_architecture, chain_mapping
    ):
        previous = Sosae(
            small_scenarios, chain_architecture, chain_mapping
        ).evaluate()
        result = reevaluate(
            previous,
            small_scenarios,
            chain_architecture,
            chain_architecture.clone("same"),
            chain_mapping,
        )
        assert result.rewalked == ()
        assert set(result.carried_over) == {"make-widget", "drop-widget"}
        assert result.savings == 1.0
        assert result.report.consistent == previous.consistent

    def test_incremental_matches_full_reevaluation(self, pims):
        previous = Sosae(
            pims.scenarios,
            pims.architecture,
            pims.mapping,
            walkthrough_options=pims.options,
        ).evaluate()
        evolved = pims.excised_architecture()
        result = reevaluate(
            previous,
            pims.scenarios,
            pims.architecture,
            evolved,
            pims.mapping,
            options=pims.options,
        )
        # Incremental verdicts agree with a from-scratch evaluation.
        full_mapping = pims.mapping.rebind(evolved)
        engine = WalkthroughEngine(evolved, full_mapping, pims.options)
        full = {v.scenario: v.passed for v in engine.walk_all(pims.scenarios)}
        incremental = {
            v.scenario: v.passed for v in result.report.scenario_verdicts
        }
        assert incremental == full
        assert not result.report.consistent
        assert GET_SHARE_PRICES in result.rewalked

    def test_savings_are_substantial_for_local_changes(self, pims):
        previous = Sosae(
            pims.scenarios,
            pims.architecture,
            pims.mapping,
            walkthrough_options=pims.options,
        ).evaluate()
        result = reevaluate(
            previous,
            pims.scenarios,
            pims.architecture,
            pims.excised_architecture(),
            pims.mapping,
            options=pims.options,
        )
        assert result.savings > 0.5  # most scenarios were not re-walked

    def test_new_scenarios_are_walked_even_without_impact(
        self, small_scenarios, chain_architecture, chain_mapping
    ):
        from repro.scenarioml.events import TypedEvent
        from repro.scenarioml.scenario import Scenario

        previous = Sosae(
            small_scenarios, chain_architecture, chain_mapping
        ).evaluate()
        small_scenarios.add(
            Scenario(
                name="fresh",
                events=(
                    TypedEvent(
                        type_name="create", arguments={"subject": "x"}
                    ),
                ),
            )
        )
        result = reevaluate(
            previous,
            small_scenarios,
            chain_architecture,
            chain_architecture.clone("same"),
            chain_mapping,
        )
        assert "fresh" in result.rewalked
        assert result.report.verdict("fresh").passed

    def test_negative_scenarios_keep_polarity_when_rewalked(
        self, small_ontology, chain_architecture, chain_mapping
    ):
        from repro.scenarioml.events import TypedEvent
        from repro.scenarioml.scenario import (
            Scenario,
            ScenarioKind,
            ScenarioSet,
        )

        scenarios = ScenarioSet(small_ontology)
        scenarios.add(
            Scenario(
                name="forbidden",
                kind=ScenarioKind.NEGATIVE,
                events=(
                    TypedEvent(type_name="create", arguments={"subject": "x"}),
                ),
            )
        )
        previous = Sosae(
            scenarios, chain_architecture, chain_mapping
        ).evaluate()
        evolved = chain_architecture.clone("evolved")
        evolved.component("logic").description = "changed"
        result = reevaluate(
            previous, scenarios, chain_architecture, evolved, chain_mapping
        )
        assert "forbidden" in result.rewalked
        verdict = result.report.verdict("forbidden")
        assert verdict.negative
        assert not verdict.passed  # still admitted -> still flagged


class TestDependencyTracker:
    def test_excision_dirty_set_is_exact(self, pims):
        previous = Sosae(
            pims.scenarios,
            pims.architecture,
            pims.mapping,
            walkthrough_options=pims.options,
        ).evaluate()
        tracker = DependencyTracker.from_report(
            previous, pims.architecture, pims.mapping, pims.options
        )
        diff = diff_architectures(
            pims.architecture, pims.excised_architecture()
        )
        dirty = tracker.dirty_scenarios(diff)
        # Only the scenario family whose witness paths crossed the
        # excised adjacency is dirtied — no widening to neighbors.
        assert GET_SHARE_PRICES in dirty
        assert all(name.startswith(GET_SHARE_PRICES) for name in dirty)

    def test_noop_diff_dirties_nothing(self, pims):
        previous = Sosae(
            pims.scenarios,
            pims.architecture,
            pims.mapping,
            walkthrough_options=pims.options,
        ).evaluate()
        tracker = DependencyTracker.from_report(
            previous, pims.architecture, pims.mapping, pims.options
        )
        diff = diff_architectures(
            pims.architecture, pims.architecture.clone("same")
        )
        assert tracker.dirty_scenarios(diff, pims.mapping) == frozenset()

    def test_mapping_edit_dirties_consulted_scenarios_only(
        self, small_scenarios, small_ontology, chain_architecture, chain_mapping
    ):
        previous = Sosae(
            small_scenarios, chain_architecture, chain_mapping
        ).evaluate()
        tracker = DependencyTracker.from_report(
            previous, chain_architecture, chain_mapping
        )
        edited = Mapping(small_ontology, chain_architecture)
        edited.map_event("create", "logic", "store")
        edited.map_event("destroy", "logic")  # retargeted
        edited.map_event("notify", "ui")
        assert tracker.changed_event_types(edited) == {"destroy"}
        diff = diff_architectures(
            chain_architecture, chain_architecture.clone("same")
        )
        # Only drop-widget resolves through 'destroy'.
        assert tracker.dirty_scenarios(diff, edited) == {"drop-widget"}

    def test_stale_tracker_raises(
        self, small_scenarios, chain_architecture, chain_mapping
    ):
        previous = Sosae(
            small_scenarios, chain_architecture, chain_mapping
        ).evaluate()
        other = chain_architecture.clone("other")
        tracker = DependencyTracker.from_report(
            previous, other, chain_mapping.rebind(other)
        )
        with pytest.raises(StaleTrackerError):
            reevaluate(
                previous,
                small_scenarios,
                chain_architecture,
                chain_architecture.clone("v2"),
                chain_mapping,
                tracker=tracker,
            )

    def test_tracker_parity_on_pims_excision(self, pims):
        previous = Sosae(
            pims.scenarios,
            pims.architecture,
            pims.mapping,
            constraints=pims.constraints,
            walkthrough_options=pims.options,
        ).evaluate()
        tracker = DependencyTracker.from_report(
            previous, pims.architecture, pims.mapping, pims.options
        )
        evolved = pims.excised_architecture()
        result = reevaluate(
            previous,
            pims.scenarios,
            pims.architecture,
            evolved,
            pims.mapping,
            options=pims.options,
            tracker=tracker,
            constraints=pims.constraints,
        )
        full = Sosae(
            pims.scenarios,
            pims.excised_architecture(),
            pims.mapping,
            constraints=pims.constraints,
            walkthrough_options=pims.options,
        ).evaluate()
        assert result.used_tracker
        assert {
            v.scenario: (v.passed, v.blocked)
            for v in result.report.scenario_verdicts
        } == {
            v.scenario: (v.passed, v.blocked) for v in full.scenario_verdicts
        }
        assert sorted(f.finding_id for f in result.report.findings) == sorted(
            f.finding_id for f in full.findings
        )
        assert result.report.consistent == full.consistent


class TestFindingsRefresh:
    def test_carried_findings_get_a_provenance_note(
        self, small_scenarios, chain_architecture, chain_mapping
    ):
        # ui reaches store through the chain, so this constraint is
        # violated in the *previous* report already.
        constraints = (MustNotCommunicate("ui", "store"),)
        previous = Sosae(
            small_scenarios,
            chain_architecture,
            chain_mapping,
            constraints=constraints,
        ).evaluate()
        assert any(
            "MustNotCommunicate" in f.message for f in previous.findings
        )
        result = reevaluate(
            previous,
            small_scenarios,
            chain_architecture,
            chain_architecture.clone("same"),
            chain_mapping,
            constraints=constraints,
        )
        # A no-op diff cannot change the constraint verdict: the finding
        # is carried, and says so in its provenance.
        assert "constraints" in result.carried_stages
        carried = [
            f for f in result.report.findings if "MustNotCommunicate" in f.message
        ]
        assert carried
        assert all(
            CARRIED_OVER_NOTE in f.provenance.notes for f in carried
        )

    def test_dirty_constraint_findings_are_recomputed(
        self, small_scenarios, chain_architecture, chain_mapping
    ):
        constraints = (RequiresPath("ui", "store"),)
        previous = Sosae(
            small_scenarios,
            chain_architecture,
            chain_mapping,
            constraints=constraints,
        ).evaluate()
        assert not any(
            f.kind.name == "CONSTRAINT_VIOLATION" for f in previous.findings
        )
        evolved = chain_architecture.clone("evolved")
        evolved.excise_links_between("logic", "logic-store")
        result = reevaluate(
            previous,
            small_scenarios,
            chain_architecture,
            evolved,
            chain_mapping,
            constraints=constraints,
        )
        # The excision breaks ui -> store, and the constraint's endpoints
        # lie inside the affected region, so the stage is recomputed and
        # the new violation appears without a carried-over note.
        assert "constraints" in result.recomputed_stages
        violations = [
            f for f in result.report.findings if "RequiresPath" in f.message
        ]
        assert violations
        assert all(
            f.provenance is None or CARRIED_OVER_NOTE not in f.provenance.notes
            for f in violations
        )


def _mutate(system, kind: str, rng: random.Random):
    """One random single edit; returns (new_architecture, new_mapping)."""
    architecture = system.architecture.clone(f"evolved-{kind}")
    mapping = system.mapping
    if kind == "link-remove":
        link = rng.choice(architecture.links)
        architecture.remove_link(link.name)
    elif kind == "link-add":
        first, second = rng.sample(
            [c.name for c in architecture.components], 2
        )
        architecture.link((first, "extra-out"), (second, "extra-in"))
    elif kind == "component-excision":
        component = rng.choice(architecture.components)
        architecture.excise_links_between(component.name, "bus")
    elif kind == "mapping-change":
        mapping = Mapping(system.ontology, system.architecture)
        entries = system.mapping.entries
        retarget = rng.choice(sorted(entries))
        for name, components in entries.items():
            if name == retarget:
                components = tuple(
                    rng.sample(
                        [c.name for c in system.architecture.components],
                        len(components),
                    )
                )
            mapping.map_event(name, *components)
    else:  # pragma: no cover - guard against typos in the param list
        raise AssertionError(kind)
    return architecture, mapping


class TestTrackerParityProperties:
    """Seeded synthetic systems x random single edits: the tracker path
    must reproduce the from-scratch pipeline's verdicts exactly."""

    EDITS = ("link-remove", "link-add", "component-excision", "mapping-change")

    @pytest.mark.parametrize("seed", range(5))
    @pytest.mark.parametrize("edit", EDITS)
    def test_single_edit_parity(self, seed, edit):
        system = build_synthetic(SyntheticSpec(seed=seed, scenarios=8))
        previous = Sosae(
            system.scenarios, system.architecture, system.mapping
        ).evaluate()
        tracker = DependencyTracker.from_report(
            previous, system.architecture, system.mapping
        )
        rng = random.Random(seed * 1000 + hash(edit) % 997)
        evolved, mapping = _mutate(system, edit, rng)
        result = reevaluate(
            previous,
            system.scenarios,
            system.architecture,
            evolved,
            mapping,
            tracker=tracker,
        )
        full = Sosae(
            system.scenarios, evolved, mapping.rebind(evolved)
        ).evaluate()
        assert result.used_tracker
        assert {
            v.scenario: (v.passed, v.blocked)
            for v in result.report.scenario_verdicts
        } == {
            v.scenario: (v.passed, v.blocked) for v in full.scenario_verdicts
        }
        assert result.report.consistent == full.consistent

    @pytest.mark.parametrize("seed", range(3))
    def test_noop_diff_carries_everything(self, seed):
        system = build_synthetic(SyntheticSpec(seed=seed, scenarios=8))
        previous = Sosae(
            system.scenarios, system.architecture, system.mapping
        ).evaluate()
        tracker = DependencyTracker.from_report(
            previous, system.architecture, system.mapping
        )
        result = reevaluate(
            previous,
            system.scenarios,
            system.architecture,
            system.architecture.clone("same"),
            system.mapping,
            tracker=tracker,
        )
        assert result.rewalked == ()
        assert result.savings == 1.0
        assert result.report.consistent == previous.consistent

    @pytest.mark.parametrize("seed", range(3))
    def test_everything_changed_still_matches(self, seed):
        system = build_synthetic(SyntheticSpec(seed=seed, scenarios=8))
        previous = Sosae(
            system.scenarios, system.architecture, system.mapping
        ).evaluate()
        tracker = DependencyTracker.from_report(
            previous, system.architecture, system.mapping
        )
        evolved = system.architecture.clone("gutted")
        for component in evolved.components:
            evolved.excise_links_between(component.name, "bus")
        result = reevaluate(
            previous,
            system.scenarios,
            system.architecture,
            evolved,
            system.mapping,
            tracker=tracker,
        )
        full = Sosae(
            system.scenarios, evolved, system.mapping.rebind(evolved)
        ).evaluate()
        assert {
            v.scenario: (v.passed, v.blocked)
            for v in result.report.scenario_verdicts
        } == {
            v.scenario: (v.passed, v.blocked) for v in full.scenario_verdicts
        }
        # Disconnecting every component dirties every scenario.
        assert set(result.rewalked) == {
            s.name for s in system.scenarios
        }
