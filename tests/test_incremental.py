"""Unit tests for incremental re-evaluation after evolution."""

from __future__ import annotations

from repro.adl.diff import diff_architectures
from repro.core.evaluator import Sosae
from repro.core.incremental import (
    impacted_scenario_names,
    reevaluate,
)
from repro.core.mapping import Mapping
from repro.core.walkthrough import WalkthroughEngine
from repro.systems.pims import GET_SHARE_PRICES


class TestImpactSet:
    def test_component_change_impacts_its_scenarios(
        self, small_scenarios, chain_mapping, chain_architecture
    ):
        variant = chain_architecture.clone("v2")
        variant.component("ui").description = "redesigned"
        diff = diff_architectures(chain_architecture, variant)
        impacted = impacted_scenario_names(
            small_scenarios, chain_mapping, diff, chain_architecture
        )
        assert impacted == {"make-widget"}

    def test_connector_change_widens_to_adjacent_components(
        self, small_scenarios, chain_mapping, chain_architecture
    ):
        variant = chain_architecture.clone("v2")
        variant.excise_links_between("logic", "logic-store")
        diff = diff_architectures(chain_architecture, variant)
        impacted = impacted_scenario_names(
            small_scenarios, chain_mapping, diff, chain_architecture
        )
        # The excised link touches logic and the logic-store connector;
        # widening reaches 'store', so both scenarios are impacted.
        assert impacted == {"make-widget", "drop-widget"}

    def test_no_change_impacts_nothing(
        self, small_scenarios, chain_mapping, chain_architecture
    ):
        diff = diff_architectures(
            chain_architecture, chain_architecture.clone("same")
        )
        assert (
            impacted_scenario_names(
                small_scenarios, chain_mapping, diff, chain_architecture
            )
            == frozenset()
        )


class TestReevaluate:
    def test_unchanged_architecture_carries_everything_over(
        self, small_scenarios, chain_architecture, chain_mapping
    ):
        previous = Sosae(
            small_scenarios, chain_architecture, chain_mapping
        ).evaluate()
        result = reevaluate(
            previous,
            small_scenarios,
            chain_architecture,
            chain_architecture.clone("same"),
            chain_mapping,
        )
        assert result.rewalked == ()
        assert set(result.carried_over) == {"make-widget", "drop-widget"}
        assert result.savings == 1.0
        assert result.report.consistent == previous.consistent

    def test_incremental_matches_full_reevaluation(self, pims):
        previous = Sosae(
            pims.scenarios,
            pims.architecture,
            pims.mapping,
            walkthrough_options=pims.options,
        ).evaluate()
        evolved = pims.excised_architecture()
        result = reevaluate(
            previous,
            pims.scenarios,
            pims.architecture,
            evolved,
            pims.mapping,
            options=pims.options,
        )
        # Incremental verdicts agree with a from-scratch evaluation.
        full_mapping = Mapping.from_dict(
            pims.mapping.to_dict(), pims.ontology, evolved
        )
        engine = WalkthroughEngine(evolved, full_mapping, pims.options)
        full = {v.scenario: v.passed for v in engine.walk_all(pims.scenarios)}
        incremental = {
            v.scenario: v.passed for v in result.report.scenario_verdicts
        }
        assert incremental == full
        assert not result.report.consistent
        assert GET_SHARE_PRICES in result.rewalked

    def test_savings_are_substantial_for_local_changes(self, pims):
        previous = Sosae(
            pims.scenarios,
            pims.architecture,
            pims.mapping,
            walkthrough_options=pims.options,
        ).evaluate()
        result = reevaluate(
            previous,
            pims.scenarios,
            pims.architecture,
            pims.excised_architecture(),
            pims.mapping,
            options=pims.options,
        )
        assert result.savings > 0.5  # most scenarios were not re-walked

    def test_new_scenarios_are_walked_even_without_impact(
        self, small_scenarios, chain_architecture, chain_mapping
    ):
        from repro.scenarioml.events import TypedEvent
        from repro.scenarioml.scenario import Scenario

        previous = Sosae(
            small_scenarios, chain_architecture, chain_mapping
        ).evaluate()
        small_scenarios.add(
            Scenario(
                name="fresh",
                events=(
                    TypedEvent(
                        type_name="create", arguments={"subject": "x"}
                    ),
                ),
            )
        )
        result = reevaluate(
            previous,
            small_scenarios,
            chain_architecture,
            chain_architecture.clone("same"),
            chain_mapping,
        )
        assert "fresh" in result.rewalked
        assert result.report.verdict("fresh").passed

    def test_negative_scenarios_keep_polarity_when_rewalked(
        self, small_ontology, chain_architecture, chain_mapping
    ):
        from repro.scenarioml.events import TypedEvent
        from repro.scenarioml.scenario import (
            Scenario,
            ScenarioKind,
            ScenarioSet,
        )

        scenarios = ScenarioSet(small_ontology)
        scenarios.add(
            Scenario(
                name="forbidden",
                kind=ScenarioKind.NEGATIVE,
                events=(
                    TypedEvent(type_name="create", arguments={"subject": "x"}),
                ),
            )
        )
        previous = Sosae(
            scenarios, chain_architecture, chain_mapping
        ).evaluate()
        evolved = chain_architecture.clone("evolved")
        evolved.component("logic").description = "changed"
        result = reevaluate(
            previous, scenarios, chain_architecture, evolved, chain_mapping
        )
        assert "forbidden" in result.rewalked
        verdict = result.report.verdict("forbidden")
        assert verdict.negative
        assert not verdict.passed  # still admitted -> still flagged
