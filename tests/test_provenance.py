"""Finding provenance: every inconsistency explains itself.

Covers the provenance records themselves (construction, rendering,
serialization), their attachment across the walkthrough / constraint /
negative-scenario / coverage paths, the content-derived finding ids,
and the ``explain``-level report helpers.
"""

from __future__ import annotations

import pytest

from repro.core.constraints import check_constraints
from repro.core.consistency import (
    Inconsistency,
    InconsistencyKind,
    Severity,
)
from repro.core.evaluator import Sosae
from repro.core.mapping import Mapping
from repro.core.report import (
    findings_with_ids,
    render_explanation,
    render_findings_index,
    resolve_finding,
)
from repro.core.report_io import report_from_json, report_to_json
from repro.errors import EvaluationError, ReproError
from repro.obs.provenance import (
    EventContext,
    IndexQuery,
    MappingResolution,
    Provenance,
    finding_id,
    provenance_from_dict,
)
from repro.systems.crash import build_crash_mapping
from repro.systems.pims import build_pims_constraints


def _excised_pims_report(pims):
    architecture = pims.excised_architecture()
    mapping = Mapping.from_dict(
        pims.mapping.to_dict(), pims.ontology, architecture
    )
    return Sosae(
        pims.scenarios,
        architecture,
        mapping,
        constraints=build_pims_constraints(),
        walkthrough_options=pims.options,
    ).evaluate()


def _insecure_crash_report(crash):
    architecture = crash.insecure_architecture()
    mapping = build_crash_mapping(crash.ontology, architecture)
    return Sosae(
        crash.scenarios,
        architecture,
        mapping,
        walkthrough_options=crash.options,
    ).evaluate()


class TestProvenanceRecords:
    def test_render_numbers_the_chain(self):
        provenance = Provenance(
            conclusion="it broke",
            event=EventContext(
                scenario="s", trace_index=0, event_index=2,
                event_label="3", event_rendering="something happens",
            ),
            queries=(
                IndexQuery(
                    operation="can_communicate",
                    sources=("a",), targets=("b",),
                    respect_directions=True, found=False,
                ),
            ),
        )
        text = provenance.render()
        assert "1." in text and "2." in text and "3." in text
        assert "scenario 's'" in text
        assert "NO PATH" in text
        assert text.strip().endswith("conclusion: it broke")

    def test_empty_provenance_knows_it(self):
        assert Provenance(conclusion="").empty
        assert not Provenance(conclusion="x").empty
        assert not Provenance(
            conclusion="", queries=(IndexQuery(operation="path"),)
        ).empty

    def test_mapping_resolution_fallback_detection(self):
        direct = MappingResolution(
            event_type="create", hops=("create",),
            entry_components=("logic",), components=("logic",),
        )
        fallback = MappingResolution(
            event_type="create", hops=("create", "act"),
            entry_components=("logic",), components=("logic",),
        )
        assert not direct.used_fallback
        assert fallback.used_fallback
        assert "supertype" in fallback.render()

    def test_dict_round_trip(self):
        provenance = Provenance(
            conclusion="done",
            event=EventContext(
                scenario="s", trace_index=1, event_index=0,
                event_label=None, event_rendering="r",
            ),
            resolution=MappingResolution(
                event_type="t", hops=("t", "super"), components=("c",)
            ),
            queries=(
                IndexQuery(
                    operation="best_path_between",
                    sources=("a",), targets=("b",),
                    found=True, path=("a", "conn", "b"),
                ),
            ),
            notes=("note one",),
        )
        assert provenance_from_dict(provenance.to_dict()) == provenance

    def test_from_dict_rejects_garbage(self):
        with pytest.raises(ReproError):
            provenance_from_dict(["not", "an", "object"])


class TestFindingIds:
    def test_id_is_stable_and_content_derived(self):
        finding = Inconsistency(
            kind=InconsistencyKind.MISSING_LINK,
            message="a cannot reach b",
            scenario="s",
            elements=("a", "b"),
        )
        twin = Inconsistency(
            kind=InconsistencyKind.MISSING_LINK,
            message="a cannot reach b",
            scenario="s",
            elements=("a", "b"),
            provenance=Provenance(conclusion="irrelevant to the id"),
        )
        assert finding.finding_id == twin.finding_id == finding_id(finding)
        assert len(finding.finding_id) == 10
        int(finding.finding_id, 16)  # hex

    def test_different_content_different_id(self):
        base = Inconsistency(
            kind=InconsistencyKind.MISSING_LINK, message="m"
        )
        other = Inconsistency(
            kind=InconsistencyKind.MISSING_LINK, message="m",
            severity=Severity.WARNING,
        )
        assert base.finding_id != other.finding_id

    def test_provenance_does_not_affect_equality(self):
        bare = Inconsistency(
            kind=InconsistencyKind.UNMAPPED_EVENT, message="m",
            severity=Severity.WARNING,
        )
        explained = Inconsistency(
            kind=InconsistencyKind.UNMAPPED_EVENT, message="m",
            severity=Severity.WARNING,
            provenance=Provenance(conclusion="because"),
        )
        assert bare == explained
        assert hash(bare) == hash(explained)


class TestAttachmentAcrossThePipeline:
    def test_excised_pims_missing_link_has_a_full_chain(self, pims):
        report = _excised_pims_report(pims)
        missing = [
            finding
            for finding in report.all_inconsistencies()
            if finding.kind is InconsistencyKind.MISSING_LINK
        ]
        assert missing
        for finding in missing:
            provenance = finding.provenance
            assert provenance is not None and not provenance.empty
            assert provenance.event is not None
            assert provenance.event.scenario == finding.scenario
            assert provenance.resolution is not None
            assert provenance.queries
            assert any(not query.found for query in provenance.queries)

    def test_constraint_violation_records_the_index_query(self, pims):
        architecture = pims.excised_architecture()
        violations = check_constraints(
            architecture, build_pims_constraints()
        )
        assert violations
        provenance = violations[0].provenance
        assert provenance is not None
        assert provenance.queries
        assert provenance.queries[0].operation == "can_communicate"
        assert not provenance.queries[0].found

    def test_negative_scenario_success_replays_the_paths(self, crash):
        report = _insecure_crash_report(crash)
        succeeded = [
            finding
            for finding in report.all_inconsistencies()
            if finding.kind is InconsistencyKind.NEGATIVE_SCENARIO_SUCCEEDED
        ]
        assert succeeded
        provenance = succeeded[0].provenance
        assert provenance is not None and not provenance.empty
        assert all(query.found for query in provenance.queries)
        assert any(query.path for query in provenance.queries)

    def test_unmapped_event_coverage_finding_shows_the_hops(self, crash):
        report = _insecure_crash_report(crash)
        unmapped = [
            finding
            for finding in report.all_inconsistencies()
            if finding.kind is InconsistencyKind.UNMAPPED_EVENT
        ]
        assert unmapped
        assert any(
            finding.provenance is not None
            and finding.provenance.resolution is not None
            and finding.provenance.resolution.hops
            for finding in unmapped
        )

    def test_every_demo_finding_explains_itself(self, pims):
        """The ISSUE acceptance bar: every finding of the fault-seeded
        demo exposes a non-empty provenance chain."""
        report = _excised_pims_report(pims)
        assert report.all_inconsistencies()
        for finding in report.all_inconsistencies():
            assert finding.provenance is not None, str(finding)
            assert not finding.provenance.empty, str(finding)


class TestReportHelpers:
    def test_findings_with_ids_deduplicates(self, pims):
        report = _excised_pims_report(pims)
        pairs = findings_with_ids(report)
        ids = [pair[0] for pair in pairs]
        assert len(ids) == len(set(ids))
        assert render_findings_index(report).count("\n") + 1 == len(pairs)

    def test_resolve_by_unique_prefix(self, pims):
        report = _excised_pims_report(pims)
        identifier, finding = findings_with_ids(report)[0]
        assert resolve_finding(report, identifier[:6]) == finding

    def test_resolve_unknown_prefix_raises(self, pims):
        report = _excised_pims_report(pims)
        with pytest.raises(EvaluationError):
            resolve_finding(report, "zzzzzz")

    def test_resolve_ambiguous_prefix_raises(self, pims):
        report = _excised_pims_report(pims)
        if len(findings_with_ids(report)) < 2:
            pytest.skip("needs at least two findings")
        with pytest.raises(EvaluationError):
            resolve_finding(report, "")

    def test_render_explanation_without_provenance_says_so(self):
        finding = Inconsistency(
            kind=InconsistencyKind.STYLE_VIOLATION, message="m"
        )
        text = render_explanation(finding)
        assert finding.finding_id in text
        assert "no provenance" in text

    def test_provenance_round_trips_through_report_json(self, pims):
        report = _excised_pims_report(pims)
        restored = report_from_json(report_to_json(report))
        original = {
            identifier: finding.provenance
            for identifier, finding in findings_with_ids(report)
        }
        loaded = {
            identifier: finding.provenance
            for identifier, finding in findings_with_ids(restored)
        }
        assert loaded == original
        assert any(value is not None for value in loaded.values())
