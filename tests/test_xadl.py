"""Unit tests for xADL XML serialization and parsing."""

from __future__ import annotations

import pytest

from repro.adl.behavior import Action, ActionKind, Statechart
from repro.adl.diff import diff_architectures
from repro.adl.structure import Architecture, Direction, Interface
from repro.adl.xadl import parse_xadl, to_xadl_xml
from repro.errors import SerializationError


def rich_architecture() -> Architecture:
    architecture = Architecture("rich", style="layered", description="A demo")
    inner = Architecture("inner")
    inner.add_component("nested", responsibilities=("Hold inner state",))
    architecture.add_component(
        "outer",
        description="Hosts the nested part",
        responsibilities=("Coordinate", "Delegate"),
        interfaces=[
            Interface("calls", Direction.OUT, "outgoing invocations"),
            Interface("services", Direction.IN),
        ],
        layer=2,
        subarchitecture=inner,
    )
    architecture.add_component(
        "peer", interfaces=[Interface("services", Direction.IN)], layer=1
    )
    architecture.add_connector("wire", description="A wire")
    architecture.link(("outer", "calls"), ("wire", "a"))
    architecture.link(("wire", "b"), ("peer", "services"))
    chart = Statechart("outer-behavior", description="reacts to pings")
    chart.add_state("idle", initial=True)
    chart.add_state("active")
    chart.add_state("active-sub", parent="active", initial=True)
    chart.add_transition(
        "idle",
        "active",
        "ping",
        guard="enabled",
        actions=[
            Action(ActionKind.SEND, "pong", via="calls", description="answer"),
            Action(ActionKind.INTERNAL),
        ],
    )
    architecture.attach_behavior("outer", chart)
    return architecture


class TestRoundtrip:
    def test_structure_preserved(self):
        original = rich_architecture()
        parsed = parse_xadl(to_xadl_xml(original))
        assert parsed.name == "rich"
        assert parsed.style == "layered"
        assert parsed.description == "A demo"
        assert diff_architectures(original, parsed).is_empty

    def test_interfaces_preserved(self):
        parsed = parse_xadl(to_xadl_xml(rich_architecture()))
        calls = parsed.component("outer").interface("calls")
        assert calls.direction is Direction.OUT
        assert calls.description == "outgoing invocations"

    def test_responsibilities_and_layer_preserved(self):
        parsed = parse_xadl(to_xadl_xml(rich_architecture()))
        outer = parsed.component("outer")
        assert outer.responsibilities == ("Coordinate", "Delegate")
        assert outer.layer == 2

    def test_subarchitecture_preserved(self):
        parsed = parse_xadl(to_xadl_xml(rich_architecture()))
        inner = parsed.component("outer").subarchitecture
        assert inner is not None
        assert [c.name for c in inner.components] == ["nested"]
        assert inner.component("nested").responsibilities == (
            "Hold inner state",
        )

    def test_statechart_preserved(self):
        parsed = parse_xadl(to_xadl_xml(rich_architecture()))
        chart = parsed.behavior("outer")
        assert isinstance(chart, Statechart)
        assert chart.name == "outer-behavior"
        assert chart.state("active-sub").parent == "active"
        (transition,) = chart.transitions
        assert transition.guard == "enabled"
        assert transition.actions[0] == Action(
            ActionKind.SEND, "pong", via="calls", description="answer"
        )
        assert transition.actions[1].kind is ActionKind.INTERNAL

    def test_links_preserved(self):
        parsed = parse_xadl(to_xadl_xml(rich_architecture()))
        assert len(parsed.links) == 2
        assert parsed.links_between("outer", "wire")

    def test_pims_roundtrip(self, pims):
        parsed = parse_xadl(to_xadl_xml(pims.architecture))
        assert diff_architectures(pims.architecture, parsed).is_empty

    def test_crash_roundtrip(self, crash):
        parsed = parse_xadl(to_xadl_xml(crash.architecture))
        assert diff_architectures(crash.architecture, parsed).is_empty
        police = parsed.component("Police Department Command and Control")
        assert police.subarchitecture is not None
        chart = parsed.behavior("Fire Department Command and Control")
        assert isinstance(chart, Statechart)


class TestParsingErrors:
    def test_malformed_xml(self):
        with pytest.raises(SerializationError):
            parse_xadl("<xArch")

    def test_wrong_root(self):
        with pytest.raises(SerializationError):
            parse_xadl("<architecture/>")

    def test_missing_name(self):
        with pytest.raises(SerializationError):
            parse_xadl("<xArch/>")

    def test_link_needs_two_points(self):
        document = (
            "<xArch name='x'><component id='a'/>"
            "<link id='l'><point element='a' interface='p'/></link></xArch>"
        )
        with pytest.raises(SerializationError):
            parse_xadl(document)

    def test_unknown_direction(self):
        document = (
            "<xArch name='x'>"
            "<component id='a'><interface id='p' direction='sideways'/>"
            "</component></xArch>"
        )
        with pytest.raises(SerializationError):
            parse_xadl(document)

    def test_unknown_action_kind(self):
        document = (
            "<xArch name='x'><component id='a'>"
            "<statechart><state id='s' initial='true'/>"
            "<transition from='s' to='s' trigger='t'>"
            "<action kind='explode' message='m'/></transition>"
            "</statechart></component></xArch>"
        )
        with pytest.raises(SerializationError):
            parse_xadl(document)

    def test_unexpected_element(self):
        with pytest.raises(SerializationError):
            parse_xadl("<xArch name='x'><widget/></xArch>")

    def test_empty_subarchitecture_rejected(self):
        document = (
            "<xArch name='x'><component id='a'>"
            "<subArchitecture/></component></xArch>"
        )
        with pytest.raises(SerializationError):
            parse_xadl(document)

    def test_reserved_property_key_rejected_on_write(self):
        architecture = Architecture("collides")
        component = architecture.add_component("c")
        component.properties["id"] = "sneaky"
        with pytest.raises(SerializationError):
            to_xadl_xml(architecture)
