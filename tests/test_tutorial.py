"""Keeps docs/TUTORIAL.md honest: its snippets, as one integration test."""

from __future__ import annotations

from repro import (
    Architecture,
    Direction,
    DynamicEvaluator,
    Interface,
    Mapping,
    MustRouteVia,
    Ontology,
    Parameter,
    Scenario,
    ScenarioBindings,
    ScenarioSet,
    Sosae,
    Statechart,
    TypedEvent,
)
from repro.adl.behavior import Action, ActionKind
from repro.scenarioml import validate_scenario_set


def build_tutorial_world():
    ontology = Ontology("ride-hailing")
    ontology.define_term("trip", "One ride from pickup to drop-off.")
    ontology.define_instance_type("Actor")
    ontology.define_instance_type("Person", super_name="Actor")
    ontology.define_instance("Rider", "Person")
    ontology.define_instance("Driver", "Person")
    ontology.define_event_type(
        "requestRide",
        "The rider requests a ride to [destination]",
        actor="Rider",
        parameters=["destination"],
    )
    ontology.define_event_type(
        "matchDriver",
        "The system matches the request to an available driver",
        actor="System",
    )
    ontology.define_event_type(
        "notifyPerson",
        "The system notifies [who]",
        actor="System",
        parameters=[Parameter("who", "Person")],
    )
    ontology.define_event_type(
        "recordTrip",
        "The system records the [trip] for billing",
        actor="System",
        parameters=["trip"],
    )
    ontology.validate()

    scenarios = ScenarioSet(ontology, name="ride-hailing")
    scenarios.add(
        Scenario(
            name="hail-a-ride",
            title="Hail a ride",
            events=(
                TypedEvent(
                    type_name="requestRide",
                    arguments={"destination": "the airport"},
                    label="1",
                ),
                TypedEvent(type_name="matchDriver", label="2"),
                TypedEvent(
                    type_name="notifyPerson",
                    arguments={"who": "Driver"},
                    label="3",
                ),
                TypedEvent(
                    type_name="notifyPerson",
                    arguments={"who": "Rider"},
                    label="4",
                ),
                TypedEvent(
                    type_name="recordTrip",
                    arguments={"trip": "the trip"},
                    label="5",
                ),
            ),
        )
    )

    arch = Architecture("ride-arch")
    arch.add_component(
        "mobile-app",
        responsibilities=("Interact with riders and drivers",),
        interfaces=[Interface("calls", Direction.OUT)],
    )
    arch.add_component(
        "dispatch-service",
        responsibilities=("Match requests to drivers",),
        interfaces=[
            Interface("api", Direction.IN),
            Interface("calls", Direction.OUT),
        ],
    )
    arch.add_component(
        "trip-store",
        responsibilities=("Persist trip records",),
        interfaces=[Interface("api", Direction.IN)],
    )
    arch.add_connector("mobile-link")
    arch.add_connector("backend-link")
    arch.link(("mobile-app", "calls"), ("mobile-link", "a"))
    arch.link(("mobile-link", "b"), ("dispatch-service", "api"))
    arch.link(("dispatch-service", "calls"), ("backend-link", "a"))
    arch.link(("backend-link", "b"), ("trip-store", "api"))
    arch.validate()

    mapping = Mapping(ontology, arch)
    mapping.update(
        {
            "requestRide": ["mobile-app"],
            "matchDriver": ["dispatch-service"],
            "notifyPerson": ["dispatch-service", "mobile-app"],
            "recordTrip": ["dispatch-service", "trip-store"],
        }
    )
    return ontology, scenarios, arch, mapping


class TestTutorial:
    def test_validation_is_clean(self):
        _ontology, scenarios, _arch, _mapping = build_tutorial_world()
        assert validate_scenario_set(scenarios) == []

    def test_mapping_reuse_pays_off(self):
        _ontology, scenarios, _arch, mapping = build_tutorial_world()
        assert mapping.complexity_reduction(scenarios) > 1.0

    def test_intact_architecture_is_consistent(self):
        _ontology, scenarios, arch, mapping = build_tutorial_world()
        assert Sosae(scenarios, arch, mapping).evaluate().consistent

    def test_excised_store_link_is_found(self):
        ontology, scenarios, arch, mapping = build_tutorial_world()
        faulty = arch.clone("ride-arch-faulty")
        faulty.excise_links_between("backend-link", "trip-store")
        faulty_mapping = Mapping.from_dict(
            mapping.to_dict(), ontology, faulty
        )
        report = Sosae(scenarios, faulty, faulty_mapping).evaluate()
        assert not report.consistent
        assert report.failed_scenarios == ("hail-a-ride",)

    def test_routing_constraint_holds(self):
        _ontology, scenarios, arch, mapping = build_tutorial_world()
        report = Sosae(
            scenarios,
            arch,
            mapping,
            constraints=[
                MustRouteVia("mobile-app", "trip-store", "dispatch-service")
            ],
        ).evaluate()
        assert report.consistent

    def test_dynamic_round_trip(self):
        _ontology, scenarios, arch, _mapping = build_tutorial_world()
        chart = Statechart("dispatch-behavior")
        chart.add_state("ready", initial=True)
        chart.add_transition(
            "ready",
            "ready",
            "ride-request",
            actions=[Action(ActionKind.REPLY, "driver-assigned")],
        )
        arch.attach_behavior("dispatch-service", chart)
        bindings = ScenarioBindings()
        bindings.on(
            "requestRide",
            lambda ctx, ev: ctx.send(
                "mobile-app",
                "ride-request",
                destination_entity="dispatch-service",
            ),
        )
        bindings.expect(
            "matchDriver",
            lambda ctx, ev: (
                None
                if ctx.trace.was_delivered("driver-assigned", "mobile-app")
                else "no driver was ever assigned"
            ),
        )
        verdict = DynamicEvaluator(arch, bindings).evaluate(
            scenarios.get("hail-a-ride"), scenarios
        )
        assert verdict.passed
