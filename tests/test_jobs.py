"""Tests for the multi-tenant job API engine (``repro.obs.jobs``)."""

from __future__ import annotations

import json
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.adl.xadl import to_xadl_xml
from repro.errors import ReproError
from repro.obs import (
    AuditLog,
    EventBus,
    JobManager,
    JobRecord,
    JobRegistry,
    RunRegistry,
    ServeDaemon,
    build_bundle_sosae,
    render_job_list,
    spec_bundle_digest,
    tenant_samples,
    validate_bundle,
)
from repro.core.evaluator import Sosae
from repro.scenarioml.xml_io import to_scenarioml_xml


@pytest.fixture
def bundle(small_scenarios, chain_architecture, chain_mapping):
    return {
        "scenarioml": to_scenarioml_xml(small_scenarios),
        "xadl": to_xadl_xml(chain_architecture),
        "mapping": chain_mapping.to_json(),
    }


@pytest.fixture
def manager(tmp_path, bundle):
    """An inline (executors=0) manager over temp registries."""
    bus = EventBus()
    mgr = JobManager(
        registry=JobRegistry(tmp_path),
        audit=AuditLog(tmp_path),
        run_registry=RunRegistry(tmp_path),
        bus=bus,
        executors=0,
    )
    mgr.test_bus = bus  # the tests read emitted events back
    return mgr


class TestBundle:
    def test_valid_bundle_passes(self, bundle):
        assert validate_bundle(bundle) is bundle

    def test_non_object_is_rejected(self):
        with pytest.raises(ReproError, match="JSON object"):
            validate_bundle(["not", "a", "bundle"])

    def test_missing_pieces_are_named(self, bundle):
        for key in ("scenarioml", "mapping"):
            broken = dict(bundle)
            del broken[key]
            with pytest.raises(ReproError, match=key):
                validate_bundle(broken)
        no_arch = dict(bundle)
        del no_arch["xadl"]
        with pytest.raises(ReproError, match="architecture"):
            validate_bundle(no_arch)

    def test_both_architectures_are_rejected(self, bundle):
        doubled = dict(bundle)
        doubled["acme"] = "System both = {}"
        with pytest.raises(ReproError, match="both"):
            validate_bundle(doubled)

    def test_digest_is_stable_and_content_sensitive(self, bundle):
        first = spec_bundle_digest(bundle)
        assert first == spec_bundle_digest(dict(bundle))
        changed = dict(bundle)
        changed["mapping"] = changed["mapping"] + " "
        assert spec_bundle_digest(changed) != first

    def test_build_produces_an_evaluable_pipeline(self, bundle):
        sosae = build_bundle_sosae(bundle)
        assert isinstance(sosae, Sosae)
        assert sosae.evaluate().consistent is True


class TestJobRegistry:
    def _record(self, job_id="j0001", state="queued", **kw):
        return JobRecord(job_id=job_id, tenant="acme", state=state, **kw)

    def test_latest_transition_wins(self, tmp_path):
        registry = JobRegistry(tmp_path)
        registry.append(self._record())
        registry.append(self._record(state="running"))
        registry.append(self._record(state="done", run_id="r0001"))
        (record,) = registry.load()
        assert record.state == "done"
        assert record.run_id == "r0001"

    def test_submission_order_is_preserved(self, tmp_path):
        registry = JobRegistry(tmp_path)
        registry.append(self._record("j0001"))
        registry.append(self._record("j0002"))
        registry.append(self._record("j0001", state="done"))
        assert [r.job_id for r in registry.load()] == ["j0001", "j0002"]

    def test_tenant_filter_and_get(self, tmp_path):
        registry = JobRegistry(tmp_path)
        registry.append(self._record("j0001"))
        registry.append(
            JobRecord(job_id="j0002", tenant="beta", state="queued")
        )
        assert [r.job_id for r in registry.jobs("beta")] == ["j0002"]
        assert registry.get("j0001").tenant == "acme"
        with pytest.raises(ReproError, match="j9999"):
            registry.get("j9999")

    def test_malformed_line_is_a_loud_error(self, tmp_path):
        registry = JobRegistry(tmp_path)
        registry.append(self._record())
        with registry.path.open("a") as handle:
            handle.write("{broken\n")
        registry._cache = None
        with pytest.raises(ReproError, match="line 2"):
            registry.load()

    def test_unknown_format_or_state_is_rejected(self):
        with pytest.raises(ReproError, match="format"):
            JobRecord.from_dict({"format": 99, "job_id": "j1", "state": "done"})
        with pytest.raises(ReproError, match="state"):
            JobRecord.from_dict(
                {"format": 1, "job_id": "j1", "tenant": "t", "state": "limbo"}
            )


class TestAuditLog:
    def test_entries_round_trip(self, tmp_path):
        audit = AuditLog(tmp_path)
        audit.append(
            timestamp=1.0, actor="dev", tenant="acme", job_id="j0001",
            transition="queued", spec_digest="abc", detail="accepted",
        )
        audit.append(
            timestamp=2.0, actor="", tenant="acme", job_id="j0001",
            transition="queued->running",
        )
        first, second = audit.entries()
        assert first["actor"] == "dev"
        assert first["spec_digest"] == "abc"
        assert second["actor"] == "anonymous"
        assert second["transition"] == "queued->running"


class TestJobManagerInline:
    def test_submit_execute_records_everything(self, manager, bundle):
        record = manager.submit(bundle, "acme", label="demo", actor="dev")
        assert record.state == "queued"
        assert manager.run_pending() == 1
        done = manager.get(record.job_id)
        assert done.state == "done"
        assert done.consistent is True
        assert done.wall_seconds > 0
        # the run registry carries tenant/job scoping
        run = manager.run_registry.get(done.run_id)
        assert run.tenant == "acme"
        assert run.job_id == record.job_id
        # the report cache answers for the run id
        assert json.loads(manager.report_json(done.run_id))["findings"] == []
        # lifecycle events in order
        kinds = [e.kind for e in manager.test_bus.events()]
        assert kinds[0] == "job-submitted"
        assert "job-started" in kinds
        assert kinds[-1] == "job-finished"
        # a complete audit trail: who/what/when per transition
        transitions = [
            entry["transition"] for entry in manager.audit.entries()
        ]
        assert transitions == ["queued", "queued->running", "running->done"]
        assert manager.audit.entries()[0]["actor"] == "dev"

    def test_quota_rejects_without_exception(self, manager, bundle):
        first = manager.submit(bundle, "acme")
        second = manager.submit(bundle, "acme")
        third = manager.submit(bundle, "acme")
        assert (first.state, second.state) == ("queued", "queued")
        assert third.state == "rejected"
        assert third.reason == "quota"
        assert third.terminal
        stats = manager.tenant_stats()["acme"]
        assert stats["rejected"] == 1
        assert stats["submitted"] == 3
        kinds = [e.kind for e in manager.test_bus.events()]
        assert kinds.count("job-rejected") == 1
        # the rejection persists and audits like any other outcome
        assert manager.registry.get(third.job_id).state == "rejected"
        assert any(
            entry["transition"] == "rejected"
            for entry in manager.audit.entries()
        )

    def test_queue_limit_rejects_across_tenants(self, tmp_path, bundle):
        manager = JobManager(
            registry=JobRegistry(tmp_path),
            executors=0,
            tenant_quota=10,
            queue_limit=2,
        )
        manager.submit(bundle, "a")
        manager.submit(bundle, "b")
        third = manager.submit(bundle, "c")
        assert third.state == "rejected"
        assert third.reason == "queue-full"

    def test_bad_tenant_is_a_shape_error(self, manager, bundle):
        for tenant in ("", "a b", "x" * 65, "sneaky/../path"):
            with pytest.raises(ReproError, match="tenant id"):
                manager.submit(bundle, tenant)

    def test_failed_build_is_recorded_not_raised(self, manager, bundle):
        broken = dict(bundle)
        broken["xadl"] = "<not really xadl>"
        record = manager.submit(broken, "acme")
        manager.run_pending()
        failed = manager.get(record.job_id)
        assert failed.state == "failed"
        assert failed.error
        finished = [
            e for e in manager.test_bus.events()
            if e.kind == "job-finished"
        ]
        assert finished[-1].state == "failed"

    def test_wait_times_out_on_a_queued_job(self, manager, bundle):
        record = manager.submit(bundle, "acme")
        with pytest.raises(ReproError, match="still queued"):
            manager.wait(record.job_id, timeout=0.05)

    def test_unknown_job_raises(self, manager):
        with pytest.raises(ReproError, match="j4242"):
            manager.get("j4242")

    def test_report_cache_is_bounded(self, tmp_path, bundle):
        manager = JobManager(
            registry=JobRegistry(tmp_path), executors=0, report_cache=2
        )
        for index in range(3):
            manager.stash_report(f"r{index}", "{}")
        assert manager.report_json("r0") is None
        assert manager.report_json("r2") == "{}"


class TestOrphanAdoption:
    def test_non_terminal_jobs_fail_on_restart(self, tmp_path, bundle):
        registry = JobRegistry(tmp_path)
        manager = JobManager(registry=registry, executors=0)
        record = manager.submit(bundle, "acme")
        # a new manager over the same registry: the bundle is gone
        reborn = JobManager(registry=JobRegistry(tmp_path), executors=0)
        adopted = reborn.get(record.job_id)
        assert adopted.state == "failed"
        assert "orphaned" in adopted.error
        # ids keep counting past history
        fresh = reborn.submit(bundle, "acme")
        assert fresh.job_id > record.job_id

    def test_terminal_history_just_loads(self, tmp_path, bundle):
        manager = JobManager(registry=JobRegistry(tmp_path), executors=0)
        record = manager.submit(bundle, "acme")
        manager.run_pending()
        reborn = JobManager(registry=JobRegistry(tmp_path), executors=0)
        assert reborn.get(record.job_id).state == "done"
        assert reborn.tenant_stats()["acme"]["done"] == 1


class TestThreadedExecution:
    def test_executor_thread_completes_a_job(self, tmp_path, bundle):
        manager = JobManager(
            registry=JobRegistry(tmp_path),
            run_registry=RunRegistry(tmp_path),
            executors=1,
        )
        try:
            record = manager.submit(bundle, "acme")
            done = manager.wait(record.job_id, timeout=30.0)
            assert done.state == "done"
        finally:
            manager.close()

    def test_two_tenants_complete_concurrently(self, tmp_path, bundle):
        manager = JobManager(
            registry=JobRegistry(tmp_path),
            run_registry=RunRegistry(tmp_path),
            executors=2,
        )
        try:
            first = manager.submit(bundle, "acme")
            second = manager.submit(bundle, "beta")
            assert manager.wait(first.job_id, timeout=30.0).state == "done"
            assert manager.wait(second.job_id, timeout=30.0).state == "done"
            stats = manager.tenant_stats()
            assert stats["acme"]["done"] == 1
            assert stats["beta"]["done"] == 1
        finally:
            manager.close()

    def test_audit_order_survives_a_slow_queued_append(
        self, tmp_path, bundle
    ):
        """Regression: the executor must not see a job before its
        'queued' registry/audit lines are persisted — a stalled append
        once let 'queued->running' land first in audit.jsonl."""
        audit = AuditLog(tmp_path)
        original = audit.append

        def slow_append(**entry):
            if entry.get("transition") == "queued":
                time.sleep(0.1)
            return original(**entry)

        audit.append = slow_append
        manager = JobManager(
            registry=JobRegistry(tmp_path),
            audit=audit,
            run_registry=RunRegistry(tmp_path),
            executors=1,
        )
        try:
            record = manager.submit(bundle, "acme")
            assert manager.wait(record.job_id, timeout=30.0).state == "done"
        finally:
            manager.close()
        trail = [entry["transition"] for entry in audit.entries()]
        assert trail == ["queued", "queued->running", "running->done"]


class TestTenantSamples:
    def _stats(self, tenants):
        return {
            tenant: {
                "submitted": weight, "rejected": 0, "done": weight,
                "failed": 0, "running": 0, "queued": 0,
                "wall_seconds": 0.1 * weight,
            }
            for tenant, weight in tenants.items()
        }

    def test_empty_stats_render_nothing(self):
        assert tenant_samples({}) == []

    def test_samples_carry_tenant_labels(self):
        samples = tenant_samples(self._stats({"acme": 3}))
        names = {sample.name for sample in samples}
        assert "serve.quota_rejections" in names
        assert all(
            sample.labels.get("tenant") == "acme" for sample in samples
        )

    def test_cardinality_is_bounded_to_top_k_plus_other(self):
        stats = self._stats({f"t{i:02d}": i + 1 for i in range(12)})
        samples = tenant_samples(stats, top=3)
        labels = {sample.labels["tenant"] for sample in samples}
        # 3 kept tenants + the overflow bucket
        assert labels == {"t11", "t10", "t09", "other"}
        submitted = {
            sample.labels["tenant"]: sample.value
            for sample in samples
            if sample.name == "serve.jobs"
            and sample.labels["state"] == "submitted"
        }
        # the other-bucket aggregates everything folded into it
        assert submitted["other"] == sum(range(1, 10))


class TestRenderJobList:
    def test_empty(self):
        assert render_job_list(()) == "no jobs recorded"

    def test_table_has_header_and_rows(self):
        records = (
            JobRecord(
                job_id="j0001", tenant="acme", state="done",
                run_id="r0001", wall_seconds=0.5, findings=2,
            ),
            JobRecord(
                job_id="j0002", tenant="beta", state="rejected",
                reason="quota",
            ),
        )
        text = render_job_list(records)
        lines = text.splitlines()
        assert lines[0].startswith("job")
        assert "j0001" in lines[1] and "r0001" in lines[1]
        assert "quota" in lines[2]


def _post_json(url, payload):
    data = json.dumps(payload).encode("utf-8")
    request = urllib.request.Request(
        url, data=data, headers={"Content-Type": "application/json"}
    )
    try:
        with urllib.request.urlopen(request, timeout=10) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read())


def _get_json(url):
    try:
        with urllib.request.urlopen(url, timeout=10) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read())


@pytest.fixture
def job_daemon(small_scenarios, chain_architecture, chain_mapping, tmp_path):
    build = lambda: Sosae(  # noqa: E731
        small_scenarios, chain_architecture, chain_mapping
    )
    daemon = ServeDaemon(
        build,
        registry=RunRegistry(tmp_path),
        jobs=True,
        tenant_quota=2,
        queue_limit=8,
        job_executors=2,
    )
    host, port = daemon.start_http()
    yield daemon, f"http://{host}:{port}", tmp_path
    daemon.shutdown()


class TestJobsHttp:
    def test_two_tenant_round_trip(self, job_daemon, bundle):
        """The acceptance scenario: two tenants submit concurrently,
        poll to completion, fetch their reports, and the metrics carry
        both tenant labels."""
        daemon, base, root = job_daemon
        results = {}

        def submit(tenant):
            results[tenant] = _post_json(
                f"{base}/jobs",
                {"tenant": tenant, "label": f"{tenant}-job",
                 "actor": tenant, "bundle": bundle},
            )

        threads = [
            threading.Thread(target=submit, args=(tenant,))
            for tenant in ("acme", "beta")
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        jobs = {}
        for tenant, (status, body) in results.items():
            assert status == 202, body
            jobs[tenant] = body["job"]["job_id"]
        # poll both to done
        for tenant, job_id in jobs.items():
            record = daemon.jobs.wait(job_id, timeout=30.0)
            assert record.state == "done", record.error
            status, body = _get_json(f"{base}/jobs/{job_id}")
            assert status == 200
            assert body["job"]["state"] == "done"
            run_id = body["job"]["run_id"]
            status, report = _get_json(f"{base}/report/{run_id}")
            assert status == 200
            assert report["findings"] == []
        # tenant-labeled metrics on /metrics
        with urllib.request.urlopen(f"{base}/metrics", timeout=10) as r:
            text = r.read().decode("utf-8")
        assert 'sosae_serve_jobs_total{tenant="acme",state="done"} 1' in text
        assert 'sosae_serve_jobs_total{tenant="beta",state="done"} 1' in text
        assert "sosae_serve_job_queue_depth 0" in text
        # the audit trail on disk covers every transition of both jobs
        audit = AuditLog(root).entries()
        for job_id in jobs.values():
            trail = [
                entry["transition"] for entry in audit
                if entry["job_id"] == job_id
            ]
            assert trail == ["queued", "queued->running", "running->done"]
        # and the registries survived on disk
        listed = JobRegistry(root).jobs()
        assert {record.state for record in listed} == {"done"}

    def test_quota_rejection_is_429_with_metric(
        self, small_scenarios, chain_architecture, chain_mapping,
        tmp_path, bundle,
    ):
        build = lambda: Sosae(  # noqa: E731
            small_scenarios, chain_architecture, chain_mapping
        )
        # executors=0: submissions stay queued, so the quota check is
        # deterministic — no race against fast evaluations.
        daemon = ServeDaemon(
            build, jobs=True, tenant_quota=1, job_executors=0,
            registry=RunRegistry(tmp_path),
        )
        host, port = daemon.start_http()
        base = f"http://{host}:{port}"
        try:
            status, _ = _post_json(
                f"{base}/jobs", {"tenant": "acme", "bundle": bundle}
            )
            assert status == 202
            status, body = _post_json(
                f"{base}/jobs", {"tenant": "acme", "bundle": bundle}
            )
            assert status == 429
            assert body["reason"] == "quota"
            with urllib.request.urlopen(f"{base}/metrics", timeout=10) as r:
                text = r.read().decode("utf-8")
            assert (
                'sosae_serve_quota_rejections_total{tenant="acme"} 1'
                in text
            )
        finally:
            daemon.shutdown()

    def test_bad_submissions_are_400(self, job_daemon):
        _, base, _ = job_daemon
        status, body = _post_json(f"{base}/jobs", {"tenant": "acme"})
        assert status == 400
        status, body = _post_json(
            f"{base}/jobs", {"tenant": "no spaces!", "bundle": {}}
        )
        assert status == 400

    def test_disabled_job_api_is_404(
        self, small_scenarios, chain_architecture, chain_mapping, bundle
    ):
        build = lambda: Sosae(  # noqa: E731
            small_scenarios, chain_architecture, chain_mapping
        )
        daemon = ServeDaemon(build)
        host, port = daemon.start_http()
        base = f"http://{host}:{port}"
        try:
            status, body = _post_json(
                f"{base}/jobs", {"tenant": "acme", "bundle": bundle}
            )
            assert status == 404
            assert "--jobs" in body["error"]
            status, _ = _get_json(f"{base}/jobs")
            assert status == 404
        finally:
            daemon.shutdown()

    def test_jobs_listing_scopes_by_tenant(self, job_daemon, bundle):
        daemon, base, _ = job_daemon
        for tenant in ("acme", "beta"):
            status, body = _post_json(
                f"{base}/jobs", {"tenant": tenant, "bundle": bundle}
            )
            assert status == 202
            daemon.jobs.wait(body["job"]["job_id"], timeout=30.0)
        status, body = _get_json(f"{base}/jobs?tenant=beta")
        assert status == 200
        assert [job["tenant"] for job in body["jobs"]] == ["beta"]
        status, body = _get_json(f"{base}/jobs")
        assert len(body["jobs"]) == 2
