"""Unit tests for ScenarioML event structures."""

from __future__ import annotations

import pytest

from repro.errors import ScenarioError
from repro.scenarioml.events import (
    Alternation,
    CompoundEvent,
    Episode,
    Iteration,
    Optional_,
    SimpleEvent,
    TypedEvent,
    leaf_events,
    parallel,
    sequence,
    walk,
)
from repro.scenarioml.ontology import Ontology


class TestSimpleEvent:
    def test_requires_text(self):
        with pytest.raises(ScenarioError):
            SimpleEvent(text="")

    def test_render_is_text(self):
        assert SimpleEvent(text="hello").render() == "hello"

    def test_has_no_children(self):
        assert SimpleEvent(text="x").children == ()

    def test_carries_label_and_actor(self):
        event = SimpleEvent(text="x", actor="User", label="2.a")
        assert event.actor == "User"
        assert event.label == "2.a"


class TestTypedEvent:
    def test_requires_type_name(self):
        with pytest.raises(ScenarioError):
            TypedEvent(type_name="")

    def test_renders_via_ontology(self, small_ontology: Ontology):
        event = TypedEvent(type_name="create", arguments={"subject": "it"})
        assert event.render(small_ontology) == "The system creates the it"

    def test_renders_without_ontology(self):
        event = TypedEvent(type_name="create", arguments={"subject": "it"})
        assert event.render() == "create(subject=it)"

    def test_renders_bare_name_without_arguments(self):
        assert TypedEvent(type_name="ping").render() == "ping"

    def test_arguments_are_immutable(self):
        event = TypedEvent(type_name="e", arguments={"a": "1"})
        with pytest.raises(TypeError):
            event.arguments["a"] = "2"  # type: ignore[index]

    def test_equality_ignores_argument_dict_identity(self):
        first = TypedEvent(type_name="e", arguments={"a": "1"})
        second = TypedEvent(type_name="e", arguments={"a": "1"})
        assert first == second
        assert hash(first) == hash(second)

    def test_inequality_on_arguments(self):
        first = TypedEvent(type_name="e", arguments={"a": "1"})
        second = TypedEvent(type_name="e", arguments={"a": "2"})
        assert first != second

    def test_inequality_on_label(self):
        first = TypedEvent(type_name="e", label="1")
        second = TypedEvent(type_name="e", label="2")
        assert first != second

    def test_entities_resolves_known_individuals(
        self, small_ontology: Ontology
    ):
        event = TypedEvent(
            type_name="notify", arguments={"who": "alice"}
        )
        assert event.entities(small_ontology) == ("alice",)

    def test_entities_skips_literals(self, small_ontology: Ontology):
        event = TypedEvent(
            type_name="notify", arguments={"who": "someone new"}
        )
        assert event.entities(small_ontology) == ()


class TestCompoundAndSchemas:
    def test_compound_requires_subevents(self):
        with pytest.raises(ScenarioError):
            CompoundEvent(subevents=())

    def test_compound_rejects_unknown_pattern(self):
        with pytest.raises(ScenarioError):
            CompoundEvent(subevents=(SimpleEvent(text="x"),), pattern="zigzag")

    def test_sequence_helper(self):
        event = sequence(SimpleEvent(text="a"), SimpleEvent(text="b"))
        assert event.pattern == "sequence"
        assert len(event.children) == 2

    def test_parallel_helper(self):
        event = parallel(SimpleEvent(text="a"), SimpleEvent(text="b"))
        assert event.pattern == "parallel"

    def test_sequence_render(self):
        event = sequence(SimpleEvent(text="a"), SimpleEvent(text="b"))
        assert event.render() == "(a; b)"

    def test_parallel_render(self):
        event = parallel(SimpleEvent(text="a"), SimpleEvent(text="b"))
        assert event.render() == "(a || b)"

    def test_alternation_needs_two_branches(self):
        with pytest.raises(ScenarioError):
            Alternation(branches=(SimpleEvent(text="only"),))

    def test_alternation_render(self):
        event = Alternation(
            branches=(SimpleEvent(text="a"), SimpleEvent(text="b"))
        )
        assert event.render() == "(a | b)"

    def test_iteration_requires_body(self):
        with pytest.raises(ScenarioError):
            Iteration()

    def test_iteration_rejects_negative_min(self):
        with pytest.raises(ScenarioError):
            Iteration(body=SimpleEvent(text="x"), min_count=-1)

    def test_iteration_rejects_max_below_min(self):
        with pytest.raises(ScenarioError):
            Iteration(body=SimpleEvent(text="x"), min_count=3, max_count=2)

    def test_iteration_render(self):
        event = Iteration(body=SimpleEvent(text="x"), min_count=1, max_count=3)
        assert event.render() == "(x){1,3}"

    def test_optional_requires_body(self):
        with pytest.raises(ScenarioError):
            Optional_()

    def test_optional_render(self):
        assert Optional_(body=SimpleEvent(text="x")).render() == "(x)?"

    def test_episode_requires_scenario_name(self):
        with pytest.raises(ScenarioError):
            Episode(scenario_name="")

    def test_episode_render(self):
        assert Episode(scenario_name="other").render() == "episode <other>"


class TestTraversal:
    def test_walk_is_preorder(self):
        a = SimpleEvent(text="a")
        b = SimpleEvent(text="b")
        tree = sequence(a, sequence(b))
        rendered = [e.render() for e in walk(tree)]
        assert rendered == ["(a; (b))", "a", "(b)", "b"]

    def test_leaf_events_flatten_nested_structures(self):
        tree = sequence(
            SimpleEvent(text="a"),
            Alternation(
                branches=(SimpleEvent(text="b"), SimpleEvent(text="c"))
            ),
            Iteration(body=SimpleEvent(text="d")),
        )
        leaves = [e.render() for e in leaf_events(tree)]
        assert leaves == ["a", "b", "c", "d"]

    def test_leaf_of_leaf_is_itself(self):
        event = SimpleEvent(text="x")
        assert list(leaf_events(event)) == [event]
