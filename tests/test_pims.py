"""Case-study tests: PIMS (paper §4.1, Figs. 2-4, Table 1)."""

from __future__ import annotations

import pytest

from repro.adl.styles import check_style
from repro.core.evaluator import Sosae
from repro.core.mapping import Mapping
from repro.core.walkthrough import WalkthroughEngine
from repro.scenarioml.query import reuse_factor
from repro.scenarioml.validation import IssueSeverity, validate_scenario_set
from repro.systems.pims import (
    CREATE_PORTFOLIO,
    DATA_ACCESS,
    DATA_BUS,
    DATA_REPOSITORY,
    GET_SHARE_PRICES,
    LOADER,
    MASTER_CONTROLLER,
    REMOTE_SHARE_DB,
    build_pims,
    excise_data_access_loader_link,
)


class TestArtifacts:
    def test_scenarios_validate_cleanly(self, pims):
        issues = validate_scenario_set(pims.scenarios)
        assert [i for i in issues if i.severity is IssueSeverity.ERROR] == []

    def test_contains_the_papers_two_use_cases_with_alternatives(self, pims):
        assert CREATE_PORTFOLIO in pims.scenarios
        assert GET_SHARE_PRICES in pims.scenarios
        assert (
            pims.scenarios.get("create-portfolio-alt").alternative_of
            == CREATE_PORTFOLIO
        )
        assert (
            pims.scenarios.get("get-share-prices-alt").alternative_of
            == GET_SHARE_PRICES
        )

    def test_create_portfolio_has_four_events(self, pims):
        scenario = pims.scenarios.get(CREATE_PORTFOLIO)
        assert len(scenario.events) == 4
        assert [event.label for event in scenario.events] == [
            "1",
            "2",
            "3",
            "4",
        ]

    def test_event_types_are_reused_across_scenarios(self, pims):
        assert reuse_factor(pims.scenarios.scenarios) > 2.0

    def test_architecture_is_layered_and_conformant(self, pims):
        assert pims.architecture.style == "layered"
        assert check_style(pims.architecture) == []

    def test_papers_components_present(self, pims):
        for name in (
            MASTER_CONTROLLER,
            "Authentication",
            LOADER,
            DATA_ACCESS,
            DATA_REPOSITORY,
            REMOTE_SHARE_DB,
        ):
            assert pims.architecture.is_component(name)

    def test_layer_assignment_matches_paper(self, pims):
        assert pims.architecture.component(MASTER_CONTROLLER).layer == 4
        assert pims.architecture.component(LOADER).layer == 3
        assert pims.architecture.component(DATA_ACCESS).layer == 2
        assert pims.architecture.component(DATA_REPOSITORY).layer == 1

    def test_components_have_responsibilities(self, pims):
        for component in pims.architecture.components:
            assert component.responsibilities


class TestTable1:
    def test_every_used_event_type_maps_to_a_component(self, pims):
        assert pims.mapping.unmapped_event_types(pims.scenarios) == ()

    def test_every_component_is_mapped_to(self, pims):
        assert pims.mapping.unmapped_components() == ()

    def test_papers_example_rows(self, pims):
        # "The user enters the portfolio's name" -> Master Controller
        assert pims.mapping.components_for("enterInformation") == (
            MASTER_CONTROLLER,
        )
        # "The system authenticates the user" -> Authentication
        assert pims.mapping.components_for("authenticateUser") == (
            "Authentication",
        )

    def test_save_data_chain_matches_fig4(self, pims):
        assert pims.mapping.components_for("saveData") == (
            LOADER,
            DATA_ACCESS,
            DATA_REPOSITORY,
        )

    def test_table_renders_with_marks(self, pims):
        table = pims.mapping.table(pims.scenarios)
        assert table.is_marked("authenticateUser", "Authentication")
        assert not table.is_marked("authenticateUser", LOADER)
        assert "authenticateUser" in table.render()


class TestWalkthroughs:
    def test_intact_architecture_consistent_with_all_scenarios(self, pims):
        engine = WalkthroughEngine(
            pims.architecture, pims.mapping, pims.options
        )
        verdicts = engine.walk_all(pims.scenarios)
        assert all(v.passed for v in verdicts), [
            v.scenario for v in verdicts if not v.passed
        ]

    def test_excision_removes_only_loader_data_bus_link(self, pims):
        variant = pims.excised_architecture()
        assert variant.links_between(LOADER, DATA_BUS) == ()
        assert pims.architecture.links_between(LOADER, DATA_BUS)

    def test_excised_create_portfolio_still_passes(self, pims):
        engine = WalkthroughEngine(
            pims.excised_architecture(), pims.mapping, pims.options
        )
        verdict = engine.walk_scenario(
            pims.scenarios.get(CREATE_PORTFOLIO), pims.scenarios
        )
        assert verdict.passed

    def test_excised_get_share_prices_fails_at_step_4(self, pims):
        engine = WalkthroughEngine(
            pims.excised_architecture(), pims.mapping, pims.options
        )
        verdict = engine.walk_scenario(
            pims.scenarios.get(GET_SHARE_PRICES), pims.scenarios
        )
        assert not verdict.passed
        (finding,) = verdict.all_inconsistencies()
        assert finding.event_label == "4"
        assert LOADER in finding.message
        assert DATA_ACCESS in finding.message

    def test_excised_architecture_fails_only_that_scenario(self, pims):
        engine = WalkthroughEngine(
            pims.excised_architecture(), pims.mapping, pims.options
        )
        verdicts = engine.walk_all(pims.scenarios)
        failed = [v.scenario for v in verdicts if not v.passed]
        assert failed == [GET_SHARE_PRICES]

    def test_sosae_full_pipeline_on_intact_pims(self, pims):
        report = Sosae(
            pims.scenarios,
            pims.architecture,
            pims.mapping,
            walkthrough_options=pims.options,
        ).evaluate()
        assert report.consistent

    def test_sosae_full_pipeline_on_excised_pims(self, pims):
        variant = pims.excised_architecture()
        mapping = Mapping.from_dict(
            pims.mapping.to_dict(), pims.ontology, variant
        )
        report = Sosae(
            pims.scenarios,
            variant,
            mapping,
            walkthrough_options=pims.options,
        ).evaluate()
        assert not report.consistent
        assert report.failed_scenarios == (GET_SHARE_PRICES,)

    def test_excision_helper_asserts_on_missing_link(self, pims):
        variant = pims.excised_architecture()
        with pytest.raises(AssertionError):
            excise_data_access_loader_link(variant)

    def test_build_is_deterministic(self):
        first = build_pims()
        second = build_pims()
        assert first.mapping.entries == second.mapping.entries
        assert [c.name for c in first.architecture.components] == [
            c.name for c in second.architecture.components
        ]


class TestDemoConstraints:
    def test_intact_architecture_satisfies_them(self, pims):
        from repro.core.constraints import check_constraints

        assert check_constraints(pims.architecture, pims.constraints) == []

    def test_excision_violates_the_reachability_constraint(self, pims):
        from repro.core.constraints import check_constraints

        violations = check_constraints(
            pims.excised_architecture(), pims.constraints
        )
        assert violations
        assert any(
            "Data Repository" in str(violation) for violation in violations
        )
