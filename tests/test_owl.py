"""Unit tests for OWL export/import of ontologies."""

from __future__ import annotations

import pytest

from repro.errors import SerializationError
from repro.scenarioml.ontology import Ontology, Parameter
from repro.scenarioml.owl import parse_owl_xml, to_owl_xml


def roundtrip(ontology: Ontology) -> Ontology:
    return parse_owl_xml(to_owl_xml(ontology))


class TestRoundtrip:
    def test_small_ontology(self, small_ontology: Ontology):
        back = roundtrip(small_ontology)
        assert {t.name for t in back.terms} == {
            t.name for t in small_ontology.terms
        }
        assert {c.name for c in back.instance_types} == {
            c.name for c in small_ontology.instance_types
        }
        assert {i.name for i in back.instances} == {
            i.name for i in small_ontology.instances
        }
        assert {e.name for e in back.event_types} == {
            e.name for e in small_ontology.event_types
        }

    def test_subsumption_preserved(self, small_ontology: Ontology):
        back = roundtrip(small_ontology)
        assert back.instance_type("Human").super_name == "Actor"
        assert back.event_type("create").super_name == "act"
        assert back.is_event_subtype_of("destroy", "act")

    def test_event_type_details_preserved(self, small_ontology: Ontology):
        back = roundtrip(small_ontology)
        create = back.event_type("create")
        assert create.actor == "System"
        assert create.text == "The system creates the [subject]"
        assert create.parameters == (Parameter("subject"),)
        assert back.event_type("act").abstract

    def test_typed_parameter_becomes_object_property(
        self, small_ontology: Ontology
    ):
        document = to_owl_xml(small_ontology)
        assert "ObjectProperty" in document  # notify's Actor-typed param
        assert "DatatypeProperty" in document  # untyped params
        back = parse_owl_xml(document)
        (who,) = back.event_type("notify").parameters
        assert who.type_name == "Actor"

    def test_descriptions_survive(self):
        ontology = Ontology("docs", description="the whole domain")
        ontology.define_term("gizmo", "A described thing.")
        ontology.define_instance_type("Kind", description="a class")
        ontology.define_instance("one", "Kind", description="an individual")
        back = roundtrip(ontology)
        assert back.description == "the whole domain"
        assert back.term("gizmo").definition == "A described thing."
        assert back.instance_type("Kind").description == "a class"
        assert back.instance("one").description == "an individual"

    def test_names_with_spaces(self):
        ontology = Ontology("spacey")
        ontology.define_instance_type("Command And Control")
        ontology.define_instance(
            "Police Department Center", "Command And Control"
        )
        back = roundtrip(ontology)
        assert back.has_instance_type("Command And Control")
        assert (
            back.instance("Police Department Center").type_name
            == "Command And Control"
        )

    def test_pims_ontology_reasoning_preserved(self, pims):
        back = roundtrip(pims.ontology)
        assert back.is_event_subtype_of("createPortfolio", "managePortfolio")
        assert set(back.event_type_descendants("manageInvestment")) == set(
            pims.ontology.event_type_descendants("manageInvestment")
        )

    def test_crash_ontology_classification_preserved(self, crash):
        back = roundtrip(crash.ontology)
        police = "Police Department Command and Control"
        assert back.is_subclass_of(
            back.instance(police).type_name, "Entity"
        )
        assert len(back.instances_of("Entity")) == len(
            crash.ontology.instances_of("Entity")
        )


class TestParsingErrors:
    def test_malformed_xml(self):
        with pytest.raises(SerializationError):
            parse_owl_xml("<rdf:RDF")

    def test_wrong_root(self):
        with pytest.raises(SerializationError):
            parse_owl_xml("<notRdf/>")

    def test_individual_without_type_rejected(self):
        document = (
            '<rdf:RDF xmlns:rdf="http://www.w3.org/1999/02/22-rdf-syntax-ns#"'
            ' xmlns:owl="http://www.w3.org/2002/07/owl#">'
            '<owl:NamedIndividual rdf:about="urn:repro:scenarioml#x"/>'
            "</rdf:RDF>"
        )
        with pytest.raises(SerializationError):
            parse_owl_xml(document)

    def test_unexpected_property_name_rejected(self):
        document = (
            '<rdf:RDF xmlns:rdf="http://www.w3.org/1999/02/22-rdf-syntax-ns#"'
            ' xmlns:owl="http://www.w3.org/2002/07/owl#">'
            '<owl:DatatypeProperty rdf:about="urn:repro:scenarioml#oddball"/>'
            "</rdf:RDF>"
        )
        with pytest.raises(SerializationError):
            parse_owl_xml(document)
