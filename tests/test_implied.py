"""Unit tests for implied-scenario detection."""

from __future__ import annotations

from repro.core.implied import detect_implied_scenarios
from repro.core.mapping import Mapping
from repro.scenarioml.events import TypedEvent
from repro.scenarioml.ontology import Ontology
from repro.scenarioml.scenario import Scenario, ScenarioSet


def make_world(*sequences: tuple[str, ...]):
    """An ontology/scenarios/mapping bundle from bare event-type
    sequences."""
    ontology = Ontology("implied-world")
    seen: set[str] = set()
    for sequence in sequences:
        for name in sequence:
            if name not in seen:
                ontology.define_event_type(name)
                seen.add(name)
    from repro.adl.structure import Architecture

    architecture = Architecture("implied-arch")
    architecture.add_connector("bus")
    for index, name in enumerate(sorted(seen)):
        architecture.add_component(f"c-{name}")
        architecture.link((f"c-{name}", "p"), ("bus", f"s{index}"))
    mapping = Mapping(ontology, architecture)
    for name in seen:
        mapping.map_event(name, f"c-{name}")
    scenarios = ScenarioSet(ontology)
    for index, sequence in enumerate(sequences):
        scenarios.add(
            Scenario(
                name=f"s{index}",
                events=tuple(
                    TypedEvent(type_name=name) for name in sequence
                ),
            )
        )
    return scenarios, mapping


class TestDetection:
    def test_single_scenario_is_closed(self):
        scenarios, mapping = make_world(("a", "b", "c"))
        report = detect_implied_scenarios(scenarios, mapping)
        assert report.implied == ()
        assert report.closed

    def test_disjoint_scenarios_are_closed(self):
        scenarios, mapping = make_world(("a", "b"), ("c", "d"))
        report = detect_implied_scenarios(scenarios, mapping)
        assert report.closed

    def test_shared_middle_step_implies_crossover(self):
        # s0: a -> x -> b ; s1: c -> x -> d.
        # Local views admit a -> x -> d and c -> x -> b: implied.
        scenarios, mapping = make_world(("a", "x", "b"), ("c", "x", "d"))
        report = detect_implied_scenarios(scenarios, mapping)
        chains = {implied.event_types for implied in report.implied}
        assert ("a", "x", "d") in chains
        assert ("c", "x", "b") in chains

    def test_witnesses_name_contributing_scenarios(self):
        scenarios, mapping = make_world(("a", "x", "b"), ("c", "x", "d"))
        report = detect_implied_scenarios(scenarios, mapping)
        crossover = next(
            implied
            for implied in report.implied
            if implied.event_types == ("a", "x", "d")
        )
        assert set(crossover.witnesses) == {"s0", "s1"}

    def test_components_annotated_from_mapping(self):
        scenarios, mapping = make_world(("a", "x", "b"), ("c", "x", "d"))
        report = detect_implied_scenarios(scenarios, mapping)
        crossover = next(
            implied
            for implied in report.implied
            if implied.event_types == ("a", "x", "d")
        )
        assert crossover.components[0] == ("c-a",)

    def test_prefix_truncation_is_implied(self):
        # s0: a -> b; s1: a (stops early). The one-step chain 'a' is
        # specified by s1, so the only behaviors are specified: closed.
        scenarios, mapping = make_world(("a", "b"), ("a",))
        report = detect_implied_scenarios(scenarios, mapping)
        assert report.closed

    def test_early_exit_implied_when_some_trace_ends_there(self):
        # s0: a -> b -> c ; s1: d -> b. 'b' is an exit (s1 ends there),
        # so a -> b (stopping before c) is implied.
        scenarios, mapping = make_world(("a", "b", "c"), ("d", "b"))
        report = detect_implied_scenarios(scenarios, mapping)
        chains = {implied.event_types for implied in report.implied}
        assert ("a", "b") in chains

    def test_limit_truncates(self):
        scenarios, mapping = make_world(
            ("a", "x", "b"), ("c", "x", "d"), ("e", "x", "f")
        )
        report = detect_implied_scenarios(scenarios, mapping, limit=1)
        assert len(report.implied) == 1
        assert report.truncated
        assert not report.closed

    def test_loops_do_not_hang(self):
        # a -> b and b -> a edges exist; loop-free search terminates.
        scenarios, mapping = make_world(("a", "b"), ("b", "a"))
        report = detect_implied_scenarios(scenarios, mapping, max_length=6)
        for implied in report.implied:
            assert len(set(implied.event_types)) == len(implied.event_types)

    def test_render_mentions_chain_and_witnesses(self):
        scenarios, mapping = make_world(("a", "x", "b"), ("c", "x", "d"))
        report = detect_implied_scenarios(scenarios, mapping)
        text = report.implied[0].render()
        assert "->" in text
        assert "stitched from" in text

    def test_pims_has_implied_scenarios(self, pims):
        """PIMS scenarios share the initiate/prompt/enter prefix, so local
        views admit recombinations — e.g. reaching deletePortfolio without
        the confirmation prompt."""
        report = detect_implied_scenarios(
            pims.scenarios, pims.mapping, max_length=4, limit=200
        )
        chains = {implied.event_types for implied in report.implied}
        assert (
            "initiateFunction",
            "enterInformation",
            "deletePortfolio",
        ) in chains
