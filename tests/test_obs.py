"""Tests for the observability primitives: spans, metrics, recorder."""

from __future__ import annotations

import json

import pytest

from repro.errors import ReproError
from repro.obs import (
    NULL_RECORDER,
    MetricsRegistry,
    NullRecorder,
    Recorder,
    SpanRecorder,
    current_recorder,
    observability_enabled,
    set_recorder,
    use,
)


class TestSpans:
    def test_nesting_builds_a_tree(self):
        recorder = SpanRecorder()
        with recorder.span("root"):
            with recorder.span("child-a"):
                with recorder.span("grandchild"):
                    pass
            with recorder.span("child-b"):
                pass
        assert len(recorder.roots) == 1
        root = recorder.roots[0]
        assert root.name == "root"
        assert [child.name for child in root.children] == ["child-a", "child-b"]
        assert root.children[0].children[0].name == "grandchild"
        assert root.count() == 4
        assert [span.name for span in root.iter_spans()] == [
            "root",
            "child-a",
            "grandchild",
            "child-b",
        ]

    def test_timing_is_monotone_and_contains_children(self):
        recorder = SpanRecorder()
        with recorder.span("outer"):
            with recorder.span("inner"):
                sum(range(1000))
        outer = recorder.roots[0]
        inner = outer.children[0]
        assert outer.wall_seconds >= inner.wall_seconds >= 0.0
        assert outer.start_wall <= inner.start_wall
        assert outer.end_wall >= inner.end_wall
        assert outer.self_wall_seconds >= 0.0

    def test_attributes_and_annotate(self):
        recorder = SpanRecorder()
        with recorder.span("work", phase="warm") as span:
            span.set_attribute("items", 3)
            recorder.annotate("note", "from-inside")
        assert recorder.roots[0].attributes == {
            "phase": "warm",
            "items": 3,
            "note": "from-inside",
        }
        # Annotating with no open span must not raise.
        recorder.annotate("ignored", True)

    def test_exception_closes_span_and_marks_error(self):
        recorder = SpanRecorder()
        with pytest.raises(ValueError):
            with recorder.span("broken"):
                raise ValueError("boom")
        span = recorder.roots[0]
        assert span.attributes["error"] == "ValueError"
        assert span.end_wall >= span.start_wall
        assert recorder.current_span() is None

    def test_decorator_records_a_span(self):
        recorder = SpanRecorder()

        @recorder.record("named")
        def work(x):
            return x * 2

        assert work(21) == 42
        assert recorder.roots[0].name == "named"

    def test_sibling_roots(self):
        recorder = SpanRecorder()
        with recorder.span("first"):
            pass
        with recorder.span("second"):
            pass
        assert [root.name for root in recorder.roots] == ["first", "second"]
        recorder.clear()
        assert recorder.roots == []


class TestMetrics:
    def test_counter(self):
        registry = MetricsRegistry()
        counter = registry.counter("hits")
        counter.inc()
        counter.inc(4)
        assert registry.counter("hits") is counter
        assert registry.value("hits") == 5
        with pytest.raises(ReproError):
            counter.inc(-1)

    def test_gauge(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("depth")
        gauge.set(3.5)
        gauge.add(-1.0)
        assert registry.value("depth") == 2.5

    def test_histogram(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("latency")
        assert histogram.mean is None
        for value in (1.0, 3.0, 2.0):
            histogram.observe(value)
        snapshot = histogram.to_dict()
        assert snapshot["count"] == 3
        assert snapshot["min"] == 1.0
        assert snapshot["max"] == 3.0
        assert snapshot["mean"] == pytest.approx(2.0)

    def test_histogram_percentiles(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("latency")
        assert histogram.p50 is None
        for value in range(1, 101):  # 1..100
            histogram.observe(float(value))
        assert histogram.p50 == pytest.approx(50.5)
        assert histogram.p95 == pytest.approx(95.05)
        assert histogram.p99 == pytest.approx(99.01)
        assert histogram.percentile(0.0) == 1.0
        assert histogram.percentile(1.0) == 100.0
        snapshot = histogram.to_dict()
        assert snapshot["p50"] == pytest.approx(50.5)
        assert snapshot["p95"] == pytest.approx(95.05)
        assert snapshot["p99"] == pytest.approx(99.01)

    def test_histogram_percentile_interpolates_small_samples(self):
        histogram = MetricsRegistry().histogram("x")
        histogram.observe(10.0)
        assert histogram.p50 == histogram.p99 == 10.0
        histogram.observe(20.0)
        assert histogram.p50 == pytest.approx(15.0)

    def test_histogram_percentile_validates_fraction(self):
        histogram = MetricsRegistry().histogram("x")
        histogram.observe(1.0)
        for bad in (-0.1, 1.5):
            with pytest.raises(ReproError):
                histogram.percentile(bad)

    def test_histogram_reservoir_bounds_retained_samples(self):
        from repro.obs import DEFAULT_HISTOGRAM_SAMPLE_CAP
        from repro.obs.metrics import Histogram

        histogram = Histogram("lat", sample_cap=100)
        for value in range(10_000):
            histogram.observe(float(value % 100))
        assert histogram.sample_count == 100
        # Exact statistics are untouched by the reservoir.
        assert histogram.count == 10_000
        assert histogram.min == 0.0 and histogram.max == 99.0
        assert histogram.mean == pytest.approx(49.5)
        # The reservoir is a uniform sample of a uniform stream, so the
        # median lands near the true median.
        assert histogram.p50 == pytest.approx(49.5, abs=15.0)
        assert DEFAULT_HISTOGRAM_SAMPLE_CAP == 4096

    def test_histogram_percentiles_exact_below_the_cap(self):
        from repro.obs.metrics import Histogram

        histogram = Histogram("lat", sample_cap=200)
        for value in range(1, 101):
            histogram.observe(float(value))
        assert histogram.sample_count == 100
        assert histogram.p50 == pytest.approx(50.5)

    def test_histogram_reservoir_is_deterministic_per_name(self):
        from repro.obs.metrics import Histogram

        def fill(name):
            histogram = Histogram(name, sample_cap=10)
            for value in range(1000):
                histogram.observe(float(value))
            return histogram.to_dict()

        assert fill("same") == fill("same")

    def test_histogram_rejects_nonpositive_cap(self):
        from repro.obs.metrics import Histogram

        with pytest.raises(ReproError, match="sample cap"):
            Histogram("lat", sample_cap=0)

    def test_recorder_keeps_a_passed_empty_registry(self):
        # An empty MetricsRegistry is falsy; the recorder must not
        # replace it (the serve loop shares one across runs).
        registry = MetricsRegistry()
        recorder = Recorder(metrics=registry)
        assert recorder.metrics is registry
        spans = SpanRecorder()
        assert Recorder(spans=spans).spans is spans

    def test_kind_conflict_raises(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(ReproError):
            registry.gauge("x")

    def test_to_dict_is_sorted_and_json_ready(self):
        registry = MetricsRegistry()
        registry.counter("b").inc()
        registry.gauge("a").set(1.0)
        snapshot = registry.to_dict()
        assert list(snapshot) == ["a", "b"]
        assert snapshot["b"] == {"type": "counter", "value": 1}
        assert registry.names() == ("a", "b")
        assert len(registry) == 2

    def test_to_dict_ordering_is_deterministic(self):
        """Insertion order never leaks: snapshots sort by metric name."""
        forward = MetricsRegistry()
        backward = MetricsRegistry()
        names = ["zulu", "alpha", "mike"]
        for name in names:
            forward.counter(name).inc()
        for name in reversed(names):
            backward.counter(name).inc()
        assert list(forward.to_dict()) == sorted(names)
        assert list(forward.to_dict()) == list(backward.to_dict())
        assert json.dumps(forward.to_dict()) == json.dumps(backward.to_dict())


class TestRecorderIndirection:
    def test_default_is_null_and_disabled(self):
        assert current_recorder() is NULL_RECORDER
        assert not observability_enabled()

    def test_null_recorder_is_inert(self):
        null = NullRecorder()
        with null.span("anything", key="value") as span:
            span.set_attribute("ignored", 1)
        null.counter("c").inc(100)
        null.gauge("g").set(1.0)
        null.histogram("h").observe(2.0)
        null.annotate("k", "v")
        # Shared singletons: no per-call allocation.
        assert null.span("a") is null.span("b")
        assert null.counter("a") is null.histogram("b")

    def test_use_scopes_the_recorder(self):
        recorder = Recorder()
        assert current_recorder() is NULL_RECORDER
        with use(recorder) as installed:
            assert installed is recorder
            assert current_recorder() is recorder
            assert observability_enabled()
        assert current_recorder() is NULL_RECORDER

    def test_use_restores_on_exception(self):
        recorder = Recorder()
        with pytest.raises(RuntimeError):
            with use(recorder):
                raise RuntimeError("boom")
        assert current_recorder() is NULL_RECORDER

    def test_set_recorder_returns_previous(self):
        recorder = Recorder()
        previous = set_recorder(recorder)
        try:
            assert previous is NULL_RECORDER
            assert current_recorder() is recorder
        finally:
            set_recorder(previous)

    def test_recorder_bundles_spans_and_metrics(self):
        recorder = Recorder()
        with recorder.span("work", what="test"):
            recorder.counter("steps").inc(2)
            recorder.annotate("deep", True)
        assert recorder.roots[0].name == "work"
        assert recorder.roots[0].attributes["deep"] is True
        assert recorder.metrics.value("steps") == 2


class TestIndexStatsAccrual:
    """The evaluator records *deltas* of the communication index's
    cumulative stats, so repeated ``evaluate()`` calls on one ``Sosae``
    (whose memoized index keeps accruing) must not double-count."""

    def test_two_evaluations_accrue_exact_stat_deltas(
        self, small_scenarios, chain_architecture, chain_mapping
    ):
        from repro.core.evaluator import Sosae

        sosae = Sosae(small_scenarios, chain_architecture, chain_mapping)
        recorder = Recorder()
        with use(recorder):
            before = sosae.index.stats()
            sosae.evaluate()
            sosae.evaluate()
            after = sosae.index.stats()
        assert recorder.metrics.value("index.hits") == (
            after.hits - before.hits
        )
        assert recorder.metrics.value("index.misses") == (
            after.misses - before.misses
        )
        assert recorder.metrics.value("index.invalidations") == (
            after.invalidations - before.invalidations
        )
        # The second evaluation hit the memoized index: more hits
        # accrued, and the counters grew monotonically between calls.
        assert recorder.metrics.value("index.hits") > 0
