"""Unit tests for the xADL types layer."""

from __future__ import annotations

import pytest

from repro.adl.structure import Architecture, Direction, Interface
from repro.adl.types import (
    ComponentType,
    ConnectorType,
    Signature,
    TypeRegistry,
)
from repro.errors import ArchitectureError


@pytest.fixture
def registry() -> TypeRegistry:
    registry = TypeRegistry("crash-family")
    registry.add(
        ComponentType(
            name="command-and-control",
            signatures=(
                Signature("external"),
                Signature("internal"),
            ),
            responsibilities=("Aggregate data", "Make decisions"),
            description="An organization's decision-making center",
        )
    )
    registry.add(
        ConnectorType(
            name="ad-hoc-network",
            signatures=(Signature("fabric"),),
        )
    )
    return registry


class TestTypes:
    def test_signature_requires_name(self):
        with pytest.raises(ArchitectureError):
            Signature("")

    def test_type_requires_name(self):
        with pytest.raises(ArchitectureError):
            ComponentType(name="")

    def test_duplicate_signatures_rejected(self):
        with pytest.raises(ArchitectureError):
            ComponentType(
                name="t", signatures=(Signature("a"), Signature("a"))
            )

    def test_signature_lookup(self, registry):
        component_type = registry.component_type("command-and-control")
        assert component_type.signature("external").name == "external"
        with pytest.raises(ArchitectureError):
            component_type.signature("ghost")


class TestRegistry:
    def test_duplicate_type_names_rejected(self, registry):
        with pytest.raises(ArchitectureError):
            registry.add(ComponentType(name="command-and-control"))

    def test_same_name_allowed_across_kinds(self, registry):
        registry.add(ConnectorType(name="command-and-control"))
        assert registry.connector_type("command-and-control")

    def test_unknown_lookup_raises(self, registry):
        with pytest.raises(ArchitectureError):
            registry.component_type("ghost")
        with pytest.raises(ArchitectureError):
            registry.connector_type("ghost")

    def test_rejects_non_type(self, registry):
        with pytest.raises(ArchitectureError):
            registry.add("not a type")  # type: ignore[arg-type]


class TestInstantiation:
    def test_component_instance_carries_type_shape(self, registry):
        architecture = Architecture("family")
        component = registry.instantiate_component(
            architecture, "command-and-control", "Police CC", layer=2
        )
        assert component.properties["type"] == "command-and-control"
        assert set(component.interfaces) == {"external", "internal"}
        assert component.responsibilities == (
            "Aggregate data",
            "Make decisions",
        )
        assert component.layer == 2
        assert component.description.startswith("An organization's")

    def test_extra_responsibilities_appended(self, registry):
        architecture = Architecture("family")
        component = registry.instantiate_component(
            architecture,
            "command-and-control",
            "Fire CC",
            extra_responsibilities=("Dispatch fire engines",),
        )
        assert "Dispatch fire engines" in component.responsibilities

    def test_connector_instance(self, registry):
        architecture = Architecture("family")
        connector = registry.instantiate_connector(
            architecture, "ad-hoc-network", "mesh-1"
        )
        assert connector.properties["type"] == "ad-hoc-network"
        assert "fabric" in connector.interfaces

    def test_family_of_instances(self, registry):
        architecture = Architecture("family")
        for name in ("Police CC", "Fire CC", "Red Cross CC"):
            registry.instantiate_component(
                architecture, "command-and-control", name
            )
        assert registry.instances_of(architecture, "command-and-control") == (
            "Police CC",
            "Fire CC",
            "Red Cross CC",
        )


class TestConformance:
    def test_fresh_instances_conform(self, registry):
        architecture = Architecture("family")
        registry.instantiate_component(
            architecture, "command-and-control", "Police CC"
        )
        registry.instantiate_connector(
            architecture, "ad-hoc-network", "mesh"
        )
        assert registry.check_conformance(architecture) == []

    def test_untyped_elements_skipped(self, registry):
        architecture = Architecture("family")
        architecture.add_component("free-spirit")
        assert registry.check_conformance(architecture) == []

    def test_missing_interface_reported(self, registry):
        architecture = Architecture("family")
        component = registry.instantiate_component(
            architecture, "command-and-control", "Police CC"
        )
        del component.interfaces["internal"]
        (violation,) = registry.check_conformance(architecture)
        assert "missing interface 'internal'" in violation.message

    def test_wrong_direction_reported(self, registry):
        registry.add(
            ComponentType(
                name="sink",
                signatures=(Signature("input", Direction.IN),),
            )
        )
        architecture = Architecture("family")
        component = architecture.add_component(
            "drain", interfaces=[Interface("input", Direction.OUT)]
        )
        component.properties["type"] = "sink"
        (violation,) = registry.check_conformance(architecture)
        assert "direction" in violation.message

    def test_unknown_type_reported(self, registry):
        architecture = Architecture("family")
        component = architecture.add_component("odd")
        component.properties["type"] = "nonexistent"
        (violation,) = registry.check_conformance(architecture)
        assert "unknown" in violation.message

    def test_extra_interfaces_allowed(self, registry):
        architecture = Architecture("family")
        component = registry.instantiate_component(
            architecture, "command-and-control", "Police CC"
        )
        component.add_interface("debug")
        assert registry.check_conformance(architecture) == []

    def test_violation_str(self):
        from repro.adl.types import ConformanceViolation

        violation = ConformanceViolation("e", "t", "broken")
        assert str(violation) == "e (: t): broken"
