"""Unit tests for the structural ADL."""

from __future__ import annotations

import pytest

from repro.adl.structure import (
    Architecture,
    Component,
    Connector,
    Direction,
    Endpoint,
    Interface,
    Link,
)
from repro.errors import ArchitectureError


class TestDirections:
    def test_in_accepts_only(self):
        assert Direction.IN.accepts()
        assert not Direction.IN.initiates()

    def test_out_initiates_only(self):
        assert Direction.OUT.initiates()
        assert not Direction.OUT.accepts()

    def test_inout_does_both(self):
        assert Direction.INOUT.accepts()
        assert Direction.INOUT.initiates()


class TestElements:
    def test_interface_requires_name(self):
        with pytest.raises(ArchitectureError):
            Interface("")

    def test_component_requires_name(self):
        with pytest.raises(ArchitectureError):
            Component(name="")

    def test_add_interface_rejects_duplicates(self):
        component = Component(name="c")
        component.add_interface("port")
        with pytest.raises(ArchitectureError):
            component.add_interface("port")

    def test_interface_lookup(self):
        component = Component(name="c")
        component.add_interface("port", Direction.OUT)
        assert component.interface("port").direction is Direction.OUT
        with pytest.raises(ArchitectureError):
            component.interface("missing")

    def test_layer_property_roundtrip(self):
        component = Component(name="c")
        assert component.layer is None
        component.layer = 3
        assert component.layer == 3
        assert component.properties["layer"] == "3"
        component.layer = None
        assert component.layer is None

    def test_responsibilities_normalized_to_tuple(self):
        component = Component(name="c", responsibilities=["a", "b"])
        assert component.responsibilities == ("a", "b")


class TestLinks:
    def test_link_requires_name(self):
        with pytest.raises(ArchitectureError):
            Link("", Endpoint("a", "x"), Endpoint("b", "y"))

    def test_link_rejects_self_loop_interface(self):
        endpoint = Endpoint("a", "x")
        with pytest.raises(ArchitectureError):
            Link("l", endpoint, endpoint)

    def test_connects_and_touches(self):
        link = Link("l", Endpoint("a", "x"), Endpoint("b", "y"))
        assert link.connects("a", "b")
        assert link.connects("b", "a")
        assert not link.connects("a", "c")
        assert link.touches("a")
        assert not link.touches("c")

    def test_other_endpoint(self):
        link = Link("l", Endpoint("a", "x"), Endpoint("b", "y"))
        assert link.other("a") == Endpoint("b", "y")
        assert link.other("b") == Endpoint("a", "x")
        with pytest.raises(ArchitectureError):
            link.other("c")

    def test_endpoint_str(self):
        assert str(Endpoint("a", "x")) == "a.x"


class TestArchitecture:
    def test_requires_name(self):
        with pytest.raises(ArchitectureError):
            Architecture("")

    def test_element_names_unique_across_kinds(self):
        architecture = Architecture("arch")
        architecture.add_component("x")
        with pytest.raises(ArchitectureError):
            architecture.add_connector("x")

    def test_add_component_with_string_interfaces(self):
        architecture = Architecture("arch")
        component = architecture.add_component("c", interfaces=["p", "q"])
        assert set(component.interfaces) == {"p", "q"}
        assert component.interface("p").direction is Direction.INOUT

    def test_element_lookup(self, chain_architecture: Architecture):
        assert chain_architecture.component("ui").name == "ui"
        assert chain_architecture.connector("ui-logic").name == "ui-logic"
        assert chain_architecture.element("logic").name == "logic"
        assert chain_architecture.is_component("ui")
        assert chain_architecture.is_connector("ui-logic")
        assert chain_architecture.has_element("store")
        assert not chain_architecture.has_element("ghost")

    def test_lookup_errors(self, chain_architecture: Architecture):
        with pytest.raises(ArchitectureError):
            chain_architecture.component("ui-logic")
        with pytest.raises(ArchitectureError):
            chain_architecture.connector("ui")
        with pytest.raises(ArchitectureError):
            chain_architecture.element("ghost")

    def test_link_accepts_dotted_strings(self):
        architecture = Architecture("arch")
        architecture.add_component("a")
        architecture.add_component("b")
        link = architecture.link("a.out", "b.in")
        assert link.first == Endpoint("a", "out")
        assert link.second == Endpoint("b", "in")

    def test_link_rejects_undotted_string(self):
        architecture = Architecture("arch")
        architecture.add_component("a")
        with pytest.raises(ArchitectureError):
            architecture.link("a", ("a", "x"))

    def test_link_auto_creates_interfaces(self):
        architecture = Architecture("arch")
        architecture.add_component("a")
        architecture.add_component("b")
        architecture.link(("a", "fresh"), ("b", "fresh"))
        assert "fresh" in architecture.component("a").interfaces

    def test_link_names_unique(self):
        architecture = Architecture("arch")
        architecture.add_component("a")
        architecture.add_component("b")
        architecture.link(("a", "x"), ("b", "y"), name="l")
        with pytest.raises(ArchitectureError):
            architecture.link(("a", "x2"), ("b", "y2"), name="l")

    def test_link_rejects_incompatible_directions(self):
        architecture = Architecture("arch")
        architecture.add_component(
            "a", interfaces=[Interface("out1", Direction.OUT)]
        )
        architecture.add_component(
            "b", interfaces=[Interface("out2", Direction.OUT)]
        )
        with pytest.raises(ArchitectureError):
            architecture.link(("a", "out1"), ("b", "out2"))

    def test_link_accepts_out_to_in(self):
        architecture = Architecture("arch")
        architecture.add_component(
            "a", interfaces=[Interface("out", Direction.OUT)]
        )
        architecture.add_component(
            "b", interfaces=[Interface("in", Direction.IN)]
        )
        architecture.link(("a", "out"), ("b", "in"))

    def test_in_to_in_rejected(self):
        architecture = Architecture("arch")
        architecture.add_component(
            "a", interfaces=[Interface("in1", Direction.IN)]
        )
        architecture.add_component(
            "b", interfaces=[Interface("in2", Direction.IN)]
        )
        with pytest.raises(ArchitectureError):
            architecture.link(("a", "in1"), ("b", "in2"))

    def test_remove_link(self, chain_architecture: Architecture):
        before = len(chain_architecture.links)
        removed = chain_architecture.remove_link(
            chain_architecture.links[0].name
        )
        assert len(chain_architecture.links) == before - 1
        with pytest.raises(ArchitectureError):
            chain_architecture.remove_link(removed.name)

    def test_excise_links_between(self, chain_architecture: Architecture):
        removed = chain_architecture.excise_links_between("ui", "ui-logic")
        assert len(removed) == 1
        assert chain_architecture.links_between("ui", "ui-logic") == ()

    def test_excise_unknown_element_raises(
        self, chain_architecture: Architecture
    ):
        with pytest.raises(ArchitectureError):
            chain_architecture.excise_links_between("ui", "ghost")

    def test_neighbors(self, chain_architecture: Architecture):
        assert chain_architecture.neighbors("logic") == (
            "ui-logic",
            "logic-store",
        )

    def test_links_of(self, chain_architecture: Architecture):
        assert len(chain_architecture.links_of("logic")) == 2

    def test_validate_detects_dangling_interface(self):
        architecture = Architecture("arch")
        architecture.add_component("a")
        architecture.add_component("b")
        architecture.link(("a", "x"), ("b", "y"))
        del architecture.component("a").interfaces["x"]
        with pytest.raises(ArchitectureError):
            architecture.validate()

    def test_clone_is_deep_and_renamable(
        self, chain_architecture: Architecture
    ):
        clone = chain_architecture.clone("copy")
        assert clone.name == "copy"
        clone.excise_links_between("ui", "ui-logic")
        assert chain_architecture.links_between("ui", "ui-logic")

    def test_component_names(self, chain_architecture: Architecture):
        assert chain_architecture.component_names() == ("ui", "logic", "store")

    def test_behavior_attachment(self, chain_architecture: Architecture):
        marker = object()
        chain_architecture.attach_behavior("ui", marker)
        assert chain_architecture.behavior("ui") is marker
        assert chain_architecture.behavior("logic") is None
        assert chain_architecture.behaviors == {"ui": marker}

    def test_behavior_requires_existing_element(
        self, chain_architecture: Architecture
    ):
        with pytest.raises(ArchitectureError):
            chain_architecture.attach_behavior("ghost", object())

    def test_subarchitecture_recursion(self):
        inner = Architecture("inner")
        inner.add_component("nested")
        outer = Architecture("outer")
        outer.add_component("host", subarchitecture=inner)
        names = [c.name for c in outer.all_components(recursive=True)]
        assert names == ["host", "nested"]
        shallow = [c.name for c in outer.all_components()]
        assert shallow == ["host"]

    def test_validate_recurses_into_subarchitecture(self):
        inner = Architecture("inner")
        inner.add_component("a")
        inner.add_component("b")
        inner.link(("a", "x"), ("b", "y"))
        del inner.component("a").interfaces["x"]
        outer = Architecture("outer")
        outer.add_component("host", subarchitecture=inner)
        with pytest.raises(ArchitectureError):
            outer.validate()

    def test_repr_counts(self, chain_architecture: Architecture):
        text = repr(chain_architecture)
        assert "3 components" in text
        assert "2 connectors" in text
        assert "4 links" in text
