"""The statistical sampling profiler and differential folded stacks.

The headline properties (the ISSUE's acceptance bar): merging the same
shard profiles in *any arrival order* folds to byte-identical text, the
disabled default does structurally zero work (no sampler thread, no
hooks on the profiled path), and zero-sample profiles flow through
``diff_profiles`` and its renderer without dividing by zero.
"""

from __future__ import annotations

import random
import threading
import time

import pytest

from repro.errors import ReproError
from repro.obs import (
    NULL_PROFILER,
    NullProfiler,
    Profile,
    SamplingProfiler,
    TelemetryCollector,
    WorkerPartial,
    current_profiler,
    diff_profiles,
    merge_profiles,
    partial_from_jsonl,
    partial_to_jsonl,
    profiling_enabled,
    set_profiler,
    snapshot_partial,
    use_profiler,
)
from repro.obs.recorder import Recorder

TRACE = "t0t0t0t0t0t0t0t0"


def _profile(counts, hz=97.0, wall=0.5):
    return Profile(
        counts={tuple(stack): count for stack, count in counts.items()},
        hz=hz,
        wall_seconds=wall,
    )


def _busy(deadline: float) -> int:
    total = 0
    while time.perf_counter() < deadline:
        total += sum(range(50))
    return total


class TestSamplingProfiler:
    def test_samples_the_calling_threads_frames(self):
        profiler = SamplingProfiler(hz=500.0)
        profiler.start()
        _busy(time.perf_counter() + 0.25)
        profile = profiler.stop()
        assert profile.samples > 0
        flat = ";".join(frame for stack in profile.counts for frame in stack)
        assert "_busy" in flat
        assert profile.hz == 500.0
        assert profile.wall_seconds >= 0.25

    def test_can_target_another_thread(self):
        deadline = time.perf_counter() + 0.25
        worker = threading.Thread(target=_busy, args=(deadline,))
        worker.start()
        profiler = SamplingProfiler(hz=500.0, thread_id=worker.ident)
        profiler.start()
        worker.join()
        profile = profiler.stop()
        flat = ";".join(frame for stack in profile.counts for frame in stack)
        assert "_busy" in flat

    def test_rejects_nonpositive_hz(self):
        with pytest.raises(ReproError, match="hz"):
            SamplingProfiler(hz=0)

    def test_rejects_double_start(self):
        profiler = SamplingProfiler(hz=50.0).start()
        try:
            with pytest.raises(ReproError, match="already running"):
                profiler.start()
        finally:
            profiler.stop()

    def test_context_manager_stops_the_thread(self):
        with SamplingProfiler(hz=50.0) as profiler:
            assert any(
                thread.name == "sosae-profiler"
                for thread in threading.enumerate()
            )
        assert not any(
            thread.name == "sosae-profiler"
            for thread in threading.enumerate()
        )
        assert isinstance(profiler.profile(), Profile)

    def test_ingested_worker_profiles_fold_in_at_stop(self):
        profiler = SamplingProfiler(hz=50.0).start()
        profiler.ingest(_profile({("m:w:1",): 7}))
        profiler.ingest(None)  # a shard that did not profile
        profile = profiler.stop()
        assert profile.counts.get(("m:w:1",)) == 7


class TestNullProfiler:
    def test_is_the_module_default(self):
        assert current_profiler() is NULL_PROFILER
        assert not profiling_enabled()

    def test_does_no_work(self):
        null = NullProfiler()
        assert null.start() is null
        assert null.stop() is None
        assert null.profile() is None
        null.ingest(_profile({("m:f:1",): 1}))
        with null:
            pass
        assert not any(
            thread.name == "sosae-profiler"
            for thread in threading.enumerate()
        )

    def test_use_profiler_installs_and_restores(self):
        profiler = SamplingProfiler(hz=50.0)
        with use_profiler(profiler) as installed:
            assert installed is profiler
            assert current_profiler() is profiler
            assert profiling_enabled()
        assert current_profiler() is NULL_PROFILER

    def test_set_profiler_returns_the_previous_one(self):
        profiler = SamplingProfiler(hz=50.0)
        previous = set_profiler(profiler)
        try:
            assert previous is NULL_PROFILER
            assert current_profiler() is profiler
        finally:
            set_profiler(previous)


class TestProfile:
    def test_folded_round_trip_is_byte_identical(self):
        profile = _profile(
            {("a:f:1", "a:g:2"): 3, ("a:f:1",): 1, ("b:h:9",): 2}
        )
        folded = profile.to_folded()
        again = Profile.from_folded(folded)
        assert again == profile
        assert again.to_folded() == folded

    def test_wall_quantizes_to_header_precision(self):
        # Real captures carry full float precision, but the folded
        # header prints 6 decimals — wall must quantize on construction
        # or round-trips would never compare equal.
        profile = _profile({("a:f:1",): 1}, wall=0.123456789123)
        assert profile.wall_seconds == 0.123457
        assert Profile.from_folded(profile.to_folded()) == profile
        merged = profile.merge(_profile({("a:f:1",): 1}, wall=0.1))
        assert Profile.from_folded(merged.to_folded()) == merged

    def test_folded_header_carries_metadata(self):
        folded = _profile({("a:f:1",): 4}, hz=123.0, wall=1.5).to_folded()
        header = folded.splitlines()[0]
        assert header.startswith("# sosae-profile format=1 ")
        assert "hz=123" in header
        assert "samples=4" in header
        assert "wall_seconds=1.500000" in header

    def test_headerless_foreign_folded_text_parses(self):
        profile = Profile.from_folded("main;work 10\nmain;idle 2\n")
        assert profile.samples == 12
        assert profile.hz == 0.0

    @pytest.mark.parametrize(
        "line, message",
        [
            ("justoneword", "no count"),
            ("main;work ten", "non-integer"),
            ("main;work -3", "negative"),
        ],
    )
    def test_malformed_folded_lines_error(self, line, message):
        with pytest.raises(ReproError, match=message):
            Profile.from_folded(line)

    def test_merge_is_commutative_and_sums_walls(self):
        first = _profile({("a:f:1",): 2}, wall=1.0)
        second = _profile({("a:f:1",): 3, ("b:g:2",): 1}, wall=0.5)
        merged = first.merge(second)
        assert merged == second.merge(first)
        assert merged.counts[("a:f:1",)] == 5
        assert merged.wall_seconds == pytest.approx(1.5)

    def test_mixed_rate_merge_drops_hz(self):
        merged = _profile({("a:f:1",): 1}, hz=97.0).merge(
            _profile({("a:f:1",): 1}, hz=50.0)
        )
        assert merged.hz == 0.0

    def test_self_vs_cumulative_counts(self):
        profile = _profile({("a:f:1", "a:g:2"): 3, ("a:f:1",): 2})
        assert profile.self_counts() == {"a:g:2": 3, "a:f:1": 2}
        assert profile.cumulative_counts() == {"a:f:1": 5, "a:g:2": 3}

    def test_recursive_frames_count_once_per_stack(self):
        profile = _profile({("a:f:1", "a:f:1", "a:f:1"): 4})
        assert profile.cumulative_counts() == {"a:f:1": 4}

    def test_digest_tracks_content(self):
        first = _profile({("a:f:1",): 1})
        assert first.digest() == _profile({("a:f:1",): 1}).digest()
        assert first.digest() != _profile({("a:f:1",): 2}).digest()

    def test_merge_profiles_helper(self):
        assert merge_profiles([]) is None
        merged = merge_profiles(
            [_profile({("a:f:1",): 1}), _profile({("a:f:1",): 2})]
        )
        assert merged.counts[("a:f:1",)] == 3


class TestDeterministicMerge:
    """Shard profiles merged through the collector fold to the same
    bytes regardless of arrival order — the acceptance property."""

    def _shard_partial(self, shard: int) -> WorkerPartial:
        recorder = Recorder()
        profile = _profile(
            {
                (f"m:shared:{1}",): shard,
                (f"m:shard{shard}:1", f"m:leaf:{shard}"): 2 * shard,
            },
            wall=0.125,
        )
        return snapshot_partial(
            shard=shard, trace_id=TRACE, recorder=recorder, profile=profile
        )

    def test_arrival_order_independent_byte_identical(self):
        partials = [self._shard_partial(shard) for shard in (1, 2, 3, 4)]

        def merge(ordering):
            collector = TelemetryCollector()
            for partial in ordering:
                collector.ingest(partial)
            return collector.merge().profile.to_folded()

        baseline = merge(partials)
        rng = random.Random(20260808)
        for _ in range(6):
            shuffled = partials[:]
            rng.shuffle(shuffled)
            assert merge(shuffled) == baseline

    def test_unprofiled_shards_leave_profile_none(self):
        recorder = Recorder()
        collector = TelemetryCollector()
        collector.ingest(
            snapshot_partial(shard=1, trace_id=TRACE, recorder=recorder)
        )
        assert collector.merge().profile is None

    def test_profile_survives_dict_and_jsonl_transport(self):
        partial = self._shard_partial(2)
        assert WorkerPartial.from_dict(partial.to_dict()) == partial
        assert partial_from_jsonl(partial_to_jsonl(partial)) == partial
        merged = TelemetryCollector()
        merged.ingest(partial_from_jsonl(partial_to_jsonl(partial)))
        profile = merged.merge().profile
        assert profile is not None
        assert profile.counts[("m:shared:1",)] == 2


class TestDiffProfiles:
    def test_ranks_regressions_first(self):
        before = _profile({("m:f:1",): 8, ("m:g:2",): 2})
        after = _profile({("m:f:1",): 2, ("m:g:2",): 8})
        diff = diff_profiles(before, after)
        assert diff.frames[0].frame == "m:g:2"
        assert diff.frames[0].self_delta == pytest.approx(0.6)
        assert diff.regressed[0].frame == "m:g:2"
        assert diff.improved[-1].frame == "m:f:1"

    def test_cumulative_shares_tracked_separately(self):
        before = _profile({("m:f:1", "m:g:2"): 10})
        after = _profile({("m:f:1", "m:h:3"): 10})
        diff = diff_profiles(before, after)
        by_frame = {delta.frame: delta for delta in diff.frames}
        assert by_frame["m:f:1"].cum_delta == pytest.approx(0.0)
        assert by_frame["m:f:1"].self_delta == pytest.approx(0.0)
        assert by_frame["m:h:3"].cum_after == pytest.approx(1.0)

    def test_zero_sample_before_reads_as_pure_regression(self):
        diff = diff_profiles(Profile(), _profile({("m:f:1",): 5}))
        assert diff.frames[0].self_before == 0.0
        assert diff.frames[0].self_after == pytest.approx(1.0)
        assert "100.0%" in diff.render()

    def test_both_empty_renders_a_note_not_a_crash(self):
        rendered = diff_profiles(Profile(), Profile()).render()
        assert "both profiles are empty" in rendered

    def test_no_movement_renders_a_note(self):
        profile = _profile({("m:f:1",): 5})
        rendered = diff_profiles(profile, profile).render()
        assert "no self-time movement" in rendered

    def test_render_caps_at_top(self):
        before = _profile({(f"m:f{i}:1",): 1 for i in range(30)})
        after = _profile({(f"m:f{i}:1",): 2 + i for i in range(30)})
        rendered = diff_profiles(before, after).render(top=5)
        frame_lines = [
            line for line in rendered.splitlines() if "%" in line
        ]
        assert len(frame_lines) == 5
