"""The robust (median + MAD) changepoint detector shared by ``runs
bisect`` and ``mode = "anomaly"`` alert rules."""

from __future__ import annotations

import pytest

from repro.errors import ReproError
from repro.obs import detect_step, mad, median, robust_zscore


class TestRobustStats:
    def test_median_odd_and_even(self):
        assert median([3.0, 1.0, 2.0]) == 2.0
        assert median([1.0, 2.0, 3.0, 4.0]) == 2.5

    def test_median_empty_errors(self):
        with pytest.raises(ReproError, match="empty"):
            median([])

    def test_mad_is_the_median_absolute_deviation(self):
        assert mad([1.0, 2.0, 3.0, 100.0]) == pytest.approx(1.0)
        assert mad([5.0, 5.0, 5.0]) == 0.0

    def test_robust_zscore_scales_by_mad(self):
        baseline = [10.0, 11.0, 9.0, 10.0, 10.5]
        assert robust_zscore(baseline, 10.0) == pytest.approx(0.0, abs=1e-9)
        assert robust_zscore(baseline, 30.0) > 3.5

    def test_zero_mad_baseline_still_flags_steps(self):
        # A perfectly flat baseline must not divide by zero — and any
        # real movement off it is a step.
        baseline = [5.0] * 6
        assert robust_zscore(baseline, 5.0) == pytest.approx(0.0, abs=1e-9)
        assert robust_zscore(baseline, 6.0) > 3.5

    def test_outliers_in_the_baseline_do_not_mask_steps(self):
        # The property that justifies median+MAD over mean+stddev: one
        # wild baseline value barely moves the robust score.
        clean = [10.0, 10.2, 9.8, 10.1, 9.9]
        polluted = clean[:-1] + [100.0]
        assert robust_zscore(polluted, 20.0) > 3.5


class TestDetectStep:
    def test_finds_an_injected_step(self):
        series = [10.0, 10.2, 9.8, 10.1, 9.9, 10.0, 20.0, 20.1, 19.9]
        first, points = detect_step(series, window=5)
        assert first == 6
        assert points[0].index == 5  # scoring starts after the window
        stepped = [point.index for point in points if point.stepped]
        assert stepped == [6, 7, 8]

    def test_baseline_freezes_at_the_first_step(self):
        # Without freezing, the rolling window absorbs the new plateau
        # and post-step values stop being flagged — the regression would
        # look like a one-sample blip instead of a level shift.
        series = [10.0] * 6 + [20.0] * 6
        first, points = detect_step(series, window=5)
        assert first == 6
        assert all(point.stepped for point in points if point.index >= 6)

    def test_clean_series_has_no_step(self):
        series = [10.0, 10.1, 9.9, 10.0, 10.2, 9.8, 10.0]
        first, points = detect_step(series, window=5)
        assert first is None
        assert points and not any(point.stepped for point in points)

    def test_downward_steps_are_flagged_too(self):
        series = [10.0] * 6 + [1.0]
        first, _ = detect_step(series, window=5)
        assert first == 6

    def test_threshold_tunes_sensitivity(self):
        series = [10.0, 10.2, 9.8, 10.1, 9.9, 10.6]
        strict, _ = detect_step(series, window=5, threshold=1000.0)
        loose, _ = detect_step(series, window=5, threshold=0.1)
        assert strict is None
        assert loose == 5

    def test_short_series_scores_nothing(self):
        first, points = detect_step([1.0, 2.0], window=5)
        assert first is None
        assert points == ()

    def test_window_and_threshold_validation(self):
        with pytest.raises(ReproError, match="window"):
            detect_step([1.0, 2.0], window=0)
        with pytest.raises(ReproError, match="threshold"):
            detect_step([1.0, 2.0], window=2, threshold=0.0)
