"""Unit tests for dynamic scenario execution."""

from __future__ import annotations

import pytest

from repro.adl.behavior import Action, ActionKind, Statechart
from repro.adl.structure import Architecture, Interface
from repro.core.consistency import InconsistencyKind
from repro.core.dynamic import (
    DynamicContext,
    DynamicEvaluator,
    ScenarioBindings,
)
from repro.errors import EvaluationError
from repro.scenarioml.events import TypedEvent
from repro.scenarioml.ontology import Ontology
from repro.scenarioml.scenario import Scenario, ScenarioKind, ScenarioSet
from repro.sim.network import ChannelPolicy
from repro.sim.runtime import RuntimeConfig


@pytest.fixture
def ping_world():
    """Ontology + scenarios + architecture + bindings for a ping system."""
    ontology = Ontology("ping")
    ontology.define_event_type(
        "sendPing", "[sender] pings [receiver]",
        parameters=["sender", "receiver"],
    )
    ontology.define_event_type(
        "receivePong", "[receiver] gets a pong", parameters=["receiver"]
    )
    scenarios = ScenarioSet(ontology)
    scenarios.add(
        Scenario(
            name="round-trip",
            events=(
                TypedEvent(
                    type_name="sendPing",
                    arguments={"sender": "A", "receiver": "B"},
                    label="1",
                ),
                TypedEvent(
                    type_name="receivePong",
                    arguments={"receiver": "A"},
                    label="2",
                ),
            ),
        )
    )
    scenarios.add(
        Scenario(
            name="no-pong-wanted",
            kind=ScenarioKind.NEGATIVE,
            events=(
                TypedEvent(
                    type_name="sendPing",
                    arguments={"sender": "A", "receiver": "B"},
                    label="1",
                ),
                TypedEvent(
                    type_name="receivePong",
                    arguments={"receiver": "A"},
                    label="2",
                ),
            ),
        )
    )

    architecture = Architecture("ping-arch")
    architecture.add_component("A", interfaces=[Interface("port")])
    architecture.add_connector("wire")
    architecture.add_component("B", interfaces=[Interface("port")])
    architecture.link(("A", "port"), ("wire", "a"))
    architecture.link(("wire", "b"), ("B", "port"))
    chart = Statechart("b-chart")
    chart.add_state("idle", initial=True)
    chart.add_transition(
        "idle", "idle", "ping", actions=[Action(ActionKind.REPLY, "pong")]
    )
    architecture.attach_behavior("B", chart)

    bindings = ScenarioBindings()
    bindings.on(
        "sendPing",
        lambda context, event: context.send(
            event.arguments["sender"], "ping",
            destination_entity=event.arguments["receiver"],
        ),
    )
    bindings.expect(
        "receivePong",
        lambda context, event: (
            None
            if context.trace.was_delivered(
                "pong", context.component_for(event.arguments["receiver"])
            )
            else "pong never arrived"
        ),
    )
    return ontology, scenarios, architecture, bindings


class TestBindings:
    def test_duplicate_stimulus_rejected(self):
        bindings = ScenarioBindings()
        bindings.on("e", lambda c, ev: None)
        with pytest.raises(EvaluationError):
            bindings.on("e", lambda c, ev: None)

    def test_duplicate_expectation_rejected(self):
        bindings = ScenarioBindings()
        bindings.expect("e", lambda c, ev: None)
        with pytest.raises(EvaluationError):
            bindings.expect("e", lambda c, ev: None)

    def test_bound_event_types(self):
        bindings = ScenarioBindings()
        bindings.on("a", lambda c, ev: None)
        bindings.expect("b", lambda c, ev: None)
        assert bindings.bound_event_types() == {"a", "b"}

    def test_lookup_missing_returns_none(self):
        bindings = ScenarioBindings()
        assert bindings.stimulus_for("x") is None
        assert bindings.expectation_for("x") is None


class TestEvaluation:
    def test_positive_scenario_passes_on_working_architecture(
        self, ping_world
    ):
        _ontology, scenarios, architecture, bindings = ping_world
        evaluator = DynamicEvaluator(architecture, bindings)
        verdict = evaluator.evaluate(scenarios.get("round-trip"), scenarios)
        assert verdict.passed
        assert verdict.findings == ()
        assert verdict.trace.was_delivered("pong", "A")

    def test_positive_scenario_fails_when_behavior_removed(self, ping_world):
        _ontology, scenarios, architecture, bindings = ping_world
        broken = architecture.clone("broken")
        broken._behaviors.clear()
        evaluator = DynamicEvaluator(broken, bindings)
        verdict = evaluator.evaluate(scenarios.get("round-trip"), scenarios)
        assert not verdict.passed
        (finding,) = verdict.findings
        assert finding.kind is InconsistencyKind.BEHAVIORAL_DIVERGENCE
        assert finding.event_label == "2"

    def test_negative_scenario_polarity(self, ping_world):
        _ontology, scenarios, architecture, bindings = ping_world
        evaluator = DynamicEvaluator(architecture, bindings)
        verdict = evaluator.evaluate(
            scenarios.get("no-pong-wanted"), scenarios
        )
        # The pong DOES arrive, so the negative scenario succeeded: fail.
        assert not verdict.passed
        assert any(
            f.kind is InconsistencyKind.NEGATIVE_SCENARIO_SUCCEEDED
            for f in verdict.findings
        )

    def test_negative_scenario_blocked_passes(self, ping_world):
        _ontology, scenarios, architecture, bindings = ping_world
        broken = architecture.clone("broken")
        broken._behaviors.clear()
        evaluator = DynamicEvaluator(broken, bindings)
        verdict = evaluator.evaluate(
            scenarios.get("no-pong-wanted"), scenarios
        )
        assert verdict.passed

    def test_unresolvable_entity_makes_positive_scenario_fail(
        self, ping_world
    ):
        ontology, _scenarios, architecture, bindings = ping_world
        scenarios = ScenarioSet(ontology)
        scenarios.add(
            Scenario(
                name="ghostly",
                events=(
                    TypedEvent(
                        type_name="sendPing",
                        arguments={"sender": "Ghost", "receiver": "B"},
                    ),
                ),
            )
        )
        evaluator = DynamicEvaluator(architecture, bindings)
        verdict = evaluator.evaluate(scenarios.get("ghostly"), scenarios)
        assert not verdict.passed
        assert any(
            f.kind is InconsistencyKind.UNMAPPED_EVENT for f in verdict.findings
        )

    def test_entity_to_component_table_used(self, ping_world):
        ontology, _scenarios, architecture, bindings = ping_world
        scenarios = ScenarioSet(ontology)
        scenarios.add(
            Scenario(
                name="aliased",
                events=(
                    TypedEvent(
                        type_name="sendPing",
                        arguments={
                            "sender": "the first peer",
                            "receiver": "the second peer",
                        },
                    ),
                    TypedEvent(
                        type_name="receivePong",
                        arguments={"receiver": "the first peer"},
                    ),
                ),
            )
        )
        evaluator = DynamicEvaluator(
            architecture,
            bindings,
            entity_to_component={
                "the first peer": "A",
                "the second peer": "B",
            },
        )
        verdict = evaluator.evaluate(scenarios.get("aliased"), scenarios)
        assert verdict.passed

    def test_runtime_config_controls_channel(self, ping_world):
        _ontology, scenarios, architecture, bindings = ping_world
        evaluator = DynamicEvaluator(
            architecture,
            bindings,
            config=RuntimeConfig(policy=ChannelPolicy(drop_rate=1.0)),
        )
        verdict = evaluator.evaluate(scenarios.get("round-trip"), scenarios)
        assert not verdict.passed

    def test_verdict_render(self, ping_world):
        _ontology, scenarios, architecture, bindings = ping_world
        evaluator = DynamicEvaluator(architecture, bindings)
        verdict = evaluator.evaluate(scenarios.get("round-trip"), scenarios)
        assert verdict.render().startswith("PASS round-trip")


class TestContext:
    def test_component_for_prefers_table(self, ping_world):
        _ontology, _scenarios, architecture, bindings = ping_world
        evaluator = DynamicEvaluator(
            architecture, bindings, entity_to_component={"B": "A"}
        )
        # Build a context the way the evaluator does.
        from repro.sim.runtime import ArchitectureRuntime

        context = DynamicContext(
            ArchitectureRuntime(architecture),
            None,
            {"B": "A"},
            step=10.0,
        )
        assert context.component_for("B") == "A"

    def test_component_for_falls_back_to_element_names(self, ping_world):
        _ontology, _scenarios, architecture, _bindings = ping_world
        from repro.sim.runtime import ArchitectureRuntime

        context = DynamicContext(
            ArchitectureRuntime(architecture), None, {}, step=10.0
        )
        assert context.component_for("A") == "A"
        with pytest.raises(EvaluationError):
            context.component_for("Ghost")
