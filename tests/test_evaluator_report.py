"""Unit tests for the SOSAE facade and report rendering."""

from __future__ import annotations

import pytest

from repro.core.consistency import (
    EvaluationReport,
    Inconsistency,
    InconsistencyKind,
    Severity,
)
from repro.core.constraints import MustRouteVia
from repro.core.evaluator import Sosae
from repro.core.report import render_report
from repro.errors import EvaluationError
from repro.scenarioml.events import TypedEvent
from repro.scenarioml.scenario import Scenario, ScenarioKind, ScenarioSet


class TestSosaePipeline:
    def test_consistent_system(
        self, small_scenarios, chain_architecture, chain_mapping
    ):
        report = Sosae(
            small_scenarios, chain_architecture, chain_mapping
        ).evaluate()
        assert report.consistent
        assert len(report.scenario_verdicts) == 2
        assert report.failed_scenarios == ()

    def test_scenario_selection(
        self, small_scenarios, chain_architecture, chain_mapping
    ):
        report = Sosae(
            small_scenarios, chain_architecture, chain_mapping
        ).evaluate(scenario_names=["make-widget"])
        assert [v.scenario for v in report.scenario_verdicts] == [
            "make-widget"
        ]

    def test_missing_link_makes_report_inconsistent(
        self, small_scenarios, chain_architecture, chain_mapping
    ):
        chain_architecture.excise_links_between("logic", "logic-store")
        report = Sosae(
            small_scenarios, chain_architecture, chain_mapping
        ).evaluate()
        assert not report.consistent
        assert "make-widget" in report.failed_scenarios

    def test_style_violations_reported(
        self, small_scenarios, chain_architecture, chain_mapping
    ):
        chain_architecture.style = "layered"
        chain_architecture.add_component("floating")  # no layer
        report = Sosae(
            small_scenarios, chain_architecture, chain_mapping
        ).evaluate()
        assert any(
            f.kind is InconsistencyKind.STYLE_VIOLATION for f in report.findings
        )

    def test_validation_issues_reported(
        self, small_ontology, chain_architecture, chain_mapping
    ):
        scenarios = ScenarioSet(small_ontology)
        scenarios.add(
            Scenario(name="bad", events=(TypedEvent(type_name="ghost"),))
        )
        report = Sosae(
            scenarios, chain_architecture, chain_mapping
        ).evaluate()
        assert any(
            f.kind is InconsistencyKind.VALIDATION_ERROR
            and f.severity is Severity.ERROR
            for f in report.findings
        )
        assert not report.consistent

    def test_coverage_warnings_reported(
        self, small_scenarios, chain_architecture, chain_mapping
    ):
        chain_mapping.unmap_event("destroy")
        report = Sosae(
            small_scenarios, chain_architecture, chain_mapping
        ).evaluate()
        assert any(
            f.kind is InconsistencyKind.UNMAPPED_EVENT for f in report.findings
        )

    def test_unmapped_component_warning(
        self, small_scenarios, chain_architecture, chain_mapping
    ):
        chain_architecture.add_component("spare")
        report = Sosae(
            small_scenarios, chain_architecture, chain_mapping
        ).evaluate()
        assert any(
            f.kind is InconsistencyKind.UNMAPPED_COMPONENT
            for f in report.findings
        )
        # Warnings alone never make the report inconsistent.
        assert report.consistent

    def test_constraints_checked(
        self, small_scenarios, chain_architecture, chain_mapping
    ):
        chain_architecture.link(("ui", "shortcut"), ("store", "shortcut"))
        report = Sosae(
            small_scenarios,
            chain_architecture,
            chain_mapping,
            constraints=[MustRouteVia("ui", "store", "logic")],
        ).evaluate()
        assert any(
            f.kind is InconsistencyKind.CONSTRAINT_VIOLATION
            for f in report.findings
        )
        assert not report.consistent

    def test_negative_scenarios_evaluated_with_polarity(
        self, small_ontology, chain_architecture, chain_mapping
    ):
        scenarios = ScenarioSet(small_ontology)
        scenarios.add(
            Scenario(
                name="forbidden",
                kind=ScenarioKind.NEGATIVE,
                events=(
                    TypedEvent(
                        type_name="create", arguments={"subject": "w"}
                    ),
                ),
            )
        )
        report = Sosae(
            scenarios, chain_architecture, chain_mapping
        ).evaluate()
        verdict = report.verdict("forbidden")
        assert verdict.negative
        assert not verdict.passed

    def test_dynamic_requires_bindings(
        self, small_scenarios, chain_architecture, chain_mapping
    ):
        sosae = Sosae(small_scenarios, chain_architecture, chain_mapping)
        with pytest.raises(EvaluationError):
            sosae.evaluate(include_dynamic=True)

    def test_verdict_lookup_unknown_raises(
        self, small_scenarios, chain_architecture, chain_mapping
    ):
        report = Sosae(
            small_scenarios, chain_architecture, chain_mapping
        ).evaluate()
        with pytest.raises(KeyError):
            report.verdict("ghost")


class TestReportRendering:
    def make_report(self, small_scenarios, chain_architecture, chain_mapping):
        return Sosae(
            small_scenarios, chain_architecture, chain_mapping
        ).evaluate()

    def test_text_report(
        self, small_scenarios, chain_architecture, chain_mapping
    ):
        report = self.make_report(
            small_scenarios, chain_architecture, chain_mapping
        )
        text = render_report(report)
        assert "overall: CONSISTENT" in text
        assert "PASS make-widget" in text

    def test_markdown_report(
        self, small_scenarios, chain_architecture, chain_mapping
    ):
        report = self.make_report(
            small_scenarios, chain_architecture, chain_mapping
        )
        text = render_report(report, markdown=True)
        assert text.startswith("# Evaluation of `chain`")
        assert "| make-widget | positive | pass |" in text

    def test_inconsistent_markdown_report_lists_findings(
        self, small_scenarios, chain_architecture, chain_mapping
    ):
        chain_architecture.excise_links_between("logic", "logic-store")
        report = self.make_report(
            small_scenarios, chain_architecture, chain_mapping
        )
        text = render_report(report, markdown=True)
        assert "**INCONSISTENT**" in text
        assert "## Findings" in text

    def test_inconsistency_str_formats(self):
        finding = Inconsistency(
            kind=InconsistencyKind.MISSING_LINK,
            message="no path",
            scenario="s",
            event_label="4",
            elements=("a", "b"),
        )
        assert str(finding) == "error/missing-link [s step 4]: no path (a, b)"

    def test_empty_report_is_consistent(self):
        report = EvaluationReport(architecture="empty")
        assert report.consistent
        assert report.all_inconsistencies() == ()

    def test_dynamic_verdicts_rendered_in_text_report(self, crash):
        from repro.sim.network import ChannelPolicy
        from repro.sim.runtime import RuntimeConfig

        report = Sosae(
            crash.scenarios,
            crash.architecture,
            crash.mapping,
            bindings=crash.bindings,
            walkthrough_options=crash.options,
            runtime_config=RuntimeConfig(
                policy=ChannelPolicy(latency=1.0, failure_detection=True)
            ),
        ).evaluate(include_dynamic=True)
        text = render_report(report)
        assert "dynamic execution:" in text
        assert "PASS entity-availability" in text
        markdown = render_report(report, markdown=True)
        assert "## Dynamic execution" in markdown
        assert "| entity-availability | pass |" in markdown
