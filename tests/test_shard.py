"""Multi-process sharded evaluation: report parity and merged telemetry.

The contract under test is the strongest one the shard engine makes:
``BatchEvaluator(workers=N).evaluate(sosae)`` produces the *same report*
as single-process ``sosae.evaluate()`` — same verdicts, same findings,
same order — for any worker count, while the merged telemetry looks like
one recorder's output (one span tree, per-shard lanes, folded metrics).

The worker count for the parity suite honors ``SOSAE_PARITY_WORKERS``
(comma-separated), so CI can run the same tests as a ``--workers 1,2,4``
matrix; the default exercises 1 (degenerate), 2, and 4.
"""

from __future__ import annotations

import os

import pytest

from repro.core.evaluator import Sosae
from repro.core.report_io import report_to_dict
from repro.errors import EvaluationError
from repro.obs import EventBus, Recorder, use, use_events
from repro.shard import BatchEvaluator, ShardTask, plan_shards
from repro.systems.crash import build_crash
from repro.systems.generators import SyntheticSpec, build_synthetic
from repro.systems.pims import build_pims


def _worker_counts() -> tuple[int, ...]:
    raw = os.environ.get("SOSAE_PARITY_WORKERS", "1,2,4")
    return tuple(int(part) for part in raw.split(",") if part.strip())


def _sosae(built, architecture=None) -> Sosae:
    architecture = architecture or built.architecture
    return Sosae(
        built.scenarios,
        architecture,
        built.mapping.rebind(architecture),
        constraints=getattr(built, "constraints", ()),
        walkthrough_options=getattr(built, "options", None),
    )


def _assert_parity(sosae: Sosae, workers: int) -> BatchEvaluator:
    expected = sosae.evaluate()
    evaluator = BatchEvaluator(workers=workers)
    actual = evaluator.evaluate(sosae)
    assert report_to_dict(actual) == report_to_dict(expected)
    # Full-fidelity transport: message traces survive the pool, so the
    # verdict objects compare equal, not just their JSON projections.
    assert actual.scenario_verdicts == expected.scenario_verdicts
    assert actual.findings == expected.findings
    return evaluator


class TestPlanShards:
    def test_contiguous_balanced_order_preserving(self):
        names = tuple(f"s{i}" for i in range(10))
        chunks = plan_shards(names, 3)
        assert len(chunks) == 3
        assert tuple(n for chunk in chunks for n in chunk) == names
        sizes = sorted(len(chunk) for chunk in chunks)
        assert max(sizes) - min(sizes) <= 1

    def test_more_shards_than_names_collapses(self):
        chunks = plan_shards(("a", "b"), 8)
        assert chunks == (("a",), ("b",))

    def test_empty_selection_yields_no_chunks(self):
        assert plan_shards((), 4) == ()

    def test_zero_shards_rejected(self):
        with pytest.raises(EvaluationError):
            plan_shards(("a",), 0)


class TestParity:
    @pytest.mark.parametrize("workers", _worker_counts())
    def test_pims_intact(self, workers):
        _assert_parity(_sosae(build_pims()), workers)

    @pytest.mark.parametrize("workers", _worker_counts())
    def test_pims_excised_fault(self, workers):
        pims = build_pims()
        _assert_parity(_sosae(pims, pims.excised_architecture()), workers)

    @pytest.mark.parametrize("workers", _worker_counts())
    def test_crash_negative_scenarios(self, workers):
        _assert_parity(_sosae(build_crash()), workers)

    def test_generated_system(self):
        system = build_synthetic(SyntheticSpec(scenarios=9, seed=3))
        _assert_parity(_sosae(system), 4)

    def test_scenario_subset_selection(self):
        sosae = _sosae(build_pims())
        names = tuple(s.name for s in sosae.scenario_set.scenarios)[:5]
        expected = sosae.evaluate(scenario_names=names)
        actual = BatchEvaluator(workers=2).evaluate(
            sosae, scenario_names=names
        )
        assert report_to_dict(actual) == report_to_dict(expected)

    def test_invalid_worker_count_rejected(self):
        with pytest.raises(EvaluationError):
            BatchEvaluator(workers=0)


class TestMergedTelemetry:
    def test_spans_stitch_into_one_tree_with_shard_lanes(self):
        sosae = _sosae(build_pims())
        recorder = Recorder()
        evaluator = BatchEvaluator(workers=3)
        with use(recorder):
            evaluator.evaluate(sosae)
        assert len(recorder.roots) == 1
        root = recorder.roots[0]
        assert root.name == "evaluate"
        shards = {span.shard or 0 for span in root.iter_spans()}
        assert shards == {0, 1, 2, 3}
        scenario_spans = [
            span
            for span in root.iter_spans()
            if span.name == "walkthrough.scenario"
        ]
        assert len(scenario_spans) == len(sosae.scenario_set.scenarios)
        # Every worker span's time was rebased into the parent's clock:
        # it must land inside its stitched parent's interval (with slack
        # for coarse clocks).
        walkthrough = next(
            span for span in root.iter_spans()
            if span.name == "evaluate.walkthrough"
        )
        for span in scenario_spans:
            assert span.start_wall >= walkthrough.start_wall - 0.05
            assert span.end_wall <= walkthrough.end_wall + 0.05

    def test_metrics_fold_into_parent_registry(self):
        sosae = _sosae(build_pims())
        single = Recorder()
        with use(single):
            sosae.evaluate()
        merged = Recorder()
        with use(merged):
            BatchEvaluator(workers=3).evaluate(sosae)
        single_steps = single.metrics.to_dict()["walkthrough.steps"]
        merged_steps = merged.metrics.to_dict()["walkthrough.steps"]
        assert merged_steps == single_steps

    def test_worker_events_forward_into_parent_bus(self):
        sosae = _sosae(build_pims())
        single_bus = EventBus()
        with use_events(single_bus):
            sosae.evaluate()
        bus = EventBus()
        with use_events(bus):
            BatchEvaluator(workers=3).evaluate(sosae)
        kinds = [event.kind for event in bus.events()]
        single_kinds = [event.kind for event in single_bus.events()]
        assert sorted(kinds) == sorted(single_kinds)
        # One global sequence, strictly increasing.
        seqs = [event.seq for event in bus.events()]
        assert seqs == sorted(seqs)
        assert len(set(seqs)) == len(seqs)
        # Scenario events from the workers made the trip.
        assert any(kind == "scenario-finished" for kind in kinds)

    def test_shard_stats_cover_all_scenarios(self):
        sosae = _sosae(build_pims())
        evaluator = BatchEvaluator(workers=3)
        evaluator.evaluate(sosae)
        stats = evaluator.last_shard_stats
        assert [s.shard for s in stats] == [1, 2, 3]
        assert sum(s.scenarios for s in stats) == len(
            sosae.scenario_set.scenarios
        )
        assert all(s.wall_seconds >= 0 for s in stats)
        assert evaluator.last_trace_id
        assert evaluator.last_telemetry is not None

    def test_disabled_observability_still_reaches_parity(self):
        sosae = _sosae(build_pims())
        expected = sosae.evaluate()
        actual = BatchEvaluator(workers=2).evaluate(sosae)
        assert report_to_dict(actual) == report_to_dict(expected)


class TestShardTaskTransport:
    def test_task_is_picklable(self):
        import pickle

        from repro.obs.context import TraceContext

        task = ShardTask(
            shard=1,
            scenarios=("a", "b"),
            context=TraceContext(trace_id="t" * 16, shard=1,
                                 parent_span_id="s0.3"),
        )
        assert pickle.loads(pickle.dumps(task)) == task
