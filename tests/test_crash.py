"""Case-study tests: CRASH (paper §4.2, Figs. 5-8)."""

from __future__ import annotations

import pytest

from repro.adl.styles import check_style
from repro.core.dynamic import DynamicEvaluator
from repro.core.evaluator import Sosae
from repro.core.negative import evaluate_negative_scenario
from repro.core.walkthrough import WalkthroughEngine
from repro.scenarioml.scenario import QualityAttribute
from repro.scenarioml.validation import IssueSeverity, validate_scenario_set
from repro.sim.network import ChannelPolicy
from repro.sim.runtime import RuntimeConfig
from repro.systems.crash import (
    COMMUNICATION_MANAGER,
    ENTITY_AVAILABILITY,
    FIRE_CC,
    INTER_ORG_NETWORK,
    MESSAGE_SEQUENCE,
    ORGANIZATIONS,
    POLICE_CC,
    SHARING_INFO_MANAGER,
    UNAUTHORIZED_ACCESS,
    USER_INTERFACE,
    build_crash,
    build_crash_architecture,
    build_crash_mapping,
    build_command_and_control_architecture,
    display,
    insecure_crash_architecture,
)


def detection_config(enabled: bool, seed: int = 0, **policy) -> RuntimeConfig:
    policy.setdefault("latency", 1.0)
    return RuntimeConfig(
        policy=ChannelPolicy(failure_detection=enabled, **policy), seed=seed
    )


class TestArtifacts:
    def test_scenarios_validate_cleanly(self, crash):
        issues = validate_scenario_set(crash.scenarios)
        assert [i for i in issues if i.severity is IssueSeverity.ERROR] == []

    def test_all_seven_organizations_present(self, crash):
        assert len(ORGANIZATIONS) == 7
        for organization in ORGANIZATIONS:
            assert crash.architecture.is_component(
                f"{organization} Command and Control"
            )
            assert crash.architecture.is_component(f"{organization} Display")
            assert crash.architecture.is_component(
                f"{organization} Information Gathering"
            )

    def test_centers_join_the_inter_org_network(self, crash):
        for organization in ORGANIZATIONS:
            assert crash.architecture.links_between(
                f"{organization} Command and Control", INTER_ORG_NETWORK
            )

    def test_quality_attribute_annotations(self, crash):
        availability = crash.scenarios.get(ENTITY_AVAILABILITY)
        assert QualityAttribute.AVAILABILITY in availability.quality_attributes
        sequence = crash.scenarios.get(MESSAGE_SEQUENCE)
        assert QualityAttribute.RELIABILITY in sequence.quality_attributes

    def test_availability_scenario_matches_paper_events(self, crash):
        scenario = crash.scenarios.get(ENTITY_AVAILABILITY)
        assert [event.type_name for event in scenario.events] == [
            "shutdownEntity",
            "sendMessage",
            "sendFailureMessage",
            "receiveFailureMessage",
        ]

    def test_message_sequence_scenario_matches_paper_events(self, crash):
        scenario = crash.scenarios.get(MESSAGE_SEQUENCE)
        assert [event.type_name for event in scenario.events] == [
            "sendMessage",
            "sendMessage",
            "receiveMessage",
            "receiveMessage",
        ]


class TestTypeFamily:
    def test_all_peers_conform_to_their_types(self, crash):
        from repro.systems.crash import build_crash_types

        registry = build_crash_types()
        assert registry.check_conformance(crash.architecture) == []

    def test_seven_command_and_control_instances(self, crash):
        from repro.systems.crash import build_crash_types

        registry = build_crash_types()
        instances = registry.instances_of(
            crash.architecture, "command-and-control"
        )
        assert len(instances) == 7

    def test_type_property_survives_xadl_roundtrip(self, crash):
        from repro.adl.xadl import parse_xadl, to_xadl_xml
        from repro.systems.crash import build_crash_types

        parsed = parse_xadl(to_xadl_xml(crash.architecture))
        registry = build_crash_types()
        assert registry.check_conformance(parsed) == []
        assert (
            parsed.component(POLICE_CC).properties["type"]
            == "command-and-control"
        )


class TestFig7EntityArchitecture:
    def test_conforms_to_c2(self):
        architecture = build_command_and_control_architecture()
        assert architecture.style == "c2"
        assert check_style(architecture) == []

    def test_fig8_components_present(self):
        architecture = build_command_and_control_architecture()
        for name in (
            USER_INTERFACE,
            SHARING_INFO_MANAGER,
            COMMUNICATION_MANAGER,
        ):
            assert architecture.is_component(name)

    def test_attached_to_police_center(self, crash):
        police = crash.architecture.component(POLICE_CC)
        assert police.subarchitecture is not None
        assert police.subarchitecture.is_component(USER_INTERFACE)


class TestFig8Mapping:
    def test_send_message_maps_to_three_fig8_components(self, crash):
        assert crash.mapping.components_for("sendMessage") == (
            USER_INTERFACE,
            SHARING_INFO_MANAGER,
            COMMUNICATION_MANAGER,
        )

    def test_nested_components_resolve_to_police_center(self, crash):
        assert (
            crash.mapping.top_level_component(USER_INTERFACE) == POLICE_CC
        )

    def test_fallback_mapping_without_entity_internals(self, crash):
        flat = build_crash_architecture(with_entity_subarchitecture=False)
        mapping = build_crash_mapping(crash.ontology, flat)
        assert POLICE_CC in mapping.components_for("sendMessage")

    def test_failure_detector_entry_depends_on_variant(self, crash):
        assert crash.mapping.components_for("sendFailureMessage") == (
            "Network Failure Detector",
        )
        without = build_crash_architecture(failure_detection=False)
        mapping = build_crash_mapping(crash.ontology, without)
        assert mapping.components_for("sendFailureMessage") == ()


class TestStaticWalkthroughs:
    def test_positive_scenarios_pass(self, crash):
        engine = WalkthroughEngine(
            crash.architecture, crash.mapping, crash.options
        )
        for scenario in crash.scenarios:
            if scenario.is_negative:
                continue
            verdict = engine.walk_scenario(scenario, crash.scenarios)
            assert verdict.passed, verdict.render()

    def test_static_walkthrough_cannot_distinguish_availability_variants(
        self, crash
    ):
        """The paper's point: static walkthroughs have limited
        effectiveness for run-time qualities — both variants look fine
        statically."""
        scenario = crash.scenarios.get(ENTITY_AVAILABILITY)
        with_detection = WalkthroughEngine(
            crash.architecture, crash.mapping, crash.options
        ).walk_scenario(scenario, crash.scenarios)
        without_arch = build_crash_architecture(failure_detection=False)
        without_detection = WalkthroughEngine(
            without_arch,
            build_crash_mapping(crash.ontology, without_arch),
            crash.options,
        ).walk_scenario(scenario, crash.scenarios)
        assert with_detection.passed
        assert without_detection.passed  # statically indistinguishable

    def test_negative_scenario_blocked_on_secure_architecture(self, crash):
        engine = WalkthroughEngine(
            crash.architecture, crash.mapping, crash.options
        )
        verdict = evaluate_negative_scenario(
            engine, crash.scenarios.get(UNAUTHORIZED_ACCESS), crash.scenarios
        )
        assert verdict.passed

    def test_negative_scenario_flagged_on_insecure_architecture(self, crash):
        insecure = insecure_crash_architecture()
        engine = WalkthroughEngine(
            insecure,
            build_crash_mapping(crash.ontology, insecure),
            crash.options,
        )
        verdict = evaluate_negative_scenario(
            engine, crash.scenarios.get(UNAUTHORIZED_ACCESS), crash.scenarios
        )
        assert not verdict.passed


class TestDynamicExecution:
    def test_availability_passes_with_failure_detection(self, crash):
        evaluator = DynamicEvaluator(
            crash.architecture, crash.bindings, config=detection_config(True)
        )
        verdict = evaluator.evaluate(
            crash.scenarios.get(ENTITY_AVAILABILITY), crash.scenarios
        )
        assert verdict.passed, verdict.render()

    def test_availability_fails_without_failure_detection(self, crash):
        evaluator = DynamicEvaluator(
            crash.architecture, crash.bindings, config=detection_config(False)
        )
        verdict = evaluator.evaluate(
            crash.scenarios.get(ENTITY_AVAILABILITY), crash.scenarios
        )
        assert not verdict.passed
        labels = {f.event_label for f in verdict.findings}
        assert labels == {"3", "4"}

    def test_availability_alert_reaches_fire_display(self, crash):
        evaluator = DynamicEvaluator(
            crash.architecture, crash.bindings, config=detection_config(True)
        )
        verdict = evaluator.evaluate(
            crash.scenarios.get(ENTITY_AVAILABILITY), crash.scenarios
        )
        assert verdict.trace.was_delivered(
            "availability-alert", display("Fire Department")
        )

    def test_message_sequence_passes_on_fifo_channels(self, crash):
        evaluator = DynamicEvaluator(
            crash.architecture,
            crash.bindings,
            config=detection_config(True, fifo=True),
        )
        verdict = evaluator.evaluate(
            crash.scenarios.get(MESSAGE_SEQUENCE), crash.scenarios
        )
        assert verdict.passed

    def test_message_sequence_can_fail_on_reordering_channels(self, crash):
        for seed in range(40):
            evaluator = DynamicEvaluator(
                crash.architecture,
                crash.bindings,
                config=detection_config(
                    True, seed=seed, fifo=False, jitter=40.0
                ),
            )
            verdict = evaluator.evaluate(
                crash.scenarios.get(MESSAGE_SEQUENCE), crash.scenarios
            )
            if not verdict.passed:
                assert any(
                    "out of order" in f.message for f in verdict.findings
                )
                return
        pytest.fail("no seed reordered the two requests")

    def test_share_situation_info_dynamic(self, crash):
        evaluator = DynamicEvaluator(
            crash.architecture, crash.bindings, config=detection_config(True)
        )
        verdict = evaluator.evaluate(
            crash.scenarios.get("share-situation-info"), crash.scenarios
        )
        assert verdict.passed, verdict.render()

    def test_public_report_dynamic(self, crash):
        evaluator = DynamicEvaluator(
            crash.architecture, crash.bindings, config=detection_config(True)
        )
        verdict = evaluator.evaluate(
            crash.scenarios.get("public-report"), crash.scenarios
        )
        assert verdict.passed, verdict.render()

    def test_full_sosae_dynamic_pipeline(self, crash):
        report = Sosae(
            crash.scenarios,
            crash.architecture,
            crash.mapping,
            bindings=crash.bindings,
            walkthrough_options=crash.options,
            runtime_config=detection_config(True),
        ).evaluate(include_dynamic=True)
        assert report.consistent
        assert len(report.dynamic_verdicts) == 4  # all QA scenarios
