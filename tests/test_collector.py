"""The telemetry collector: partial transport, deterministic merging.

The headline property (the ISSUE's acceptance bar): merging the same
worker partials in *any arrival order* yields byte-identical exported
telemetry — same span JSONL, same Chrome trace document, same merged
``MetricsRegistry.to_dict()`` — because span ids are minted at creation
and the merge sorts by ``(shard, trace_id)``, never arrival order.
"""

from __future__ import annotations

import json
import random

import pytest

from repro.errors import ReproError
from repro.obs import (
    EventBus,
    MetricsRegistry,
    Recorder,
    TelemetryCollector,
    TraceContext,
    WorkerPartial,
    chrome_trace_json,
    partial_from_jsonl,
    partial_to_jsonl,
    render_prometheus,
    snapshot_partial,
    spans_to_jsonl,
    use,
    use_events,
)
from repro.obs.events import ScenarioFinished, ScenarioStarted
from repro.obs.spans import SpanRecorder

TRACE = "t0t0t0t0t0t0t0t0"


def _worker_partial(shard: int, scenarios=("a", "b"), parent=None):
    """A realistic partial: a worker recorder + bus, frozen."""
    recorder = Recorder(
        spans=SpanRecorder(
            context=TraceContext(
                trace_id=TRACE, shard=shard, parent_span_id=parent
            )
        )
    )
    bus = EventBus()
    with use(recorder), use_events(bus):
        with recorder.span("shard", shard=shard):
            for name in scenarios:
                bus.emit(ScenarioStarted(scenario=f"{name}{shard}", traces=1))
                with recorder.span(
                    "walkthrough.scenario", scenario=f"{name}{shard}"
                ):
                    recorder.counter("walkthrough.steps").inc(shard)
                    recorder.histogram("walk_seconds").observe(0.1 * shard)
                bus.emit(
                    ScenarioFinished(
                        scenario=f"{name}{shard}", passed=True,
                        findings=0, wall_seconds=0.01,
                    )
                )
    return snapshot_partial(
        shard=shard, trace_id=TRACE, recorder=recorder, events=bus.events()
    )


def _merge(partials):
    collector = TelemetryCollector()
    for partial in partials:
        collector.ingest(partial)
    return collector.merge()


class TestPartialTransport:
    def test_dict_round_trip(self):
        partial = _worker_partial(1)
        assert WorkerPartial.from_dict(partial.to_dict()) == partial

    def test_jsonl_round_trip(self):
        partial = _worker_partial(2)
        assert partial_from_jsonl(partial_to_jsonl(partial)) == partial

    def test_jsonl_rejects_missing_header(self):
        with pytest.raises(ReproError, match="no header"):
            partial_from_jsonl('{"record": "metrics", "state": {}}\n')

    def test_jsonl_rejects_unknown_record_kind(self):
        text = partial_to_jsonl(_worker_partial(1))
        text += '{"record": "mystery"}\n'
        with pytest.raises(ReproError, match="unknown record"):
            partial_from_jsonl(text)

    def test_dict_rejects_wrong_format(self):
        data = _worker_partial(1).to_dict()
        data["format"] = 99
        with pytest.raises(ReproError, match="format"):
            WorkerPartial.from_dict(data)

    def test_ingest_file(self, tmp_path):
        partial = _worker_partial(1)
        path = tmp_path / "partial.jsonl"
        path.write_text(partial_to_jsonl(partial), encoding="utf-8")
        collector = TelemetryCollector()
        collector.ingest_file(path)
        assert collector.partials == (partial,)


class TestDeterministicMerge:
    def test_arrival_order_independent_byte_identical(self):
        """The property test: shuffle worker-partial arrival order; the
        merged span JSONL, Chrome trace, and metrics snapshot must be
        byte-for-byte identical every time."""
        partials = [_worker_partial(shard) for shard in (1, 2, 3, 4)]
        baseline = _merge(partials)
        baseline_spans = spans_to_jsonl(baseline.roots)
        baseline_trace = chrome_trace_json(baseline.roots)
        baseline_metrics = json.dumps(
            baseline.metrics.to_dict(), sort_keys=True
        )
        baseline_events = [
            (e.seq, e.kind, e.to_dict()) for e in baseline.events
        ]
        rng = random.Random(20260808)
        for _ in range(6):
            shuffled = partials[:]
            rng.shuffle(shuffled)
            merged = _merge(shuffled)
            assert spans_to_jsonl(merged.roots) == baseline_spans
            assert chrome_trace_json(merged.roots) == baseline_trace
            assert (
                json.dumps(merged.metrics.to_dict(), sort_keys=True)
                == baseline_metrics
            )
            assert [
                (e.seq, e.kind, e.to_dict()) for e in merged.events
            ] == baseline_events

    def test_events_interleave_in_shard_order_with_global_seq(self):
        merged = _merge([_worker_partial(2), _worker_partial(1)])
        seqs = [event.seq for event in merged.events]
        assert seqs == list(range(1, len(seqs) + 1))
        scenario_labels = [
            event.scenario
            for event in merged.events
            if isinstance(event, ScenarioStarted)
        ]
        # Shard 1's events come first despite arriving second.
        assert scenario_labels == ["a1", "b1", "a2", "b2"]

    def test_metrics_merge_semantics(self):
        merged = _merge([_worker_partial(1), _worker_partial(2)])
        snapshot = merged.metrics.to_dict()
        # Counters sum across shards: 2 scenarios x shard-id increments.
        assert snapshot["walkthrough.steps"]["value"] == 2 * 1 + 2 * 2
        # Histograms union samples exactly.
        histogram = snapshot["walk_seconds"]
        assert histogram["count"] == 4
        assert histogram["min"] == pytest.approx(0.1)
        assert histogram["max"] == pytest.approx(0.2)

    def test_shard_summaries(self):
        merged = _merge([_worker_partial(2), _worker_partial(1)])
        assert [summary.shard for summary in merged.shards] == [1, 2]
        assert all(summary.spans == 3 for summary in merged.shards)
        assert all(summary.events == 4 for summary in merged.shards)

    def test_merge_is_idempotent_and_seals_ingest(self):
        collector = TelemetryCollector()
        collector.ingest(_worker_partial(1))
        first = collector.merge()
        assert collector.merge() is first
        with pytest.raises(ReproError, match="already merged"):
            collector.ingest(_worker_partial(2))


class TestParentStitching:
    def test_worker_roots_stitch_under_named_parent_span(self):
        parent = Recorder()
        with use(parent):
            with parent.span("evaluate"):
                with parent.span("evaluate.walkthrough") as walk_span:
                    parent_id = walk_span.span_id
                    collector = TelemetryCollector(parent=parent)
                    for shard in (2, 1):
                        collector.ingest(
                            _worker_partial(shard, parent=parent_id)
                        )
                    merged = collector.merge()
        assert merged.recorder is parent
        assert len(parent.roots) == 1
        walkthrough = next(
            span
            for span in parent.roots[0].iter_spans()
            if span.name == "evaluate.walkthrough"
        )
        shard_children = [
            child for child in walkthrough.children if child.name == "shard"
        ]
        assert [child.shard for child in shard_children] == [1, 2]

    def test_unknown_parent_id_falls_back_to_root(self):
        parent = Recorder()
        with use(parent):
            with parent.span("evaluate"):
                pass
        collector = TelemetryCollector(parent=parent)
        collector.ingest(_worker_partial(1, parent="s9.999"))
        merged = collector.merge()
        assert len(merged.roots) == 2

    def test_clock_rebase_shifts_worker_times(self):
        first = _worker_partial(1)
        second = _worker_partial(2)
        # Pretend shard 2's process clock anchor sits 100s ahead of
        # shard 1's: after rebasing, shard 2's spans must land ~100s
        # later on the shared timeline.
        skewed = WorkerPartial.from_dict(
            {**second.to_dict(), "anchor": second.anchor + 100.0}
        )
        aligned = _merge([first, second])
        shifted = _merge([first, skewed])
        delta = (
            shifted.roots[1].start_wall - aligned.roots[1].start_wall
        )
        assert delta == pytest.approx(100.0, abs=1.0)
        # Shard 1 stays put (within anchor jitter: each clock_anchor()
        # call differs by sub-microsecond noise, so which same-epoch
        # partial supplies the reference anchor is not exact).
        assert shifted.roots[0].start_wall == pytest.approx(
            aligned.roots[0].start_wall, abs=1e-3
        )


class TestMergedRegistryExposition:
    def test_prometheus_summaries_from_merged_registry(self):
        """The merged registry renders quantile summaries like a live
        one — count/sum aggregate across shards, quantiles come from the
        unioned reservoir."""
        merged = _merge([_worker_partial(1), _worker_partial(2)])
        text = render_prometheus(merged.metrics.to_dict())
        assert "sosae_walk_seconds_count 4" in text
        assert 'sosae_walk_seconds{quantile="0.5"}' in text
        assert "sosae_walkthrough_steps_total 6" in text

    def test_histogram_state_guard_rejects_summary_dict(self):
        """merge_state is for full-fidelity state_dict payloads; feeding
        it a to_dict summary (no samples) must fail loudly, not merge
        silently-empty reservoirs."""
        registry = MetricsRegistry()
        registry.histogram("walk_seconds").observe(0.1)
        summary_shaped = {
            "walk_seconds": {"type": "histogram", "count": 1, "sum": 0.1}
        }
        with pytest.raises(ReproError):
            MetricsRegistry().merge_state(summary_shaped)
