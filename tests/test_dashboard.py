"""The unified offline HTML observability dashboard."""

from __future__ import annotations

import json

import pytest

from repro.core.evaluator import Sosae
from repro.errors import ReproError
from repro.obs import (
    EventBus,
    JobRecord,
    Profile,
    Recorder,
    RunRecord,
    RunRegistry,
    build_dashboard,
    chrome_trace_json,
    load_trace_file,
    spans_to_jsonl,
    use,
    use_events,
)
from repro.obs.dashboard import _in_flight_series
from repro.obs.spans import Span


def _span(name: str, start: float, end: float) -> Span:
    span = Span(name)
    span.start_wall = start
    span.end_wall = end
    span.start_cpu = 0.0
    span.end_cpu = (end - start) / 2
    return span


def _forest() -> tuple[Span, ...]:
    root = _span("evaluate", 0.0, 1.0)
    child = _span("evaluate.walkthrough", 0.1, 0.9)
    grandchild = _span("walk.scenario", 0.2, 0.5)
    child.add_child(grandchild)
    root.add_child(child)
    return (root,)


def _record(run_id="r0001", wall=0.5, findings=0, metrics=None):
    return RunRecord(
        run_id=run_id,
        label="demo",
        timestamp=0.0,
        git_sha=None,
        wall_seconds=wall,
        consistent=findings == 0,
        scenarios_passed=2,
        scenarios_failed=0 if findings == 0 else 1,
        findings=findings,
        report_digest="d",
        metrics=metrics or {},
        stages={},
    )


@pytest.fixture
def observed_evaluation(small_scenarios, chain_architecture, chain_mapping):
    """A real evaluation with the recorder and the event bus both live."""
    recorder = Recorder()
    bus = EventBus(capacity=4096)
    with use(recorder), use_events(bus):
        report = Sosae(
            small_scenarios, chain_architecture, chain_mapping
        ).evaluate()
    return report, recorder, bus.events()


class TestLoadTraceFile:
    def test_detects_chrome_trace_documents(self, tmp_path):
        path = tmp_path / "trace.json"
        path.write_text(chrome_trace_json(_forest()))
        roots = load_trace_file(path)
        assert [root.name for root in roots] == ["evaluate"]
        assert roots[0].count() == 3

    def test_detects_span_jsonl_streams(self, tmp_path):
        path = tmp_path / "spans.jsonl"
        path.write_text(spans_to_jsonl(_forest()))
        roots = load_trace_file(path)
        assert [root.name for root in roots] == ["evaluate"]
        assert roots[0].count() == 3

    def test_empty_file_yields_no_spans(self, tmp_path):
        path = tmp_path / "empty.json"
        path.write_text("\n")
        assert load_trace_file(path) == ()


class TestBuildDashboard:
    def test_refuses_to_render_nothing(self):
        with pytest.raises(ReproError, match="nothing to render"):
            build_dashboard()

    def test_spans_alone_render_a_flamegraph(self):
        html = build_dashboard(spans=_forest(), generated_at=0.0)
        assert "Pipeline flamegraph" in html
        assert "evaluate.walkthrough" in html
        # Sections without input degrade to an empty-state note, not
        # an error.
        assert "Metric trends" in html and "Event timeline" in html

    def test_runs_alone_render_sparkline_trends(self):
        runs = [
            _record("r0001", wall=0.50),
            _record("r0002", wall=0.40),
            _record("r0003", wall=0.45, findings=2),
        ]
        html = build_dashboard(runs=runs, generated_at=0.0)
        assert "Metric trends" in html
        assert "<svg" in html  # sparklines are inline SVG
        assert "wall_seconds" in html

    def test_full_dashboard_from_a_real_evaluation(
        self, observed_evaluation, tmp_path
    ):
        report, recorder, events = observed_evaluation
        registry = RunRegistry(tmp_path / "runs")
        registry.record("demo", report, recorder)
        html = build_dashboard(
            spans=recorder.roots,
            runs=registry.load(),
            report=report,
            events=events,
            title="full house",
            generated_at=0.0,
        )
        assert "full house" in html
        assert "evaluation-started" in html
        assert "evaluation-finished" in html
        assert "Consistent" in html or "consistent" in html

    def test_findings_table_carries_ids_and_provenance(
        self, small_scenarios, chain_architecture, chain_mapping
    ):
        chain_architecture.excise_links_between("logic", "logic-store")
        recorder = Recorder()
        with use(recorder):
            report = Sosae(
                small_scenarios, chain_architecture, chain_mapping
            ).evaluate()
        assert not report.consistent
        html = build_dashboard(report=report, generated_at=0.0)
        for finding in report.all_inconsistencies():
            assert finding.finding_id in html

    def test_is_self_contained(self, observed_evaluation):
        report, recorder, events = observed_evaluation
        html = build_dashboard(
            spans=recorder.roots,
            report=report,
            events=events,
            generated_at=0.0,
        )
        assert "http://" not in html
        assert "https://" not in html
        for tag in ("link rel", "src=", "@import", "url("):
            assert tag not in html
        assert html.startswith("<!DOCTYPE html>")
        assert html.rstrip().endswith("</html>")

    def test_dark_mode_and_table_views_present(self):
        html = build_dashboard(spans=_forest(), generated_at=0.0)
        assert "prefers-color-scheme: dark" in html
        assert "<details" in html and "<table" in html

    def test_escapes_hostile_names(self):
        html = build_dashboard(
            spans=(_span("<script>alert(1)</script>", 0.0, 1.0),),
            title="<b>sneaky</b>",
            generated_at=0.0,
        )
        assert "<script>alert(1)</script>" not in html
        assert "<b>sneaky</b>" not in html


def _sharded_forest() -> tuple[Span, ...]:
    """A merged-looking forest: main-process envelope with two worker
    shard subtrees stitched under the walkthrough stage."""
    root = _span("evaluate", 0.0, 1.0)
    walk = _span("evaluate.walkthrough", 0.1, 0.9)
    root.add_child(walk)
    root.span_id, walk.span_id = "s0.1", "s0.2"
    for shard in (1, 2):
        shard_span = _span("shard", 0.15, 0.85)
        shard_span.shard = shard
        shard_span.span_id = f"s{shard}.1"
        shard_span.parent_id = walk.span_id
        for index, name in enumerate(("alpha", "beta")):
            scenario = _span(
                "walkthrough.scenario", 0.2 + index * 0.3, 0.4 + index * 0.3
            )
            scenario.shard = shard
            scenario.span_id = f"s{shard}.{index + 2}"
            scenario.parent_id = shard_span.span_id
            scenario.attributes.update(
                {"scenario": f"{name}-{shard}", "cost.steps": 5 * shard,
                 "cost.index_queries": 2, "cost.bfs_expansions": 1,
                 "cost.findings": 0}
            )
            shard_span.add_child(scenario)
        walk.add_child(shard_span)
    return (root,)


class TestShardLanes:
    def test_multi_shard_trace_renders_lanes(self):
        html = build_dashboard(spans=_sharded_forest())
        assert "Shard lanes" in html
        assert html.count('class="lane"') == 3  # main + 2 shards
        assert ">main</div>" in html
        assert ">shard 1</div>" in html and ">shard 2</div>" in html
        assert "alpha-1" in html and "beta-2" in html

    def test_single_process_trace_degrades_to_a_note(self):
        html = build_dashboard(spans=_forest())
        assert "Shard lanes" in html
        assert "Single-process trace" in html
        assert 'class="lane"' not in html

    def test_old_idless_trace_file_still_renders(self, tmp_path):
        """Back-compat: a trace written before span identity existed
        loads and renders (flamegraph + single-process note)."""
        path = tmp_path / "old.jsonl"
        path.write_text(
            '{"id": 0, "parent": null, "name": "evaluate",'
            ' "start_wall": 0.0, "end_wall": 1.0,'
            ' "start_cpu": 0.0, "end_cpu": 0.5, "attributes": {}}\n'
        )
        roots = load_trace_file(path)
        assert roots[0].span_id is None
        html = build_dashboard(spans=roots)
        assert "Pipeline flamegraph" in html
        assert "Single-process trace" in html


class TestCostTreemap:
    def test_treemap_from_trace_spans(self):
        html = build_dashboard(spans=_sharded_forest())
        assert "Scenario cost" in html
        assert html.count('class="treemap-cell"') == 4
        assert "source: loaded trace" in html
        # The table view carries the work-unit counters.
        assert "index queries" in html
        assert "BFS" in html

    def test_treemap_falls_back_to_recorded_run_costs(self):
        record = RunRecord.from_dict(
            {**_record().to_dict(),
             "scenarios": {
                 "slow-one": {"wall_seconds": 0.4, "shard": 1,
                              "steps": 9, "index_queries": 3,
                              "bfs_expansions": 1, "findings": 0},
             }}
        )
        html = build_dashboard(runs=[record])
        assert "slow-one" in html
        assert "source: run r0001" in html

    def test_no_costs_degrades_to_a_note(self):
        html = build_dashboard(spans=_forest())
        assert "No per-scenario costs" in html


def _profile(counts, hz=97.0, wall=0.5):
    return Profile(
        counts={tuple(stack): count for stack, count in counts.items()},
        hz=hz,
        wall_seconds=wall,
    )


class TestDifferentialFlamegraph:
    def test_two_profiles_render_red_blue_cells(self):
        before = _profile({("m:hot:1", "m:leaf:2"): 8, ("m:cool:3",): 8})
        after = _profile({("m:hot:1", "m:leaf:2"): 14, ("m:cool:3",): 2})
        html = build_dashboard(
            profile_before=before, profile_after=after
        )
        assert "Differential profile" in html
        assert "hot" in html and "cool" in html
        # Regressed frames pick a red, improved frames a blue.
        assert "#9c2424" in html or "#b23d3d" in html or "#b55f5f" in html
        assert "#2561a8" in html or "#3a7ac2" in html or "#5b8ec9" in html
        # The top-movers table accompanies the graph.
        assert "self%" in html or "self" in html

    def test_single_profile_falls_back_to_plain_flamegraph(self):
        html = build_dashboard(
            profile_after=_profile({("m:f:1", "m:g:2"): 5})
        )
        assert "single profile (after)" in html
        assert "differential" in html

    def test_zero_sample_profiles_degrade_to_a_note(self):
        html = build_dashboard(
            profile_before=Profile(),
            profile_after=Profile(),
            spans=_forest(),
        )
        assert "Differential profile" in html
        # No division by zero; an empty-state note instead of cells.
        assert "zero samples" in html

    def test_profiles_alone_are_enough_input(self):
        html = build_dashboard(profile_after=_profile({("m:f:1",): 3}))
        assert "<html" in html

    def test_profile_section_absent_note_without_input(self):
        html = build_dashboard(spans=_forest())
        assert "Differential profile" in html


def _job(job_id, tenant="acme", state="done", submitted=0.0, finished=1.0,
         **kw):
    return JobRecord(
        job_id=job_id, tenant=tenant, state=state,
        submitted_at=submitted,
        finished_at=finished if state in ("done", "failed") else None,
        **kw,
    )


class TestTenantJobsSection:
    def test_in_flight_series_tracks_queue_depth(self):
        records = [
            _job("j0001", submitted=0.0, finished=3.0),
            _job("j0002", submitted=1.0, finished=2.0),
            _job("j0003", state="rejected", submitted=1.5, finished=None),
        ]
        series = _in_flight_series(records)
        # starts at zero, peaks at 2 while both jobs overlap, drains
        assert series[0] == 0.0
        assert max(series) == 2.0
        assert series[-1] == 0.0

    def test_jobs_alone_render_the_tenant_section(self):
        jobs = [
            _job("j0001", run_id="r0001", wall_seconds=0.4),
            _job("j0002", tenant="beta", state="rejected",
                 reason="quota", finished=None),
        ]
        html = build_dashboard(jobs=jobs, generated_at=10.0)
        assert "Tenant jobs" in html
        assert "quota pressure" in html
        assert "j0001" in html and "j0002" in html
        assert "acme" in html and "beta" in html

    def test_tenant_filter_scopes_jobs_and_title(self):
        jobs = [
            _job("j0001", tenant="acme", run_id="r0001"),
            _job("j0002", tenant="beta", run_id="r0002"),
        ]
        html = build_dashboard(jobs=jobs, tenant="acme", generated_at=10.0)
        assert "tenant acme" in html
        assert "j0001" in html
        assert "j0002" not in html

    def test_empty_jobs_section_degrades_to_a_note(self):
        html = build_dashboard(runs=[_record()], generated_at=0.0)
        assert "Tenant jobs" in html  # section header with empty-state
