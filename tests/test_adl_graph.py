"""Unit tests for architecture graph analyses."""

from __future__ import annotations

import pytest

from repro.adl.graph import (
    articulation_components,
    can_communicate,
    communication_graph,
    communication_path,
    directed_communication_graph,
    is_fully_connected,
    reachable_elements,
)
from repro.adl.structure import Architecture, Direction, Interface
from repro.errors import ArchitectureError


class TestGraphs:
    def test_communication_graph_nodes_and_edges(self, chain_architecture):
        graph = communication_graph(chain_architecture)
        assert graph.number_of_nodes() == 5
        assert graph.number_of_edges() == 4
        assert graph.nodes["ui"]["kind"] == "component"
        assert graph.nodes["ui-logic"]["kind"] == "connector"

    def test_directed_graph_honours_directions(self, chain_architecture):
        graph = directed_communication_graph(chain_architecture)
        assert graph.has_edge("ui", "ui-logic")
        assert not graph.has_edge("ui-logic", "ui")
        assert graph.has_edge("ui-logic", "logic")

    def test_inout_links_are_bidirectional(self):
        architecture = Architecture("bi")
        architecture.add_component("a")
        architecture.add_component("b")
        architecture.link(("a", "p"), ("b", "q"))
        graph = directed_communication_graph(architecture)
        assert graph.has_edge("a", "b")
        assert graph.has_edge("b", "a")


class TestPaths:
    def test_path_through_connectors(self, chain_architecture):
        path = communication_path(chain_architecture, "ui", "store")
        assert path == ("ui", "ui-logic", "logic", "logic-store", "store")

    def test_trivial_self_path(self, chain_architecture):
        assert communication_path(chain_architecture, "ui", "ui") == ("ui",)

    def test_no_path_after_excision(self, chain_architecture):
        chain_architecture.excise_links_between("logic", "logic-store")
        assert communication_path(chain_architecture, "ui", "store") is None
        assert not can_communicate(chain_architecture, "ui", "store")

    def test_directed_path_respects_one_way_links(self, chain_architecture):
        assert can_communicate(
            chain_architecture, "ui", "store", respect_directions=True
        )
        assert not can_communicate(
            chain_architecture, "store", "ui", respect_directions=True
        )

    def test_unknown_elements_raise(self, chain_architecture):
        with pytest.raises(ArchitectureError):
            communication_path(chain_architecture, "ghost", "store")
        with pytest.raises(ArchitectureError):
            communication_path(chain_architecture, "ui", "ghost")

    def test_via_waypoints(self, chain_architecture):
        path = communication_path(
            chain_architecture, "ui", "store", via=["logic"]
        )
        assert path is not None
        assert "logic" in path

    def test_via_unreachable_waypoint(self, chain_architecture):
        chain_architecture.add_component("island")
        assert (
            communication_path(
                chain_architecture, "ui", "store", via=["island"]
            )
            is None
        )

    def test_avoiding_blocks_paths(self, chain_architecture):
        assert (
            communication_path(
                chain_architecture, "ui", "store", avoiding=["logic"]
            )
            is None
        )

    def test_avoiding_ignores_endpoints(self, chain_architecture):
        path = communication_path(
            chain_architecture, "ui", "store", avoiding=["ui", "store"]
        )
        assert path is not None

    def test_avoiding_with_alternative_route(self):
        architecture = Architecture("diamond")
        for name in ("src", "left", "right", "dst"):
            architecture.add_component(name)
        architecture.link(("src", "l"), ("left", "a"))
        architecture.link(("left", "b"), ("dst", "l"))
        architecture.link(("src", "r"), ("right", "a"))
        architecture.link(("right", "b"), ("dst", "r"))
        path = communication_path(
            architecture, "src", "dst", avoiding=["left"]
        )
        assert path == ("src", "right", "dst")


class TestCachedGraphImmutability:
    """Queries must never mutate any graph — neither the index's cached
    graphs nor graphs handed out through the public API. (Historically,
    ``avoiding`` removed nodes from the graph it searched; with a shared
    cached graph that corrupts every later query.)"""

    def test_avoiding_does_not_mutate_cached_graph(self, chain_architecture):
        from repro.adl.index import communication_index

        index = communication_index(chain_architecture)
        cached = index.graph()
        nodes_before = set(cached.nodes)
        edges_before = cached.number_of_edges()

        assert (
            communication_path(
                chain_architecture, "ui", "store", avoiding=["logic"]
            )
            is None
        )
        assert set(cached.nodes) == nodes_before
        assert cached.number_of_edges() == edges_before

    def test_reused_graph_answers_correctly_after_avoiding_query(
        self, chain_architecture
    ):
        # The very same architecture (and thus the same cached graph)
        # must still find the path an earlier `avoiding` query excluded.
        blocked = communication_path(
            chain_architecture, "ui", "store", avoiding=["logic"]
        )
        assert blocked is None
        unblocked = communication_path(chain_architecture, "ui", "store")
        assert unblocked == ("ui", "ui-logic", "logic", "logic-store", "store")

    def test_avoiding_does_not_mutate_directed_cached_graph(
        self, chain_architecture
    ):
        from repro.adl.index import communication_index

        index = communication_index(chain_architecture)
        cached = index.graph(respect_directions=True)
        nodes_before = set(cached.nodes)
        communication_path(
            chain_architecture,
            "ui",
            "store",
            respect_directions=True,
            avoiding=["logic"],
        )
        assert set(cached.nodes) == nodes_before
        assert can_communicate(
            chain_architecture, "ui", "store", respect_directions=True
        )

    def test_returned_builder_graph_is_callers_own(self, chain_architecture):
        # communication_graph returns a fresh graph; mutating it must not
        # poison later queries.
        graph = communication_graph(chain_architecture)
        graph.remove_node("logic")
        assert can_communicate(chain_architecture, "ui", "store")


class TestReachabilityAndCuts:
    def test_reachable_elements_undirected(self, chain_architecture):
        reached = reachable_elements(chain_architecture, "ui")
        assert reached == {"ui-logic", "logic", "logic-store", "store"}

    def test_reachable_elements_directed(self, chain_architecture):
        assert reachable_elements(
            chain_architecture, "store", respect_directions=True
        ) == frozenset()

    def test_reachable_unknown_raises(self, chain_architecture):
        with pytest.raises(ArchitectureError):
            reachable_elements(chain_architecture, "ghost")

    def test_is_fully_connected(self, chain_architecture):
        assert is_fully_connected(chain_architecture)
        chain_architecture.add_component("island")
        assert not is_fully_connected(chain_architecture)

    def test_single_element_is_connected(self):
        architecture = Architecture("solo")
        architecture.add_component("only")
        assert is_fully_connected(architecture)

    def test_articulation_components(self, chain_architecture):
        assert articulation_components(chain_architecture) == {"logic"}

    def test_no_articulation_in_ring(self):
        architecture = Architecture("ring")
        names = ["a", "b", "c"]
        for name in names:
            architecture.add_component(name)
        architecture.link(("a", "x"), ("b", "x"))
        architecture.link(("b", "y"), ("c", "y"))
        architecture.link(("c", "z"), ("a", "z"))
        assert articulation_components(architecture) == frozenset()
