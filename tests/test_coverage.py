"""Unit tests for coverage analysis."""

from __future__ import annotations

from repro.core.coverage import compute_coverage
from repro.core.mapping import Mapping


class TestCoverage:
    def test_exercised_and_untouched_components(
        self, small_scenarios, chain_mapping
    ):
        report = compute_coverage(small_scenarios, chain_mapping)
        assert set(report.exercised_components) == {"ui", "logic", "store"}
        assert report.untouched_components == ()
        assert report.component_coverage == 1.0

    def test_untouched_component_reported(
        self, small_scenarios, chain_mapping, chain_architecture
    ):
        chain_architecture.add_component("spare")
        mapping = Mapping(
            chain_mapping.ontology, chain_architecture
        )
        mapping.update(chain_mapping.entries)
        report = compute_coverage(small_scenarios, mapping)
        assert "spare" in report.untouched_components
        assert report.component_coverage < 1.0

    def test_used_event_types_sorted_by_count(
        self, small_scenarios, chain_mapping
    ):
        report = compute_coverage(small_scenarios, chain_mapping)
        names = [name for name, _count in report.used_event_types]
        assert set(names) == {"create", "destroy", "notify"}

    def test_unused_event_types(self, small_scenarios, chain_mapping):
        chain_mapping.ontology.define_event_type("idle-type")
        report = compute_coverage(small_scenarios, chain_mapping)
        assert "idle-type" in report.unused_event_types
        assert "act" not in report.unused_event_types  # abstract

    def test_per_scenario_counts(self, small_scenarios, chain_mapping):
        report = compute_coverage(small_scenarios, chain_mapping)
        by_name = {s.scenario: s for s in report.scenarios}
        make = by_name["make-widget"]
        assert make.typed_events == 2
        assert make.simple_events == 0
        assert make.mapped_events == 2
        assert make.mappable_ratio == 1.0
        drop = by_name["drop-widget"]
        assert drop.simple_events == 1
        assert drop.mappable_ratio == 0.5

    def test_subtype_only_mapped_event_counts_as_mapped(
        self, small_scenarios, chain_mapping
    ):
        """Regression: an event type mapped only via a supertype hop
        must count as mapped/exercised, exactly as the walkthrough's
        ``resolution_for`` would place it."""
        mapping = Mapping(
            chain_mapping.ontology, chain_mapping.architecture
        )
        # Map ONLY the abstract supertype; create/destroy resolve
        # through the hierarchy, never from a direct entry.
        mapping.map_event("act", "logic")
        mapping.map_event("notify", "ui")
        report = compute_coverage(small_scenarios, mapping)
        assert "logic" in report.exercised_components
        by_name = {s.scenario: s for s in report.scenarios}
        make = by_name["make-widget"]
        assert make.mapped_events == make.typed_events
        assert make.mappable_ratio == 1.0

    def test_render_mentions_key_facts(self, small_scenarios, chain_mapping):
        rendered = compute_coverage(small_scenarios, chain_mapping).render()
        assert "component coverage: 3/3" in rendered
        assert "make-widget" in rendered

    def test_nested_component_coverage_counts_top_level(self, crash):
        from repro.core.coverage import compute_coverage as cover

        report = cover(crash.scenarios, crash.mapping)
        assert "Police Department Command and Control" in (
            report.exercised_components
        )

    def test_pims_full_component_coverage(self, pims):
        report = compute_coverage(pims.scenarios, pims.mapping)
        assert report.untouched_components == ()
