"""Unit tests for the architecture runtime (simulated execution)."""

from __future__ import annotations

import pytest

from repro.adl.behavior import Action, ActionKind, Statechart
from repro.adl.structure import Architecture, Interface
from repro.sim.network import FAILURE_MESSAGE, ChannelPolicy
from repro.sim.runtime import ArchitectureRuntime, RuntimeConfig
from repro.sim.trace import TraceEventKind


def linear_architecture() -> Architecture:
    """A - conn - B, with B replying 'pong' to 'ping'."""
    architecture = Architecture("linear")
    architecture.add_component("A", interfaces=[Interface("port")])
    architecture.add_connector("conn")
    architecture.add_component("B", interfaces=[Interface("port")])
    architecture.link(("A", "port"), ("conn", "a"))
    architecture.link(("conn", "b"), ("B", "port"))
    chart = Statechart("b-chart")
    chart.add_state("idle", initial=True)
    chart.add_transition(
        "idle", "idle", "ping",
        actions=[Action(ActionKind.REPLY, "pong")],
    )
    architecture.attach_behavior("B", chart)
    return architecture


def runtime_for(
    architecture: Architecture, **config_kwargs
) -> ArchitectureRuntime:
    config_kwargs.setdefault("policy", ChannelPolicy(latency=1.0))
    return ArchitectureRuntime(architecture, RuntimeConfig(**config_kwargs))


class TestBasicRouting:
    def test_addressed_message_reaches_destination(self):
        runtime = runtime_for(linear_architecture())
        runtime.inject("A", "ping", destination="B")
        runtime.run()
        assert runtime.trace.was_delivered("ping", "B")

    def test_statechart_reply_returns_to_origin(self):
        runtime = runtime_for(linear_architecture())
        runtime.inject("A", "ping", destination="B")
        runtime.run()
        assert runtime.trace.was_delivered("pong", "A")

    def test_unaddressed_message_floods(self):
        architecture = Architecture("fan")
        architecture.add_component("src", interfaces=[Interface("port")])
        architecture.add_connector("hub")
        architecture.link(("src", "port"), ("hub", "s"))
        for name in ("x", "y"):
            architecture.add_component(name, interfaces=[Interface("port")])
            architecture.link((name, "port"), ("hub", name))
        runtime = runtime_for(architecture)
        runtime.inject("src", "broadcast")
        runtime.run()
        assert runtime.trace.was_delivered("broadcast", "x")
        assert runtime.trace.was_delivered("broadcast", "y")

    def test_component_ignores_messages_for_others(self):
        architecture = Architecture("three")
        architecture.add_component("src", interfaces=[Interface("port")])
        architecture.add_connector("hub")
        architecture.link(("src", "port"), ("hub", "s"))
        for name in ("right", "wrong"):
            architecture.add_component(name, interfaces=[Interface("port")])
            architecture.link((name, "port"), ("hub", name))
        chart = Statechart("reactor")
        chart.add_state("idle", initial=True)
        chart.add_transition(
            "idle", "idle", "hail",
            actions=[Action(ActionKind.REPLY, "answer")],
        )
        architecture.attach_behavior("wrong", chart)
        runtime = runtime_for(architecture)
        runtime.inject("src", "hail", destination="right")
        runtime.run()
        # "wrong" has a reaction for the trigger but is not the addressee.
        assert not runtime.trace.was_delivered("answer", "src")

    def test_connector_short_circuits_to_destination(self):
        runtime = runtime_for(linear_architecture())
        runtime.inject("A", "ping", destination="B")
        runtime.run()
        # Exactly one delivery at B; the connector did not duplicate it.
        assert len(runtime.trace.deliveries_to("B")) == 1

    def test_injection_at_future_time(self):
        runtime = runtime_for(linear_architecture())
        runtime.inject("A", "ping", destination="B", at=10.0)
        runtime.run()
        (delivery,) = runtime.trace.deliveries_to("B")
        assert delivery.time > 10.0

    def test_emission_via_specific_interface(self):
        architecture = Architecture("split")
        architecture.add_component(
            "src", interfaces=[Interface("left"), Interface("right")]
        )
        architecture.add_component("L", interfaces=[Interface("port")])
        architecture.add_component("R", interfaces=[Interface("port")])
        architecture.link(("src", "left"), ("L", "port"))
        architecture.link(("src", "right"), ("R", "port"))
        runtime = runtime_for(architecture)
        runtime.inject("src", "note", via="left")
        runtime.run()
        assert runtime.trace.was_delivered("note", "L")
        assert not runtime.trace.was_delivered("note", "R")

    def test_no_outgoing_link_recorded_as_drop(self):
        architecture = Architecture("island")
        architecture.add_component("alone", interfaces=[Interface("port")])
        runtime = runtime_for(architecture)
        runtime.inject("alone", "shout")
        runtime.run()
        drops = runtime.trace.filter(kind=TraceEventKind.DROP)
        assert drops and "no outgoing link" in drops[0].detail


class TestLoopsAndTtl:
    def ring(self) -> Architecture:
        architecture = Architecture("ring")
        for name in ("n1", "n2", "n3"):
            architecture.add_component(name, interfaces=[Interface("port")])
        for name in ("c1", "c2", "c3"):
            architecture.add_connector(name)
        architecture.link(("n1", "port"), ("c1", "a"))
        architecture.link(("c1", "b"), ("n2", "port"))
        architecture.link(("n2", "port"), ("c2", "a"))
        architecture.link(("c2", "b"), ("n3", "port"))
        architecture.link(("n3", "port"), ("c3", "a"))
        architecture.link(("c3", "b"), ("n1", "port"))
        return architecture

    def test_cyclic_topology_terminates(self):
        runtime = runtime_for(self.ring())
        runtime.inject("n1", "round")
        runtime.run()
        # Flooding with visited-tracking terminates; everyone saw it once.
        assert runtime.trace.was_delivered("round", "n2")
        assert runtime.trace.was_delivered("round", "n3")

    def test_ttl_exhaustion_recorded(self):
        runtime = runtime_for(self.ring(), ttl=0)
        runtime.inject("n1", "round")
        runtime.run()
        drops = runtime.trace.filter(kind=TraceEventKind.DROP)
        assert any("ttl exhausted" in event.detail for event in drops)


class TestFailuresInRuntime:
    def test_failure_notice_travels_back_to_origin(self):
        runtime = runtime_for(
            linear_architecture(),
            policy=ChannelPolicy(latency=1.0, failure_detection=True),
        )
        runtime.injector.shutdown("B", at=0.0)
        runtime.inject("A", "ping", destination="B", at=1.0)
        runtime.run()
        assert runtime.trace.was_delivered(FAILURE_MESSAGE, "A")

    def test_no_detection_no_notice(self):
        runtime = runtime_for(linear_architecture())
        runtime.injector.shutdown("B", at=0.0)
        runtime.inject("A", "ping", destination="B", at=1.0)
        runtime.run()
        assert not runtime.trace.was_delivered(FAILURE_MESSAGE, "A")

    def test_statechart_reacts_to_failure_notice(self):
        # Mirror the CRASH pattern: the alert leaves through a dedicated
        # side interface toward a local display, not back into the network.
        architecture = linear_architecture()
        architecture.component("A").add_interface("side")
        architecture.add_component("display", interfaces=[Interface("port")])
        architecture.link(("A", "side"), ("display", "port"))
        chart = Statechart("a-chart")
        chart.add_state("idle", initial=True)
        chart.add_transition(
            "idle", "idle", FAILURE_MESSAGE,
            actions=[Action(ActionKind.SEND, "alert", via="side")],
        )
        architecture.attach_behavior("A", chart)
        runtime = runtime_for(
            architecture,
            policy=ChannelPolicy(latency=1.0, failure_detection=True),
        )
        runtime.injector.shutdown("B", at=0.0)
        runtime.inject("A", "ping", destination="B", at=1.0)
        runtime.run()
        assert runtime.trace.was_delivered("alert", "display")


class TestC2Routing:
    def c2_architecture(self) -> Architecture:
        """upper above bus above lower; request up, notification down."""
        architecture = Architecture("c2rt", style="c2")
        architecture.add_component("upper", interfaces=[Interface("bottom")])
        architecture.add_connector(
            "bus", interfaces=[Interface("top"), Interface("bottom")]
        )
        architecture.add_component("lower", interfaces=[Interface("top")])
        architecture.add_component("peer", interfaces=[Interface("top")])
        architecture.link(("bus", "top"), ("upper", "bottom"))
        architecture.link(("lower", "top"), ("bus", "bottom"))
        architecture.link(("peer", "top"), ("bus", "bottom"))
        return architecture

    def test_requests_travel_up_only(self):
        runtime = runtime_for(self.c2_architecture(), c2_routing=True)
        runtime.inject("lower", "ask", kind="request", via="top")
        runtime.run()
        assert runtime.trace.was_delivered("ask", "upper")
        # The sibling below the bus must not see the request.
        assert not runtime.trace.was_delivered("ask", "peer")

    def test_notifications_travel_down_only(self):
        runtime = runtime_for(self.c2_architecture(), c2_routing=True)
        runtime.inject("upper", "news", kind="notification", via="bottom")
        runtime.run()
        assert runtime.trace.was_delivered("news", "lower")
        assert runtime.trace.was_delivered("news", "peer")

    def test_send_action_via_top_becomes_request(self):
        architecture = self.c2_architecture()
        chart = Statechart("lower-chart")
        chart.add_state("idle", initial=True)
        chart.add_transition(
            "idle", "idle", "go",
            actions=[Action(ActionKind.SEND, "upward", via="top")],
        )
        architecture.attach_behavior("lower", chart)
        runtime = runtime_for(architecture, c2_routing=True)
        runtime.inject("upper", "go", kind="notification", via="bottom")
        runtime.run()
        assert runtime.trace.was_delivered("upward", "upper")
        assert not runtime.trace.was_delivered("upward", "peer")


class TestGuards:
    def test_runtime_guard_context_passed_to_statecharts(self):
        architecture = linear_architecture()
        chart = Statechart("guarded")
        chart.add_state("idle", initial=True)
        chart.add_transition(
            "idle", "idle", "ping",
            guard="enabled",
            actions=[Action(ActionKind.REPLY, "pong")],
        )
        architecture._behaviors["B"] = chart  # replace the default chart
        enabled = runtime_for(architecture, guards={"enabled": True})
        enabled.inject("A", "ping", destination="B")
        enabled.run()
        assert enabled.trace.was_delivered("pong", "A")
        disabled = runtime_for(architecture, guards={"enabled": False})
        disabled.inject("A", "ping", destination="B")
        disabled.run()
        assert not disabled.trace.was_delivered("pong", "A")


class TestInjectionValidation:
    def test_unknown_source_rejected(self):
        runtime = runtime_for(linear_architecture())
        with pytest.raises(Exception):
            runtime.inject("ghost", "m")

    def test_unknown_destination_rejected(self):
        runtime = runtime_for(linear_architecture())
        with pytest.raises(Exception):
            runtime.inject("A", "m", destination="ghost")

    def test_unknown_interface_rejected(self):
        runtime = runtime_for(linear_architecture())
        with pytest.raises(Exception):
            runtime.inject("A", "m", via="ghost-port")

    def test_statechart_instances_exposed(self):
        runtime = runtime_for(linear_architecture())
        assert runtime.statechart("B") is not None
        assert runtime.statechart("A") is None
