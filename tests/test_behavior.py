"""Unit tests for statechart behavioral descriptions."""

from __future__ import annotations

import pytest

from repro.adl.behavior import (
    Action,
    ActionKind,
    State,
    Statechart,
    StatechartInstance,
    Transition,
)
from repro.errors import ArchitectureError


def simple_chart() -> Statechart:
    chart = Statechart("simple")
    chart.add_state("idle", initial=True)
    chart.add_state("busy")
    chart.add_transition(
        "idle", "busy", "start",
        actions=[Action(ActionKind.SEND, "started", via="out")],
    )
    chart.add_transition("busy", "idle", "stop")
    return chart


class TestConstruction:
    def test_chart_requires_name(self):
        with pytest.raises(ArchitectureError):
            Statechart("")

    def test_state_requires_name(self):
        with pytest.raises(ArchitectureError):
            State("")

    def test_state_cannot_parent_itself(self):
        with pytest.raises(ArchitectureError):
            State("s", parent="s")

    def test_transition_requires_trigger(self):
        with pytest.raises(ArchitectureError):
            Transition("a", "b", "")

    def test_send_action_requires_message(self):
        with pytest.raises(ArchitectureError):
            Action(ActionKind.SEND, "")
        with pytest.raises(ArchitectureError):
            Action(ActionKind.REPLY, "")

    def test_internal_action_needs_no_message(self):
        Action(ActionKind.INTERNAL)

    def test_duplicate_states_rejected(self):
        chart = Statechart("c")
        chart.add_state("s")
        with pytest.raises(ArchitectureError):
            chart.add_state("s")

    def test_transition_endpoints_must_exist(self):
        chart = Statechart("c")
        chart.add_state("a", initial=True)
        with pytest.raises(ArchitectureError):
            chart.add_transition("a", "ghost", "go")
        with pytest.raises(ArchitectureError):
            chart.add_transition("ghost", "a", "go")

    def test_initial_state_must_be_unique(self):
        chart = Statechart("c")
        chart.add_state("a", initial=True)
        chart.add_state("b", initial=True)
        with pytest.raises(ArchitectureError):
            chart.initial_state()

    def test_initial_state_must_exist(self):
        chart = Statechart("c")
        chart.add_state("a")
        with pytest.raises(ArchitectureError):
            chart.initial_state()

    def test_triggers_collected(self):
        chart = simple_chart()
        assert chart.triggers() == {"start", "stop"}

    def test_validate_passes_simple_chart(self):
        simple_chart().validate()


class TestHierarchy:
    def make_hierarchical(self) -> Statechart:
        chart = Statechart("h")
        chart.add_state("running", initial=True)
        chart.add_state("inner-a", parent="running", initial=True)
        chart.add_state("inner-b", parent="running")
        chart.add_state("stopped")
        chart.add_transition("inner-a", "inner-b", "swap")
        chart.add_transition("running", "stopped", "kill")
        return chart

    def test_enter_descends_to_leaf(self):
        chart = self.make_hierarchical()
        assert chart.enter("running") == "inner-a"

    def test_ancestors(self):
        chart = self.make_hierarchical()
        assert chart.ancestors("inner-a") == ("running",)
        assert chart.ancestors("stopped") == ()

    def test_composite_requires_unique_initial_substate(self):
        chart = Statechart("bad")
        chart.add_state("outer", initial=True)
        chart.add_state("x", parent="outer")
        chart.add_state("y", parent="outer")
        with pytest.raises(ArchitectureError):
            chart.enter("outer")

    def test_parent_cycle_detected(self):
        chart = Statechart("cycle")
        chart.add_state("a", parent="b", initial=True)
        chart.add_state("b", parent="a")
        with pytest.raises(ArchitectureError):
            chart.ancestors("a")

    def test_instance_starts_at_nested_leaf(self):
        instance = StatechartInstance(self.make_hierarchical())
        assert instance.current == "inner-a"
        assert instance.configuration() == ("inner-a", "running")

    def test_parent_transition_fires_from_child(self):
        instance = StatechartInstance(self.make_hierarchical())
        instance.fire("kill")
        assert instance.current == "stopped"

    def test_child_transition_takes_priority(self):
        chart = self.make_hierarchical()
        chart.add_transition("running", "stopped", "swap")  # outer duplicate
        instance = StatechartInstance(chart)
        instance.fire("swap")
        assert instance.current == "inner-b"


class TestExecution:
    def test_fire_returns_actions_and_moves(self):
        instance = StatechartInstance(simple_chart())
        actions = instance.fire("start")
        assert instance.current == "busy"
        assert actions == (Action(ActionKind.SEND, "started", via="out"),)

    def test_unknown_trigger_discarded(self):
        instance = StatechartInstance(simple_chart())
        assert instance.fire("nonsense") == ()
        assert instance.current == "idle"

    def test_can_fire(self):
        instance = StatechartInstance(simple_chart())
        assert instance.can_fire("start")
        assert not instance.can_fire("stop")

    def test_fired_history(self):
        instance = StatechartInstance(simple_chart())
        instance.fire("start")
        instance.fire("stop")
        assert [t.trigger for t in instance.fired] == ["start", "stop"]

    def test_reset(self):
        instance = StatechartInstance(simple_chart())
        instance.fire("start")
        instance.reset()
        assert instance.current == "idle"
        assert instance.fired == []

    def test_guard_blocks_without_context(self):
        chart = Statechart("guarded")
        chart.add_state("a", initial=True)
        chart.add_state("b")
        chart.add_transition("a", "b", "go", guard="ready")
        instance = StatechartInstance(chart)
        assert instance.fire("go") == ()
        assert instance.current == "a"

    def test_guard_true_in_mapping_context(self):
        chart = Statechart("guarded")
        chart.add_state("a", initial=True)
        chart.add_state("b")
        chart.add_transition("a", "b", "go", guard="ready")
        instance = StatechartInstance(chart)
        instance.fire("go", {"ready": True})
        assert instance.current == "b"

    def test_guard_false_in_mapping_context(self):
        chart = Statechart("guarded")
        chart.add_state("a", initial=True)
        chart.add_state("b")
        chart.add_transition("a", "b", "go", guard="ready")
        instance = StatechartInstance(chart)
        instance.fire("go", {"ready": False})
        assert instance.current == "a"

    def test_guard_callable_context(self):
        chart = Statechart("guarded")
        chart.add_state("a", initial=True)
        chart.add_state("b")
        chart.add_transition("a", "b", "go", guard="ready")
        instance = StatechartInstance(chart)
        instance.fire("go", lambda guard: guard == "ready")
        assert instance.current == "b"

    def test_first_matching_transition_wins(self):
        chart = Statechart("order")
        chart.add_state("a", initial=True)
        chart.add_state("b")
        chart.add_state("c")
        chart.add_transition("a", "b", "go")
        chart.add_transition("a", "c", "go")
        instance = StatechartInstance(chart)
        instance.fire("go")
        assert instance.current == "b"

    def test_transition_into_composite_enters_initial_substate(self):
        chart = Statechart("entering")
        chart.add_state("start", initial=True)
        chart.add_state("outer")
        chart.add_state("inner", parent="outer", initial=True)
        chart.add_transition("start", "outer", "go")
        instance = StatechartInstance(chart)
        instance.fire("go")
        assert instance.current == "inner"


class TestEntryExitActions:
    def make_chart(self) -> Statechart:
        chart = Statechart("doors")
        chart.add_state(
            "closed",
            initial=True,
            exit_actions=[Action(ActionKind.SEND, "unlatching")],
        )
        chart.add_state(
            "open",
            entry_actions=[Action(ActionKind.SEND, "opened")],
        )
        chart.add_transition(
            "closed",
            "open",
            "push",
            actions=[Action(ActionKind.SEND, "pushing")],
        )
        return chart

    def test_exit_transition_entry_order(self):
        instance = StatechartInstance(self.make_chart())
        actions = instance.fire("push")
        assert [action.message for action in actions] == [
            "unlatching",
            "pushing",
            "opened",
        ]

    def test_entering_composite_runs_substate_entries(self):
        chart = Statechart("nested")
        chart.add_state("off", initial=True)
        chart.add_state(
            "running", entry_actions=[Action(ActionKind.SEND, "spin-up")]
        )
        chart.add_state(
            "warmup",
            parent="running",
            initial=True,
            entry_actions=[Action(ActionKind.SEND, "warming")],
        )
        chart.add_transition("off", "running", "start")
        instance = StatechartInstance(chart)
        actions = instance.fire("start")
        assert [action.message for action in actions] == [
            "spin-up",
            "warming",
        ]
        assert instance.current == "warmup"

    def test_parent_transition_exits_children_innermost_first(self):
        chart = Statechart("shutdown")
        chart.add_state(
            "running", initial=True,
            exit_actions=[Action(ActionKind.SEND, "outer-exit")],
        )
        chart.add_state(
            "busy",
            parent="running",
            initial=True,
            exit_actions=[Action(ActionKind.SEND, "inner-exit")],
        )
        chart.add_state("stopped")
        chart.add_transition("running", "stopped", "kill")
        instance = StatechartInstance(chart)
        actions = instance.fire("kill")
        assert [action.message for action in actions] == [
            "inner-exit",
            "outer-exit",
        ]

    def test_no_entry_exit_actions_is_the_old_behavior(self):
        instance = StatechartInstance(simple_chart())
        actions = instance.fire("start")
        assert actions == (Action(ActionKind.SEND, "started", via="out"),)

    def test_entry_exit_roundtrip_through_xadl(self):
        from repro.adl.structure import Architecture
        from repro.adl.xadl import parse_xadl, to_xadl_xml

        architecture = Architecture("with-doors")
        architecture.add_component("door")
        architecture.attach_behavior("door", self.make_chart())
        parsed = parse_xadl(to_xadl_xml(architecture))
        chart = parsed.behavior("door")
        assert chart.state("closed").exit_actions == (
            Action(ActionKind.SEND, "unlatching"),
        )
        assert chart.state("open").entry_actions == (
            Action(ActionKind.SEND, "opened"),
        )
