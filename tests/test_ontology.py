"""Unit tests for the ScenarioML ontology sublanguage."""

from __future__ import annotations

import pytest

from repro.errors import (
    ArityError,
    DuplicateDefinitionError,
    OntologyError,
    SubsumptionCycleError,
    UnknownDefinitionError,
)
from repro.scenarioml.ontology import (
    EventType,
    Instance,
    InstanceType,
    Ontology,
    Parameter,
    Term,
)


class TestDefinitions:
    def test_term_requires_name(self):
        with pytest.raises(OntologyError):
            Term("")

    def test_instance_type_requires_name(self):
        with pytest.raises(OntologyError):
            InstanceType("")

    def test_instance_requires_type(self):
        with pytest.raises(OntologyError):
            Instance("x", "")

    def test_event_type_requires_name(self):
        with pytest.raises(OntologyError):
            EventType("")

    def test_parameter_requires_name(self):
        with pytest.raises(OntologyError):
            Parameter("")

    def test_instance_type_cannot_be_its_own_super(self):
        with pytest.raises(SubsumptionCycleError):
            InstanceType("a", super_name="a")

    def test_event_type_cannot_be_its_own_super(self):
        with pytest.raises(SubsumptionCycleError):
            EventType("e", super_name="e")

    def test_event_type_rejects_duplicate_parameters(self):
        with pytest.raises(OntologyError):
            EventType("e", parameters=(Parameter("p"), Parameter("p")))

    def test_parameter_names_in_order(self):
        event_type = EventType(
            "e", parameters=(Parameter("a"), Parameter("b"))
        )
        assert event_type.parameter_names == ("a", "b")

    def test_render_substitutes_arguments(self):
        event_type = EventType(
            "e", text="do [x] and [y]", parameters=(Parameter("x"), Parameter("y"))
        )
        assert event_type.render({"x": "this", "y": "that"}) == "do this and that"

    def test_render_keeps_placeholder_for_missing_argument(self):
        event_type = EventType("e", text="do [x]", parameters=(Parameter("x"),))
        assert event_type.render({}) == "do [x]"

    def test_render_without_text_uses_name(self):
        assert EventType("e").render({}) == "e"


class TestOntologyContainer:
    def test_requires_name(self):
        with pytest.raises(OntologyError):
            Ontology("")

    def test_define_and_lookup(self, small_ontology: Ontology):
        assert small_ontology.term("widget").definition
        assert small_ontology.instance_type("Human").super_name == "Actor"
        assert small_ontology.instance("alice").type_name == "Human"
        assert small_ontology.event_type("create").actor == "System"

    def test_duplicate_term_rejected(self, small_ontology: Ontology):
        with pytest.raises(DuplicateDefinitionError):
            small_ontology.define_term("widget")

    def test_duplicate_instance_type_rejected(self, small_ontology: Ontology):
        with pytest.raises(DuplicateDefinitionError):
            small_ontology.define_instance_type("Actor")

    def test_duplicate_instance_rejected(self, small_ontology: Ontology):
        with pytest.raises(DuplicateDefinitionError):
            small_ontology.define_instance("alice", "Human")

    def test_duplicate_event_type_rejected(self, small_ontology: Ontology):
        with pytest.raises(DuplicateDefinitionError):
            small_ontology.define_event_type("create")

    def test_unknown_lookups_raise(self, small_ontology: Ontology):
        with pytest.raises(UnknownDefinitionError):
            small_ontology.term("nope")
        with pytest.raises(UnknownDefinitionError):
            small_ontology.instance_type("nope")
        with pytest.raises(UnknownDefinitionError):
            small_ontology.instance("nope")
        with pytest.raises(UnknownDefinitionError):
            small_ontology.event_type("nope")

    def test_has_checks(self, small_ontology: Ontology):
        assert small_ontology.has_term("widget")
        assert small_ontology.has_instance_type("Actor")
        assert small_ontology.has_instance("backend")
        assert small_ontology.has_event_type("notify")
        assert not small_ontology.has_event_type("widget")

    def test_contains_spans_all_kinds(self, small_ontology: Ontology):
        assert "widget" in small_ontology
        assert "Actor" in small_ontology
        assert "alice" in small_ontology
        assert "create" in small_ontology
        assert "missing" not in small_ontology

    def test_collections_preserve_definition_order(self):
        ontology = Ontology("ordered")
        ontology.define_event_type("b")
        ontology.define_event_type("a")
        assert [e.name for e in ontology.event_types] == ["b", "a"]

    def test_repr_mentions_counts(self, small_ontology: Ontology):
        text = repr(small_ontology)
        assert "4 event types" in text
        assert "2 individuals" in text

    def test_define_event_type_accepts_bare_parameter_names(self):
        ontology = Ontology("bare")
        event_type = ontology.define_event_type("e", parameters=["x", "y"])
        assert event_type.parameters == (Parameter("x"), Parameter("y"))


class TestSubsumption:
    def test_class_ancestors(self, small_ontology: Ontology):
        assert small_ontology.class_ancestors("Human") == ("Actor",)
        assert small_ontology.class_ancestors("Actor") == ()

    def test_event_type_ancestors(self, small_ontology: Ontology):
        assert small_ontology.event_type_ancestors("create") == ("act",)

    def test_is_subclass_of(self, small_ontology: Ontology):
        assert small_ontology.is_subclass_of("Human", "Actor")
        assert small_ontology.is_subclass_of("Actor", "Actor")
        assert not small_ontology.is_subclass_of("Actor", "Human")

    def test_is_event_subtype_of(self, small_ontology: Ontology):
        assert small_ontology.is_event_subtype_of("create", "act")
        assert not small_ontology.is_event_subtype_of("act", "create")

    def test_class_descendants(self, small_ontology: Ontology):
        assert set(small_ontology.class_descendants("Actor")) == {
            "Human",
            "Service",
        }

    def test_event_type_descendants(self, small_ontology: Ontology):
        assert set(small_ontology.event_type_descendants("act")) == {
            "create",
            "destroy",
        }

    def test_ancestors_of_unknown_raise(self, small_ontology: Ontology):
        with pytest.raises(UnknownDefinitionError):
            small_ontology.class_ancestors("nope")
        with pytest.raises(UnknownDefinitionError):
            small_ontology.event_type_ancestors("nope")

    def test_cycle_detection(self):
        ontology = Ontology("cyclic")
        ontology.add_instance_type(InstanceType("a", super_name="b"))
        ontology.add_instance_type(InstanceType("b", super_name="a"))
        with pytest.raises(SubsumptionCycleError):
            ontology.class_ancestors("a")

    def test_dangling_super_detected(self):
        ontology = Ontology("dangling")
        ontology.add_instance_type(InstanceType("a", super_name="ghost"))
        with pytest.raises(UnknownDefinitionError):
            ontology.class_ancestors("a")

    def test_least_common_event_supertype(self, small_ontology: Ontology):
        assert (
            small_ontology.least_common_event_supertype("create", "destroy")
            == "act"
        )
        assert (
            small_ontology.least_common_event_supertype("create", "create")
            == "create"
        )
        assert (
            small_ontology.least_common_event_supertype("create", "notify")
            is None
        )

    def test_instances_of_transitive(self, small_ontology: Ontology):
        names = [i.name for i in small_ontology.instances_of("Actor")]
        assert names == ["alice", "backend"]

    def test_instances_of_direct_only(self, small_ontology: Ontology):
        assert small_ontology.instances_of("Actor", transitive=False) == ()

    def test_effective_parameters_inherit(self):
        ontology = Ontology("params")
        ontology.define_event_type("base", parameters=["a"])
        ontology.define_event_type("sub", parameters=["b"], super_name="base")
        names = [p.name for p in ontology.effective_parameters("sub")]
        assert sorted(names) == ["a", "b"]

    def test_effective_parameters_override(self):
        ontology = Ontology("override")
        ontology.define_instance_type("T")
        ontology.define_event_type(
            "base", parameters=[Parameter("a", "T")]
        )
        ontology.define_event_type(
            "sub", parameters=[Parameter("a")], super_name="base"
        )
        (parameter,) = ontology.effective_parameters("sub")
        assert parameter.type_name is None


class TestArgumentChecking:
    def test_exact_arguments_accepted(self, small_ontology: Ontology):
        small_ontology.check_arguments("create", {"subject": "widget"})

    def test_missing_argument_rejected(self, small_ontology: Ontology):
        with pytest.raises(ArityError):
            small_ontology.check_arguments("create", {})

    def test_extra_argument_rejected(self, small_ontology: Ontology):
        with pytest.raises(ArityError):
            small_ontology.check_arguments(
                "create", {"subject": "widget", "bogus": "1"}
            )

    def test_abstract_type_rejected(self, small_ontology: Ontology):
        with pytest.raises(OntologyError):
            small_ontology.check_arguments("act", {"subject": "widget"})

    def test_typed_parameter_accepts_conforming_individual(
        self, small_ontology: Ontology
    ):
        small_ontology.check_arguments("notify", {"who": "alice"})

    def test_typed_parameter_accepts_scenario_local_literal(
        self, small_ontology: Ontology
    ):
        small_ontology.check_arguments("notify", {"who": "a new operator"})

    def test_typed_parameter_rejects_wrong_class(self):
        ontology = Ontology("strict")
        ontology.define_instance_type("Person")
        ontology.define_instance_type("Machine")
        ontology.define_instance("robot", "Machine")
        ontology.define_event_type(
            "greet", parameters=[Parameter("who", "Person")]
        )
        with pytest.raises(ArityError):
            ontology.check_arguments("greet", {"who": "robot"})

    def test_inherited_parameters_checked(self):
        ontology = Ontology("inherit")
        ontology.define_event_type("base", parameters=["a"])
        ontology.define_event_type("sub", super_name="base")
        with pytest.raises(ArityError):
            ontology.check_arguments("sub", {})
        ontology.check_arguments("sub", {"a": "value"})


class TestValidateAndMerge:
    def test_validate_passes_on_consistent_ontology(
        self, small_ontology: Ontology
    ):
        small_ontology.validate()

    def test_validate_rejects_dangling_parameter_type(self):
        ontology = Ontology("bad-param")
        ontology.define_event_type("e", parameters=[Parameter("p", "Ghost")])
        with pytest.raises(UnknownDefinitionError):
            ontology.validate()

    def test_validate_rejects_dangling_instance_type(self):
        ontology = Ontology("bad-instance")
        ontology.add_instance(Instance("x", "Ghost"))
        with pytest.raises(UnknownDefinitionError):
            ontology.validate()

    def test_merge_disjoint(self, small_ontology: Ontology):
        other = Ontology("other")
        other.define_event_type("extra")
        merged = small_ontology.merge(other)
        assert merged.has_event_type("extra")
        assert merged.has_event_type("create")

    def test_merge_tolerates_identical_duplicates(
        self, small_ontology: Ontology
    ):
        merged = small_ontology.merge(small_ontology)
        assert len(merged.event_types) == len(small_ontology.event_types)

    def test_merge_rejects_conflicts(self, small_ontology: Ontology):
        other = Ontology("conflict")
        other.define_event_type("create", text="something different")
        with pytest.raises(DuplicateDefinitionError):
            small_ontology.merge(other)

    def test_merge_name_combines_sources(self, small_ontology: Ontology):
        other = Ontology("other")
        assert small_ontology.merge(other).name == "small+other"
