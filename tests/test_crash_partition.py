"""Tests for the partition-recovery fault-tolerance scenario and the
Sosae behavioral-check integration."""

from __future__ import annotations

from repro.core.behavior_check import BehaviorCheckOptions
from repro.core.consistency import InconsistencyKind
from repro.core.dynamic import DynamicEvaluator
from repro.core.evaluator import Sosae
from repro.scenarioml.scenario import QualityAttribute
from repro.sim.network import ChannelPolicy
from repro.sim.runtime import RuntimeConfig
from repro.systems.crash import (
    FIRE_CC,
    PARTITION_RECOVERY,
    POLICE_CC,
    build_crash,
)


def config(**policy) -> RuntimeConfig:
    policy.setdefault("latency", 1.0)
    return RuntimeConfig(policy=ChannelPolicy(**policy))


class TestPartitionRecovery:
    def test_scenario_annotated_fault_tolerance(self, crash):
        scenario = crash.scenarios.get(PARTITION_RECOVERY)
        assert QualityAttribute.FAULT_TOLERANCE in scenario.quality_attributes

    def test_partition_then_heal_passes(self, crash):
        evaluator = DynamicEvaluator(
            crash.architecture, crash.bindings, config=config()
        )
        verdict = evaluator.evaluate(
            crash.scenarios.get(PARTITION_RECOVERY), crash.scenarios
        )
        assert verdict.passed, verdict.render()

    def test_message_during_partition_is_dropped(self, crash):
        evaluator = DynamicEvaluator(
            crash.architecture, crash.bindings, config=config()
        )
        verdict = evaluator.evaluate(
            crash.scenarios.get(PARTITION_RECOVERY), crash.scenarios
        )
        assert not verdict.trace.was_delivered(
            "status-during-partition", POLICE_CC
        )
        assert verdict.trace.was_delivered("status-after-heal", POLICE_CC)

    def test_static_walkthrough_also_passes(self, crash):
        from repro.core.walkthrough import WalkthroughEngine

        engine = WalkthroughEngine(
            crash.architecture, crash.mapping, crash.options
        )
        verdict = engine.walk_scenario(
            crash.scenarios.get(PARTITION_RECOVERY), crash.scenarios
        )
        assert verdict.passed

    def test_fire_center_unaffected_by_police_isolation(self, crash):
        """While Police is isolated, Fire can still reach other peers."""
        evaluator = DynamicEvaluator(
            crash.architecture, crash.bindings, config=config()
        )
        verdict = evaluator.evaluate(
            crash.scenarios.get(PARTITION_RECOVERY), crash.scenarios
        )
        # Fire's sends were recorded; only the partitioned hop dropped.
        assert verdict.trace.sends_from(FIRE_CC)


class TestSosaeBehaviorCheck:
    def test_behavior_check_integrated_into_pipeline(self, crash):
        report = Sosae(
            crash.scenarios,
            crash.architecture,
            crash.mapping,
            walkthrough_options=crash.options,
            behavior_options=BehaviorCheckOptions(
                trigger_of={"sendMessage": "request"}
            ),
        ).evaluate()
        assert not any(
            finding.kind is InconsistencyKind.BEHAVIORAL_DIVERGENCE
            for finding in report.findings
        )

    def test_behavior_check_finds_unconsumed_trigger(self, crash):
        report = Sosae(
            crash.scenarios,
            crash.architecture,
            crash.mapping,
            walkthrough_options=crash.options,
            behavior_options=BehaviorCheckOptions(
                trigger_of={"shutdownEntity": "never-handled"}
            ),
        ).evaluate()
        assert any(
            finding.kind is InconsistencyKind.BEHAVIORAL_DIVERGENCE
            for finding in report.findings
        )
        assert not report.consistent

    def test_without_options_no_behavior_findings(self, crash):
        report = Sosae(
            crash.scenarios,
            crash.architecture,
            crash.mapping,
            walkthrough_options=crash.options,
        ).evaluate()
        assert not any(
            finding.kind is InconsistencyKind.BEHAVIORAL_DIVERGENCE
            for finding in report.findings
        )
