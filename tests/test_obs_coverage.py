"""Tests for the element-coverage matrix (repro.obs.coverage): builder
collection, deterministic finalize/merge, diff semantics, persistence
on run records, alert/CLI/serve surfaces, and log compaction."""

from __future__ import annotations

import json
import random

import pytest

from repro.adl.structure import Architecture, Direction, Interface
from repro.core.evaluator import Sosae
from repro.core.mapping import Mapping
from repro.errors import ReproError
from repro.obs import (
    NULL_COVERAGE,
    AlertEngine,
    AlertRule,
    AuditLog,
    CoverageBuilder,
    CoverageMatrix,
    JobRecord,
    JobRegistry,
    Recorder,
    RunRegistry,
    compact_job_logs,
    coverage_scalars,
    current_coverage,
    diff_coverage,
    format_event,
    use,
    use_coverage,
)
from repro.obs.events import CoverageComputed, EventBus, use_events
from repro.scenarioml.events import TypedEvent
from repro.scenarioml.ontology import Ontology, Parameter
from repro.scenarioml.scenario import Scenario, ScenarioSet


def _build_sosae(
    scenario_names=("s1", "s2"),
    map_destroy=True,
    map_read_to_ui=True,
):
    """A small 3-component pipeline with one dead mapping knob
    (``map_destroy``: mapped but never used) and one component knob
    (``map_read_to_ui``: off leaves ``ui`` untouched)."""
    onto = Ontology("o")
    onto.define_event_type("base", "b", abstract=True)
    onto.define_event_type(
        "create", "c", super_name="base",
        parameters=(Parameter("what", "string"),),
    )
    onto.define_event_type("read", "r", super_name="base")
    onto.define_event_type("write", "w", super_name="base")
    onto.define_event_type("destroy", "d")
    arch = Architecture("a")
    for name in ("ui", "logic", "store"):
        arch.add_component(name, interfaces=(
            Interface("in", Direction.IN),
            Interface("out", Direction.OUT),
        ))
    arch.link(("ui", "out"), ("logic", "in"))
    arch.link(("logic", "out"), ("store", "in"))
    mapping = Mapping(onto, arch)
    mapping.map_event("base", "logic")
    mapping.map_event("create", "logic", "store")
    mapping.map_event(
        "read", *(("ui", "logic") if map_read_to_ui else ("logic",))
    )
    if map_destroy:
        mapping.map_event("destroy", "logic", "store")
    sset = ScenarioSet(onto, name="s")
    events = (
        TypedEvent(type_name="read", arguments={}),
        TypedEvent(type_name="create", arguments={"what": "x"}),
        TypedEvent(type_name="write", arguments={}),  # supertype hop
    )
    for name in scenario_names:
        sset.add(Scenario(name=name, events=events))
    return Sosae(architecture=arch, scenario_set=sset, mapping=mapping)


def _evaluate_matrix(sosae) -> CoverageMatrix:
    recorder = Recorder()
    with use(recorder):
        sosae.evaluate()
    return recorder.coverage


class TestCoverageBuilder:
    def test_null_coverage_is_default_and_inert(self):
        assert current_coverage() is NULL_COVERAGE
        assert not NULL_COVERAGE.enabled
        # No-ops, never raises.
        NULL_COVERAGE.record_resolution("x", ("a",), ("x",))
        NULL_COVERAGE.record_path(("a", "b"))
        NULL_COVERAGE.record_constraint("C", True)

    def test_use_coverage_installs_and_restores(self):
        builder = CoverageBuilder()
        with use_coverage(builder):
            assert current_coverage() is builder
        assert current_coverage() is NULL_COVERAGE

    def test_state_merge_is_commutative(self):
        def touch(builder, seed):
            rng = random.Random(seed)
            for _ in range(20):
                event = rng.choice(("create", "read", "write"))
                builder.record_resolution(
                    event, ("logic",), (event, "base")
                )
                builder.record_path(("ui", "logic", "store"))
            builder.record_constraint("MustRouteVia(a, b)", bool(seed % 2))

        parts = []
        for seed in range(4):
            builder = CoverageBuilder()
            touch(builder, seed)
            parts.append(builder.state_dict())
        forward = CoverageBuilder()
        for state in parts:
            forward.ingest_state(state)
        backward = CoverageBuilder()
        for state in reversed(parts):
            backward.ingest_state(state)
        assert forward.state_dict() == backward.state_dict()

    def test_state_dict_round_trips_through_json(self):
        builder = CoverageBuilder()
        builder.record_resolution("create", ("logic", "store"), ("create",))
        builder.record_path(("ui", "logic"))
        builder.record_constraint("C", True)
        state = json.loads(json.dumps(builder.state_dict()))
        clone = CoverageBuilder()
        clone.ingest_state(state)
        assert clone.state_dict() == builder.state_dict()


class TestCoverageMatrix:
    def test_evaluation_records_matrix_facts(self):
        matrix = _evaluate_matrix(_build_sosae())
        assert matrix.component_coverage == 1.0
        # destroy is mapped but never used by a scenario.
        assert set(matrix.dead_mappings) == {"destroy"}
        # write resolves via the abstract base entry: supertype hops.
        assert matrix.supertype_resolutions == 2
        assert "destroy" in matrix.unexercised_event_types

    def test_digest_round_trip(self):
        matrix = _evaluate_matrix(_build_sosae())
        restored = CoverageMatrix.from_dict(
            json.loads(json.dumps(matrix.to_dict()))
        )
        assert restored == matrix
        assert restored.digest == matrix.digest

    def test_tampered_payload_fails_digest_check(self):
        data = _evaluate_matrix(_build_sosae()).to_dict()
        data["resolutions"] = 999
        with pytest.raises(ValueError, match="digest mismatch"):
            CoverageMatrix.from_dict(data)

    def test_canonical_json_is_deterministic(self):
        first = _evaluate_matrix(_build_sosae())
        second = _evaluate_matrix(_build_sosae())
        assert first.canonical_json() == second.canonical_json()

    def test_empty_scenario_set_counts_nothing(self):
        matrix = _evaluate_matrix(_build_sosae(scenario_names=()))
        assert matrix.resolutions == 0
        assert matrix.component_coverage == 0.0
        assert matrix.exercised_components == ()
        # Every mapped entry is dead when nothing runs.
        assert len(matrix.dead_mappings) == 4

    def test_all_abstract_ontology_has_full_event_type_coverage(self):
        onto = Ontology("o")
        onto.define_event_type("base", "b", abstract=True)
        arch = Architecture("a")
        arch.add_component("solo")
        mapping = Mapping(onto, arch)
        sset = ScenarioSet(onto, name="s")
        sosae = Sosae(architecture=arch, scenario_set=sset, mapping=mapping)
        matrix = _evaluate_matrix(sosae)
        # Zero concrete event types: the universe is empty, which is
        # full coverage (1.0), never a division by zero.
        assert matrix.event_type_coverage == 1.0
        assert matrix.unexercised_event_types == ()

    def test_zero_link_architecture_has_full_link_coverage(self):
        onto = Ontology("o")
        onto.define_event_type("ping", "p")
        arch = Architecture("a")
        arch.add_component("solo")
        mapping = Mapping(onto, arch)
        mapping.map_event("ping", "solo")
        sset = ScenarioSet(onto, name="s")
        sset.add(Scenario(name="s1", events=(
            TypedEvent(type_name="ping", arguments={}),
        )))
        sosae = Sosae(architecture=arch, scenario_set=sset, mapping=mapping)
        matrix = _evaluate_matrix(sosae)
        assert matrix.link_coverage == 1.0
        assert matrix.uncovered_links == ()

    def test_render_mentions_key_facts(self):
        matrix = _evaluate_matrix(_build_sosae())
        rendered = matrix.render()
        assert "components" in rendered
        assert matrix.digest in rendered
        gaps = matrix.render_gaps()
        assert "destroy" in gaps


class TestShardMerge:
    def test_merged_state_is_arrival_order_invariant(self):
        shard_states = []
        for shard in range(4):
            builder = CoverageBuilder()
            builder.record_resolution("create", ("logic",), ("create",))
            builder.record_resolution(
                "write", ("logic",), ("write", "base")
            )
            if shard % 2:
                builder.record_path(("ui", "logic"))
            shard_states.append(builder.state_dict())
        orders = [list(range(4)), [3, 1, 0, 2], [2, 3, 1, 0]]
        sosae = _build_sosae()
        canonicals = []
        for order in orders:
            merged = CoverageBuilder()
            for index in order:
                merged.ingest_state(shard_states[index])
            matrix = merged.finalize(sosae.scenario_set, sosae.mapping)
            canonicals.append(matrix.canonical_json())
        assert len(set(canonicals)) == 1

    def test_multiworker_evaluation_matches_single_process_bytes(self):
        from repro.shard import BatchEvaluator

        recorder = Recorder()
        with use(recorder):
            _build_sosae(
                scenario_names=tuple(f"s{i}" for i in range(6))
            ).evaluate()
        single = recorder.coverage.canonical_json()
        recorder = Recorder()
        with use(recorder):
            BatchEvaluator(workers=3).evaluate(
                _build_sosae(
                    scenario_names=tuple(f"s{i}" for i in range(6))
                )
            )
        assert recorder.coverage.canonical_json() == single


class TestCoverageDiff:
    def test_regression_detected_on_excised_component(self):
        before = _evaluate_matrix(_build_sosae())
        after = _evaluate_matrix(_build_sosae(map_read_to_ui=False))
        diff = diff_coverage(before, after)
        assert diff.newly_untouched_components == ("ui",)
        assert diff.regressed()
        assert diff.regressed(threshold=0.5) is False
        assert "ui" in diff.render()

    def test_clean_diff_does_not_regress(self):
        before = _evaluate_matrix(_build_sosae())
        after = _evaluate_matrix(_build_sosae())
        diff = diff_coverage(before, after)
        assert not diff.regressed()
        assert diff.newly_uncovered == 0


class TestCoverageScalarsAndAlerts:
    def test_scalars_include_drift_with_previous(self):
        before = _evaluate_matrix(_build_sosae()).to_dict()
        after = _evaluate_matrix(
            _build_sosae(map_read_to_ui=False)
        ).to_dict()
        scalars = coverage_scalars(after, previous=before)
        assert scalars["coverage.newly_untouched_components"] == 1.0
        assert scalars["coverage.component_drop"] > 0
        assert 0.0 <= scalars["coverage.component_ratio"] <= 1.0

    def test_coverage_mode_rule_normalizes_metric_and_fires(self):
        rule = AlertRule(
            name="floor", metric="component_ratio", threshold=0.9,
            op="<", mode="coverage",
        )
        assert rule.metric == "coverage.component_ratio"
        engine = AlertEngine([rule])
        fired = engine.evaluate(
            {"coverage.component_ratio": 0.5}, now=1.0
        )
        assert [event.rule for event in fired] == ["floor"]

    def test_coverage_mode_requires_metric_source(self):
        with pytest.raises(ReproError, match="coverage"):
            AlertRule(
                name="bad", metric="x", threshold=0,
                mode="coverage", source="runs", window=2,
            )


class TestCoverageEvent:
    def test_evaluation_emits_coverage_computed(self):
        bus = EventBus()
        with use_events(bus):
            _build_sosae().evaluate()
        events = [
            event for event in bus.events()
            if isinstance(event, CoverageComputed)
        ]
        assert len(events) == 1
        line = format_event(events[0])
        assert "coverage-computed" in line
        assert "dead mapping" in line

    def test_tail_type_glob_matches_kind(self):
        from repro.cli import _event_filter

        keep = _event_filter(None, "coverage-*")
        event = CoverageComputed(
            components_exercised=1, components_total=1, links_covered=0,
            links_total=0, event_types_used=1, event_types_total=1,
            dead_mappings=0, digest="ab",
        )
        assert keep(event)
        assert not _event_filter(None, "job-*")(event)


class TestRunPersistence:
    def test_recorded_run_carries_digest_verified_coverage(self, tmp_path):
        registry = RunRegistry(tmp_path)
        sosae = _build_sosae()
        recorder = Recorder()
        with use(recorder):
            report = sosae.evaluate()
        record = registry.record("t", report, recorder)
        matrix = CoverageMatrix.from_dict(record.coverage)
        assert matrix.digest == record.coverage["digest"]

    def test_runs_compact_keeps_ids_monotonic(self, tmp_path):
        registry = RunRegistry(tmp_path)
        sosae = _build_sosae()
        for _ in range(3):
            recorder = Recorder()
            with use(recorder):
                report = sosae.evaluate()
            registry.record("t", report, recorder)
        stats = registry.compact(keep=1)
        assert stats == {"kept": 1, "dropped": 2}
        assert [r.run_id for r in registry.load()] == ["r0003"]
        recorder = Recorder()
        with use(recorder):
            report = sosae.evaluate()
        record = registry.record("t", report, recorder)
        # Never re-mints a compacted id.
        assert record.run_id == "r0004"

    def test_runs_compact_rejects_bad_keep(self, tmp_path):
        with pytest.raises(ReproError):
            RunRegistry(tmp_path).compact(keep=0)


class TestJobCompaction:
    def _add(self, registry, audit, job_id, state, *, ts, finished=0.0):
        registry.append(JobRecord(
            job_id=job_id, tenant="t", state=state, spec_digest="d",
            submitted_at=ts, started_at=ts, finished_at=finished,
        ))
        audit.append(
            timestamp=ts, actor="a", tenant="t", job_id=job_id,
            transition=state, spec_digest="d",
        )

    def test_compact_collapses_only_old_terminal_jobs(self, tmp_path):
        registry = JobRegistry(tmp_path)
        audit = AuditLog(tmp_path)
        now = 1_000_000.0
        old = now - 10 * 86400
        self._add(registry, audit, "j1", "queued", ts=old)
        self._add(registry, audit, "j1", "running", ts=old)
        self._add(registry, audit, "j1", "done", ts=old, finished=old)
        self._add(registry, audit, "j2", "done", ts=now, finished=now)
        self._add(registry, audit, "j3", "running", ts=old)
        stats = compact_job_logs(registry, audit, keep_days=7, now=now)
        assert stats["stale_jobs"] == 1
        assert stats["jobs_dropped"] == 2
        assert stats["audit_dropped"] == 2
        states = {r.job_id: r.state for r in registry.load()}
        assert states == {"j1": "done", "j2": "done", "j3": "running"}
        audit_ids = [entry["job_id"] for entry in audit.entries()]
        assert audit_ids.count("j1") == 1
        assert audit_ids.count("j3") == 1

    def test_compact_is_idempotent(self, tmp_path):
        registry = JobRegistry(tmp_path)
        audit = AuditLog(tmp_path)
        old = 1_000.0
        now = old + 30 * 86400
        self._add(registry, audit, "j1", "queued", ts=old)
        self._add(registry, audit, "j1", "done", ts=old, finished=old)
        compact_job_logs(registry, audit, keep_days=7, now=now)
        again = compact_job_logs(registry, audit, keep_days=7, now=now)
        assert again["jobs_dropped"] == 0
        assert again["audit_dropped"] == 0
