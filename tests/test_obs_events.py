"""Tests for the telemetry event bus, sinks, and pipeline emission."""

from __future__ import annotations

import io
import json

import pytest

from repro.core.evaluator import Sosae
from repro.errors import ReproError
from repro.obs import (
    EVENT_TYPES,
    NULL_EVENT_BUS,
    AlertFired,
    AlertResolved,
    CoverageComputed,
    EvaluationFinished,
    EvaluationStarted,
    EventBus,
    FindingEmitted,
    Heartbeat,
    JobFinished,
    JobRejected,
    JobStarted,
    JobSubmitted,
    JsonlSink,
    NullEventBus,
    RunRecorded,
    Recorder,
    RunRegistry,
    ScenarioFinished,
    ScenarioStarted,
    SimMessageFate,
    StageFinished,
    StageStarted,
    current_event_bus,
    event_from_dict,
    events_enabled,
    events_from_jsonl,
    format_event,
    read_events,
    set_event_bus,
    use,
    use_events,
)
from repro.obs.events import event_severity


def _sample(cls):
    """A representative, fully populated instance of an event type."""
    samples = {
        EvaluationStarted: EvaluationStarted(
            architecture="arch", scenario_set="set", scenarios=3
        ),
        EvaluationFinished: EvaluationFinished(
            consistent=False,
            findings=2,
            scenarios_passed=1,
            scenarios_failed=2,
            wall_seconds=0.5,
        ),
        StageStarted: StageStarted(stage="walkthrough"),
        StageFinished: StageFinished(
            stage="walkthrough", wall_seconds=0.25, findings=1
        ),
        ScenarioStarted: ScenarioStarted(
            scenario="save", negative=True, traces=2
        ),
        ScenarioFinished: ScenarioFinished(
            scenario="save", passed=False, findings=1, wall_seconds=0.1
        ),
        FindingEmitted: FindingEmitted(
            finding_id="ab12cd34ef",
            finding_kind="missing-link",
            severity="error",
            scenario="save",
            event_label="e2",
            message="no path",
        ),
        SimMessageFate: SimMessageFate(
            fate="dropped", element="Loader", message="save", detail="ttl"
        ),
        Heartbeat: Heartbeat(beat=2, metrics={"x": {"value": 1}}),
        RunRecorded: RunRecorded(run_id="r0001", label="demo"),
        AlertFired: AlertFired(
            rule="too-many-findings",
            metric="findings",
            severity="critical",
            value=7.0,
            threshold=3.0,
            message="findings > 3",
        ),
        AlertResolved: AlertResolved(
            rule="too-many-findings",
            metric="findings",
            severity="critical",
            value=1.0,
        ),
        JobSubmitted: JobSubmitted(
            job_id="j0001",
            tenant="acme",
            label="nightly",
            spec_digest="ab12cd34ef567890",
        ),
        JobStarted: JobStarted(
            job_id="j0001", tenant="acme", queued_seconds=0.02
        ),
        JobFinished: JobFinished(
            job_id="j0001",
            tenant="acme",
            state="done",
            run_id="r0001",
            consistent=False,
            findings=2,
            wall_seconds=0.4,
        ),
        JobRejected: JobRejected(
            job_id="j0002",
            tenant="acme",
            reason="quota",
            detail="2 jobs already in flight",
        ),
        CoverageComputed: CoverageComputed(
            components_exercised=3,
            components_total=4,
            links_covered=2,
            links_total=4,
            event_types_used=2,
            event_types_total=3,
            dead_mappings=1,
            digest="ab12cd34ef567890",
        ),
    }
    return samples[cls]


class TestEventTypes:
    def test_every_type_round_trips_through_json(self):
        for cls in EVENT_TYPES:
            event = _sample(cls)
            line = json.dumps(event.to_dict(), sort_keys=True)
            restored = event_from_dict(json.loads(line))
            assert restored == event
            assert type(restored) is cls

    def test_kinds_are_unique_and_nonempty(self):
        kinds = [cls.kind for cls in EVENT_TYPES]
        assert all(kinds)
        assert len(set(kinds)) == len(kinds)

    def test_unknown_kind_is_an_error(self):
        with pytest.raises(ReproError, match="unknown telemetry event"):
            event_from_dict({"kind": "nonsense"})
        with pytest.raises(ReproError, match="must be an object"):
            event_from_dict(["not", "a", "dict"])

    def test_unknown_fields_are_tolerated(self):
        data = _sample(StageStarted).to_dict()
        data["added_in_a_future_version"] = True
        assert event_from_dict(data) == _sample(StageStarted)

    def test_summaries_are_human_text(self):
        for cls in EVENT_TYPES:
            summary = _sample(cls).summary()
            assert summary and "object at 0x" not in summary

    def test_severity_classification(self):
        assert event_severity(_sample(FindingEmitted)) == "error"
        assert event_severity(_sample(EvaluationFinished)) == "warning"
        assert (
            event_severity(EvaluationFinished(consistent=True)) == "info"
        )
        assert event_severity(_sample(SimMessageFate)) == "warning"
        assert (
            event_severity(SimMessageFate(fate="delivered")) == "debug"
        )
        assert event_severity(_sample(Heartbeat)) == "debug"
        assert event_severity(_sample(AlertFired)) == "error"
        assert (
            event_severity(
                AlertFired(rule="r", metric="m", severity="warning")
            )
            == "warning"
        )
        assert event_severity(_sample(AlertResolved)) == "info"

    def test_format_event_offsets_from_base(self):
        event = StageStarted(stage="coverage", seq=4, timestamp=12.5)
        line = format_event(event, base=12.0)
        assert "+" in line and "0.5" in line
        assert "stage-started" in line and "coverage" in line


class TestEventBus:
    def test_subscribers_run_in_subscription_order(self):
        bus = EventBus()
        calls = []
        bus.subscribe(lambda event: calls.append(("first", event.seq)))
        bus.subscribe(lambda event: calls.append(("second", event.seq)))
        bus.emit(StageStarted(stage="a"))
        bus.emit(StageStarted(stage="b"))
        assert calls == [
            ("first", 1), ("second", 1), ("first", 2), ("second", 2),
        ]

    def test_unsubscribe_stops_delivery(self):
        bus = EventBus()
        calls = []
        unsubscribe = bus.subscribe(calls.append)
        bus.emit(StageStarted(stage="a"))
        unsubscribe()
        unsubscribe()  # idempotent
        bus.emit(StageStarted(stage="b"))
        assert [event.stage for event in calls] == ["a"]

    def test_emission_stamps_seq_and_timestamp(self):
        clock = [100.0]
        bus = EventBus(wall_clock=lambda: clock[0])
        bus.emit(StageStarted(stage="a"))
        clock[0] = 101.0
        bus.emit(StageStarted(stage="b"))
        first, second = bus.events()
        assert (first.seq, second.seq) == (1, 2)
        assert (first.timestamp, second.timestamp) == (100.0, 101.0)

    def test_ring_buffer_evicts_oldest_at_capacity(self):
        bus = EventBus(capacity=3)
        seen = []
        bus.subscribe(seen.append)
        for index in range(5):
            bus.emit(StageStarted(stage=f"s{index}"))
        assert [event.stage for event in bus.events()] == ["s2", "s3", "s4"]
        # Subscribers still saw every event, eviction is buffer-only.
        assert [event.stage for event in seen] == [
            "s0", "s1", "s2", "s3", "s4",
        ]

    def test_invalid_configuration_is_rejected(self):
        with pytest.raises(ReproError, match="capacity"):
            EventBus(capacity=0)
        with pytest.raises(ReproError, match="heartbeat"):
            EventBus(heartbeat_interval=0.0)

    def test_heartbeat_cadence_follows_the_clock(self):
        clock = [0.0]
        bus = EventBus(
            heartbeat_interval=1.0,
            metrics_source=lambda: {"m": 1},
            clock=lambda: clock[0],
        )
        bus.emit(StageStarted(stage="opens the window"))
        clock[0] = 0.5
        bus.emit(StageStarted(stage="too soon"))
        assert not any(
            isinstance(event, Heartbeat) for event in bus.events()
        )
        clock[0] = 1.5
        bus.emit(StageStarted(stage="past the interval"))
        beats = [e for e in bus.events() if isinstance(e, Heartbeat)]
        assert len(beats) == 1
        assert beats[0].beat == 1
        assert beats[0].metrics == {"m": 1}
        # The heartbeat itself must not retrigger heartbeats; the next
        # one needs another full interval.
        clock[0] = 1.9
        bus.emit(StageStarted(stage="within the new window"))
        assert sum(
            isinstance(event, Heartbeat) for event in bus.events()
        ) == 1
        clock[0] = 2.6
        bus.emit(StageStarted(stage="next window"))
        beats = [e for e in bus.events() if isinstance(e, Heartbeat)]
        assert [beat.beat for beat in beats] == [1, 2]

    def test_no_heartbeats_without_interval(self):
        bus = EventBus()
        for _ in range(10):
            bus.emit(StageStarted(stage="s"))
        assert not any(
            isinstance(event, Heartbeat) for event in bus.events()
        )


class TestCurrentBus:
    def test_null_bus_is_the_default_and_inert(self):
        assert current_event_bus() is NULL_EVENT_BUS
        assert not events_enabled()
        NULL_EVENT_BUS.emit(StageStarted(stage="ignored"))
        assert NULL_EVENT_BUS.events() == ()
        unsubscribe = NULL_EVENT_BUS.subscribe(lambda event: None)
        unsubscribe()
        assert isinstance(NULL_EVENT_BUS, NullEventBus)

    def test_use_events_scopes_and_restores(self):
        bus = EventBus()
        with use_events(bus) as active:
            assert active is bus
            assert current_event_bus() is bus
            assert events_enabled()
        assert current_event_bus() is NULL_EVENT_BUS

    def test_use_events_restores_on_error(self):
        with pytest.raises(RuntimeError):
            with use_events(EventBus()):
                raise RuntimeError("boom")
        assert current_event_bus() is NULL_EVENT_BUS

    def test_set_event_bus_returns_previous(self):
        bus = EventBus()
        previous = set_event_bus(bus)
        try:
            assert previous is NULL_EVENT_BUS
            assert current_event_bus() is bus
        finally:
            set_event_bus(previous)


class TestJsonlSink:
    def test_writes_one_sorted_json_line_per_event(self, tmp_path):
        path = tmp_path / "events.jsonl"
        bus = EventBus()
        with JsonlSink(path) as sink:
            bus.subscribe(sink)
            bus.emit(StageStarted(stage="a"))
            bus.emit(StageFinished(stage="a", wall_seconds=0.1))
        lines = path.read_text().splitlines()
        assert len(lines) == 2
        for line in lines:
            data = json.loads(line)
            assert list(data) == sorted(data)
        restored = read_events(path)
        assert [event.kind for event in restored] == [
            "stage-started", "stage-finished",
        ]

    def test_flushes_when_the_evaluation_finishes(self):
        handle = io.StringIO()
        flushes = []
        handle.flush = lambda: flushes.append(len(handle.getvalue()))
        sink = JsonlSink(handle)
        bus = EventBus()
        bus.subscribe(sink)
        bus.emit(StageStarted(stage="a"))
        assert flushes == []
        bus.emit(EvaluationFinished(consistent=True))
        assert len(flushes) == 1
        # Everything written so far was visible at the flush point.
        assert flushes[0] == len(handle.getvalue())

    def test_flush_every_flushes_on_a_cadence(self):
        handle = io.StringIO()
        flushes = []
        handle.flush = lambda: flushes.append(len(handle.getvalue()))
        sink = JsonlSink(handle, flush_every=3)
        for index in range(7):
            sink(StageStarted(stage=f"s{index}"))
        # Flushed after events 3 and 6; the seventh is still buffered.
        assert len(flushes) == 2

    def test_flush_every_one_flushes_every_event(self):
        handle = io.StringIO()
        flushes = []
        handle.flush = lambda: flushes.append(True)
        sink = JsonlSink(handle, flush_every=1)
        sink(StageStarted(stage="a"))
        sink(StageStarted(stage="b"))
        assert len(flushes) == 2

    def test_evaluation_finished_still_flushes_with_cadence(self):
        handle = io.StringIO()
        flushes = []
        handle.flush = lambda: flushes.append(True)
        sink = JsonlSink(handle, flush_every=100)
        sink(StageStarted(stage="a"))
        sink(EvaluationFinished(consistent=True))
        assert len(flushes) == 1

    def test_flush_every_rejects_nonpositive(self):
        with pytest.raises(ReproError, match="flush_every"):
            JsonlSink(io.StringIO(), flush_every=0)

    def test_borrowed_handles_are_not_closed(self):
        handle = io.StringIO()
        sink = JsonlSink(handle)
        sink(StageStarted(stage="a"))
        sink.close()
        assert not handle.closed
        sink(StageStarted(stage="ignored after close"))
        assert len(handle.getvalue().splitlines()) == 1

    def test_events_from_jsonl_rejects_garbage(self):
        with pytest.raises(ReproError, match="line 2"):
            events_from_jsonl(
                '{"kind": "stage-started", "stage": "a"}\nnot json\n'
            )

    def test_blank_lines_are_skipped(self):
        events = events_from_jsonl(
            '\n{"kind": "stage-started", "stage": "a"}\n\n'
        )
        assert len(events) == 1


class TestPipelineEmission:
    @pytest.fixture
    def streamed_evaluation(
        self, small_scenarios, chain_architecture, chain_mapping
    ):
        """A real evaluation with a live bus capturing every event."""
        bus = EventBus(capacity=4096)
        with use_events(bus):
            report = Sosae(
                small_scenarios, chain_architecture, chain_mapping
            ).evaluate()
        return report, bus.events()

    def test_evaluation_brackets_the_stream(self, streamed_evaluation):
        report, events = streamed_evaluation
        assert isinstance(events[0], EvaluationStarted)
        assert isinstance(events[-1], EvaluationFinished)
        finished = events[-1]
        assert finished.consistent == report.consistent
        assert finished.findings == len(report.all_inconsistencies())
        assert finished.scenarios_passed == len(report.passed_scenarios)
        assert finished.scenarios_failed == len(report.failed_scenarios)
        assert finished.wall_seconds > 0

    def test_stages_come_in_started_finished_pairs(self, streamed_evaluation):
        _, events = streamed_evaluation
        started = [e.stage for e in events if isinstance(e, StageStarted)]
        finished = [e.stage for e in events if isinstance(e, StageFinished)]
        assert started == finished
        assert "validation" in started and "walkthrough" in started

    def test_each_scenario_is_bracketed(self, streamed_evaluation):
        report, events = streamed_evaluation
        started = [
            e.scenario for e in events if isinstance(e, ScenarioStarted)
        ]
        finished = [
            e.scenario for e in events if isinstance(e, ScenarioFinished)
        ]
        assert started == finished
        assert len(started) == len(report.scenario_verdicts)

    def test_findings_stream_with_their_ids(
        self, small_scenarios, chain_architecture, chain_mapping
    ):
        chain_architecture.excise_links_between("logic", "logic-store")
        bus = EventBus(capacity=4096)
        with use_events(bus):
            report = Sosae(
                small_scenarios, chain_architecture, chain_mapping
            ).evaluate()
        assert not report.consistent
        streamed = {
            event.finding_id
            for event in bus.events()
            if isinstance(event, FindingEmitted)
        }
        expected = {
            finding.finding_id
            for finding in report.all_inconsistencies()
        }
        assert streamed == expected and expected

    def test_report_is_identical_with_and_without_bus(
        self, small_scenarios, chain_architecture, chain_mapping
    ):
        silent = Sosae(
            small_scenarios, chain_architecture, chain_mapping
        ).evaluate()
        with use_events(EventBus()):
            streamed = Sosae(
                small_scenarios, chain_architecture, chain_mapping
            ).evaluate()
        assert silent == streamed

    def test_run_registry_emits_run_recorded(
        self, tmp_path, small_scenarios, chain_architecture, chain_mapping
    ):
        recorder = Recorder()
        bus = EventBus()
        with use(recorder), use_events(bus):
            report = Sosae(
                small_scenarios, chain_architecture, chain_mapping
            ).evaluate()
            RunRegistry(tmp_path / "runs").record("demo", report, recorder)
        recorded = [
            event for event in bus.events() if isinstance(event, RunRecorded)
        ]
        assert [event.run_id for event in recorded] == ["r0001"]
        assert recorded[0].label == "demo"
