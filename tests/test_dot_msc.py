"""Unit tests for DOT export and MSC trace rendering."""

from __future__ import annotations

from repro.adl.dot import architecture_to_dot, mapping_to_dot
from repro.adl.structure import Architecture, Interface
from repro.adl.behavior import Action, ActionKind, Statechart
from repro.sim.msc import message_journey, render_msc
from repro.sim.network import ChannelPolicy
from repro.sim.runtime import ArchitectureRuntime, RuntimeConfig
from repro.sim.trace import MessageTrace


class TestArchitectureDot:
    def test_contains_all_elements(self, chain_architecture):
        dot = architecture_to_dot(chain_architecture)
        assert dot.startswith('graph "chain" {')
        for name in ("ui", "logic", "store", "ui-logic", "logic-store"):
            assert f'"{name}"' in dot

    def test_layers_in_labels(self, chain_architecture):
        dot = architecture_to_dot(chain_architecture)
        assert "(layer 3)" in dot

    def test_edges_per_link(self, chain_architecture):
        dot = architecture_to_dot(chain_architecture)
        assert dot.count(" -- ") == len(chain_architecture.links)

    def test_interface_labels_optional(self, chain_architecture):
        plain = architecture_to_dot(chain_architecture)
        labelled = architecture_to_dot(
            chain_architecture, include_interfaces=True
        )
        assert "calls" not in plain
        assert "calls -- a" in labelled

    def test_subarchitecture_cluster(self, crash):
        dot = architecture_to_dot(crash.architecture)
        assert "cluster_Police Department Command and Control" in dot
        assert '"User Interface"' in dot

    def test_names_with_quotes_escaped(self):
        architecture = Architecture('arch "v2"')
        architecture.add_component('part "one"')
        dot = architecture_to_dot(architecture)
        assert '\\"' in dot


class TestMappingDot:
    def test_bipartite_structure(self, chain_mapping, small_scenarios):
        dot = mapping_to_dot(chain_mapping, small_scenarios)
        assert "cluster_events" in dot
        assert "cluster_components" in dot
        assert '"et:create" -> "c:logic";' in dot
        assert '"et:notify" -> "c:ui";' in dot

    def test_edge_count_matches_table(self, chain_mapping, small_scenarios):
        table = chain_mapping.table(small_scenarios)
        marks = sum(
            1
            for row in table.rows
            for column in table.columns
            if table.is_marked(row, column)
        )
        dot = mapping_to_dot(chain_mapping, small_scenarios)
        assert dot.count(" -> ") == marks


def ping_runtime() -> ArchitectureRuntime:
    architecture = Architecture("msc-demo")
    architecture.add_component("A", interfaces=[Interface("port")])
    architecture.add_connector("wire")
    architecture.add_component("B", interfaces=[Interface("port")])
    architecture.link(("A", "port"), ("wire", "a"))
    architecture.link(("wire", "b"), ("B", "port"))
    chart = Statechart("b")
    chart.add_state("idle", initial=True)
    chart.add_transition(
        "idle", "idle", "ping", actions=[Action(ActionKind.REPLY, "pong")]
    )
    architecture.attach_behavior("B", chart)
    runtime = ArchitectureRuntime(
        architecture, RuntimeConfig(policy=ChannelPolicy(latency=1.0))
    )
    runtime.inject("A", "ping", destination="B")
    runtime.run()
    return runtime


class TestMsc:
    def test_lifelines_and_rows(self):
        runtime = ping_runtime()
        msc = render_msc(runtime.trace)
        lines = msc.splitlines()
        assert "A" in lines[0] and "wire" in lines[0] and "B" in lines[0]
        assert any("ping" in line for line in lines)
        assert any("pong" in line for line in lines)
        assert any(line.startswith("t=") for line in lines)

    def test_node_filter(self):
        runtime = ping_runtime()
        msc = render_msc(runtime.trace, nodes=["A", "B"])
        assert "wire" not in msc.splitlines()[0]

    def test_limit_adds_ellipsis(self):
        runtime = ping_runtime()
        msc = render_msc(runtime.trace, limit=2)
        assert "..." in msc

    def test_empty_trace(self):
        assert render_msc(MessageTrace()) == "(empty trace)"

    def test_message_journey_follows_forwarded_copies(self):
        runtime = ping_runtime()
        send = runtime.trace.sends_from("A")[0]
        journey = message_journey(runtime.trace, send.message.message_id)
        assert len(journey) >= 2  # send at A, delivery at wire, at B...
        nodes = [event.node for event in journey]
        assert nodes[0] == "A"
        assert "B" in nodes
