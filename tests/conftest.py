"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.adl.structure import Architecture, Direction, Interface
from repro.core.mapping import Mapping
from repro.scenarioml.events import SimpleEvent, TypedEvent
from repro.scenarioml.ontology import Ontology, Parameter
from repro.scenarioml.scenario import Scenario, ScenarioSet
from repro.systems.crash import build_crash
from repro.systems.pims import build_pims


@pytest.fixture
def small_ontology() -> Ontology:
    """A compact ontology with classes, individuals, and event types,
    including a subtype hierarchy and parameterized types."""
    ontology = Ontology("small")
    ontology.define_term("widget", "A thing the system manages.")
    ontology.define_instance_type("Actor")
    ontology.define_instance_type("Human", super_name="Actor")
    ontology.define_instance_type("Service", super_name="Actor")
    ontology.define_instance("alice", "Human")
    ontology.define_instance("backend", "Service")
    ontology.define_event_type(
        "act", "An actor acts on the [subject]", abstract=True,
        parameters=["subject"],
    )
    ontology.define_event_type(
        "create", "The system creates the [subject]", actor="System",
        parameters=["subject"], super_name="act",
    )
    ontology.define_event_type(
        "destroy", "The system destroys the [subject]", actor="System",
        parameters=["subject"], super_name="act",
    )
    ontology.define_event_type(
        "notify", "The system notifies [who]", actor="System",
        parameters=[Parameter("who", "Actor")],
    )
    ontology.validate()
    return ontology


@pytest.fixture
def small_scenarios(small_ontology: Ontology) -> ScenarioSet:
    """Two small scenarios over the small ontology."""
    scenarios = ScenarioSet(small_ontology, name="small-set")
    scenarios.add(
        Scenario(
            name="make-widget",
            events=(
                TypedEvent(
                    type_name="create", arguments={"subject": "widget"},
                    label="1",
                ),
                TypedEvent(
                    type_name="notify", arguments={"who": "alice"}, label="2"
                ),
            ),
        )
    )
    scenarios.add(
        Scenario(
            name="drop-widget",
            events=(
                TypedEvent(
                    type_name="destroy", arguments={"subject": "widget"},
                    label="1",
                ),
                SimpleEvent(text="The widget is gone.", label="2"),
            ),
        )
    )
    return scenarios


@pytest.fixture
def chain_architecture() -> Architecture:
    """A directed chain: ui -> logic -> store, each hop via a connector."""
    architecture = Architecture("chain")
    architecture.add_component(
        "ui", interfaces=[Interface("calls", Direction.OUT)], layer=3
    )
    architecture.add_component(
        "logic",
        interfaces=[
            Interface("services", Direction.IN),
            Interface("calls", Direction.OUT),
        ],
        layer=2,
    )
    architecture.add_component(
        "store", interfaces=[Interface("services", Direction.IN)], layer=1
    )
    architecture.add_connector("ui-logic")
    architecture.add_connector("logic-store")
    architecture.link(("ui", "calls"), ("ui-logic", "a"))
    architecture.link(("ui-logic", "b"), ("logic", "services"))
    architecture.link(("logic", "calls"), ("logic-store", "a"))
    architecture.link(("logic-store", "b"), ("store", "services"))
    architecture.validate()
    return architecture


@pytest.fixture
def chain_mapping(
    small_ontology: Ontology, chain_architecture: Architecture
) -> Mapping:
    """Event types of the small ontology mapped onto the chain."""
    mapping = Mapping(small_ontology, chain_architecture)
    mapping.map_event("create", "logic", "store")
    mapping.map_event("destroy", "logic", "store")
    mapping.map_event("notify", "ui")
    return mapping


@pytest.fixture(scope="session")
def pims():
    """The full PIMS case study (session-scoped; treat as read-only)."""
    return build_pims()


@pytest.fixture(scope="session")
def crash():
    """The full CRASH case study (session-scoped; treat as read-only)."""
    return build_crash()
