"""Property-based tests for the extension modules."""

from __future__ import annotations

import string

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.evaluator import Sosae
from repro.core.implied import detect_implied_scenarios
from repro.core.incremental import reevaluate
from repro.core.mapping import Mapping
from repro.core.ranking import rank_scenarios
from repro.core.walkthrough import WalkthroughEngine
from repro.scenarioml.events import TypedEvent
from repro.scenarioml.ontology import Ontology, Parameter
from repro.scenarioml.owl import parse_owl_xml, to_owl_xml
from repro.scenarioml.scenario import Scenario, ScenarioSet
from repro.systems.generators import SyntheticSpec, build_synthetic

names = st.text(
    alphabet=string.ascii_letters + string.digits + " -",
    min_size=1,
    max_size=16,
).map(str.strip).filter(bool)


@settings(max_examples=30, suppress_health_check=[HealthCheck.too_slow])
@given(
    class_names=st.lists(names, min_size=1, max_size=5, unique=True),
    event_names=st.lists(names, min_size=1, max_size=5, unique=True),
)
def test_owl_roundtrip_preserves_structure(class_names, event_names):
    """OWL export/import is lossless for generated ontologies: same
    definitions, same subsumption relation."""
    overlap = set(class_names) & set(event_names)
    class_names = [n for n in class_names if n not in overlap]
    if not class_names:
        return
    ontology = Ontology("generated")
    previous = None
    for name in class_names:
        ontology.define_instance_type(name, super_name=previous)
        previous = name
    ontology.define_instance("the-individual", class_names[-1])
    previous_event = None
    for name in event_names:
        ontology.define_event_type(
            name,
            text=f"does [x] to {name}",
            parameters=[Parameter("x", class_names[0])],
            super_name=previous_event,
        )
        previous_event = name
    ontology.validate()

    recovered = parse_owl_xml(to_owl_xml(ontology))
    for name in class_names:
        assert recovered.instance_type(name).super_name == (
            ontology.instance_type(name).super_name
        )
    for name in event_names:
        assert recovered.event_type(name).super_name == (
            ontology.event_type(name).super_name
        )
        (parameter,) = recovered.event_type(name).parameters
        assert parameter.type_name == class_names[0]
    assert recovered.instance("the-individual").type_name == class_names[-1]


@settings(max_examples=20, suppress_health_check=[HealthCheck.too_slow])
@given(
    spec=st.builds(
        SyntheticSpec,
        event_types=st.integers(2, 12),
        components=st.integers(2, 8),
        scenarios=st.integers(1, 10),
        events_per_scenario=st.integers(1, 6),
        seed=st.integers(0, 500),
    ),
    victim=st.integers(0, 7),
)
def test_incremental_reevaluation_equals_full(spec, victim):
    """For any synthetic system and any single excised component link, the
    incremental report's verdicts equal a from-scratch evaluation's."""
    system = build_synthetic(spec)
    previous = Sosae(
        system.scenarios, system.architecture, system.mapping
    ).evaluate()
    evolved = system.architecture.clone("evolved")
    component = f"component-{victim % spec.components}"
    evolved.excise_links_between(component, "bus")

    result = reevaluate(
        previous,
        system.scenarios,
        system.architecture,
        evolved,
        system.mapping,
    )
    full_mapping = Mapping.from_dict(
        system.mapping.to_dict(), system.ontology, evolved
    )
    engine = WalkthroughEngine(evolved, full_mapping)
    full = {v.scenario: v.passed for v in engine.walk_all(system.scenarios)}
    incremental = {
        v.scenario: v.passed for v in result.report.scenario_verdicts
    }
    assert incremental == full


@settings(max_examples=30)
@given(
    sequence=st.lists(
        st.sampled_from("abcdefgh"), min_size=1, max_size=6, unique=True
    )
)
def test_single_scenario_specifications_are_closed(sequence):
    """With one scenario, every admissible chain is specified: the
    implied-scenario detector must report closure."""
    ontology = Ontology("single")
    for name in sequence:
        ontology.define_event_type(name)
    from repro.adl.structure import Architecture

    architecture = Architecture("arch")
    architecture.add_connector("bus")
    for index, name in enumerate(sequence):
        architecture.add_component(f"c{name}")
        architecture.link((f"c{name}", "p"), ("bus", f"s{index}"))
    mapping = Mapping(ontology, architecture)
    for name in sequence:
        mapping.map_event(name, f"c{name}")
    scenarios = ScenarioSet(ontology)
    scenarios.add(
        Scenario(
            name="only",
            events=tuple(TypedEvent(type_name=name) for name in sequence),
        )
    )
    report = detect_implied_scenarios(scenarios, mapping, max_length=10)
    assert report.closed


@settings(max_examples=20, suppress_health_check=[HealthCheck.too_slow])
@given(
    spec=st.builds(
        SyntheticSpec,
        event_types=st.integers(2, 10),
        components=st.integers(2, 6),
        scenarios=st.integers(2, 8),
        events_per_scenario=st.integers(1, 5),
        seed=st.integers(0, 500),
    )
)
def test_ranking_is_total_and_stable(spec):
    """Every scenario gets exactly one score in [0,1]; ranking the same
    input twice yields the same order."""
    system = build_synthetic(spec)
    first = rank_scenarios(system.scenarios, system.mapping)
    second = rank_scenarios(system.scenarios, system.mapping)
    assert [s.scenario for s in first] == [s.scenario for s in second]
    assert len(first) == len(system.scenarios)
    assert all(0.0 <= score.score <= 1.0 for score in first)
