"""Tests for the span/metrics exporters: JSON-lines, Chrome trace,
profile rendering — plus an end-to-end profile of a PIMS evaluation."""

from __future__ import annotations

import json

import pytest

from repro.core.evaluator import Sosae
from repro.errors import ReproError
from repro.obs import (
    MetricsRegistry,
    Recorder,
    Span,
    chrome_trace,
    chrome_trace_json,
    metrics_to_json,
    render_profile,
    spans_from_chrome_trace,
    spans_from_jsonl,
    spans_to_jsonl,
    use,
)

STAGE_SPANS = (
    "evaluate.validation",
    "evaluate.style_check",
    "evaluate.coverage",
    "evaluate.constraints",
    "evaluate.walkthrough",
)


def fixed_tree() -> list[Span]:
    """A hand-built span tree with exact timestamps, so exporter output
    is fully deterministic."""
    root = Span("evaluate", {"architecture": "demo"})
    root.start_wall, root.end_wall = 0.0, 0.010
    root.start_cpu, root.end_cpu = 0.0, 0.008

    stage = Span("stage-a", {"items": 2})
    stage.start_wall, stage.end_wall = 0.0, 0.004
    stage.start_cpu, stage.end_cpu = 0.0, 0.003
    root.add_child(stage)

    inner = Span("unit")
    inner.start_wall, inner.end_wall = 0.001, 0.002
    stage.add_child(inner)

    for start, end in ((0.004, 0.006), (0.006, 0.009)):
        walk = Span("walk")
        walk.start_wall, walk.end_wall = start, end
        root.add_child(walk)
    return [root]


class TestJsonlRoundTrip:
    def test_round_trip_preserves_everything(self):
        roots = fixed_tree()
        text = spans_to_jsonl(roots)
        rebuilt = spans_from_jsonl(text)
        assert len(rebuilt) == 1
        for original, restored in zip(
            roots[0].iter_spans(), rebuilt[0].iter_spans()
        ):
            assert restored.name == original.name
            assert restored.attributes == original.attributes
            assert restored.start_wall == original.start_wall
            assert restored.end_wall == original.end_wall
            assert restored.start_cpu == original.start_cpu
            assert restored.end_cpu == original.end_cpu
            assert len(restored.children) == len(original.children)

    def test_one_record_per_span(self):
        text = spans_to_jsonl(fixed_tree())
        lines = [line for line in text.splitlines() if line.strip()]
        assert len(lines) == fixed_tree()[0].count()
        first = json.loads(lines[0])
        assert first["parent"] is None
        assert first["name"] == "evaluate"

    def test_empty_forest(self):
        assert spans_to_jsonl([]) == ""
        assert spans_from_jsonl("") == ()

    def test_bad_json_raises(self):
        with pytest.raises(ReproError, match="line 1"):
            spans_from_jsonl("{not json}\n")

    def test_unknown_parent_raises(self):
        record = json.dumps(
            {
                "id": 0,
                "parent": 99,
                "name": "orphan",
                "start_wall": 0.0,
                "end_wall": 1.0,
            }
        )
        with pytest.raises(ReproError, match="unknown"):
            spans_from_jsonl(record + "\n")

    def test_recorded_spans_round_trip(self):
        recorder = Recorder()
        with recorder.span("outer", kind="test"):
            with recorder.span("inner"):
                pass
        rebuilt = spans_from_jsonl(spans_to_jsonl(recorder.roots))
        assert rebuilt[0].name == "outer"
        assert rebuilt[0].children[0].name == "inner"
        assert rebuilt[0].wall_seconds == recorder.roots[0].wall_seconds


class TestChromeTrace:
    def test_document_shape(self):
        document = chrome_trace(fixed_tree(), process_name="demo-proc")
        events = document["traceEvents"]
        assert document["displayTimeUnit"] == "ms"
        phases = {event["ph"] for event in events}
        assert phases == {"M", "X"}
        metadata = events[0]
        assert metadata["ph"] == "M"
        assert metadata["args"]["name"] == "demo-proc"
        complete = [event for event in events if event["ph"] == "X"]
        assert len(complete) == fixed_tree()[0].count()
        root_event = complete[0]
        # Timestamps are microseconds relative to the earliest root.
        assert root_event["ts"] == 0.0
        assert root_event["dur"] == pytest.approx(10_000.0)
        assert root_event["args"] == {"architecture": "demo"}

    def test_json_serialization_is_loadable(self):
        parsed = json.loads(chrome_trace_json(fixed_tree()))
        assert "traceEvents" in parsed

    def test_round_trip_reconstructs_nesting(self):
        rebuilt = spans_from_chrome_trace(chrome_trace(fixed_tree()))
        assert len(rebuilt) == 1
        root = rebuilt[0]
        assert root.name == "evaluate"
        assert [child.name for child in root.children] == [
            "stage-a",
            "walk",
            "walk",
        ]
        assert root.children[0].children[0].name == "unit"
        assert root.wall_seconds == pytest.approx(0.010)
        assert root.attributes == {"architecture": "demo"}

    def test_not_a_trace_document_raises(self):
        with pytest.raises(ReproError, match="traceEvents"):
            spans_from_chrome_trace({"events": []})
        with pytest.raises(ReproError, match="traceEvents"):
            spans_from_chrome_trace(None)

    def test_non_json_attributes_degrade_to_strings(self):
        span = Span("odd", {"obj": {1, 2}})
        span.start_wall, span.end_wall = 0.0, 0.001
        document = chrome_trace([span])
        args = next(
            event["args"]
            for event in document["traceEvents"]
            if event["ph"] == "X"
        )
        assert isinstance(args["obj"], str)
        json.dumps(document)  # must be serializable


class TestRenderProfile:
    def test_golden_tree(self):
        metrics = MetricsRegistry()
        metrics.counter("walkthrough.steps").inc(42)
        metrics.histogram("index.build_seconds").observe(0.5)
        rendered = render_profile(fixed_tree(), metrics)
        assert rendered == "\n".join(
            [
                "evaluate  wall 10.000ms  cpu 8.000ms  [architecture=demo]",
                "  stage-a  wall 4.000ms  cpu 3.000ms   40.0%  [items=2]",
                "    unit  wall 1.000ms  cpu 0.000ms   10.0%",
                "  walk ×2  wall 5.000ms  cpu 0.000ms   50.0%",
                "metrics:",
                "  index.build_seconds = n=1 mean=0.5",
                "  walkthrough.steps = 42",
            ]
        )

    def test_max_depth_truncates(self):
        rendered = render_profile(fixed_tree(), max_depth=1)
        assert "stage-a" in rendered
        assert "unit" not in rendered

    def test_without_metrics_no_metrics_section(self):
        assert "metrics:" not in render_profile(fixed_tree())
        assert "metrics:" not in render_profile(
            fixed_tree(), MetricsRegistry()
        )


class TestDegenerateInputs:
    """Empty span forests and zero-duration roots must not crash (or
    divide by zero) in any exporter."""

    def test_render_profile_empty_forest_renders_placeholder(self):
        assert render_profile([]) == "(no spans recorded)"

    def test_render_profile_empty_forest_keeps_metrics(self):
        registry = MetricsRegistry()
        registry.counter("steps").inc(3)
        text = render_profile([], registry)
        assert "(no spans recorded)" in text
        assert "steps = 3" in text

    def test_render_profile_zero_duration_root_shares_are_na(self):
        root = Span("evaluate")
        root.start_wall = root.end_wall = 5.0
        child = Span("stage")
        child.start_wall, child.end_wall = 5.0, 5.0
        root.add_child(child)
        text = render_profile([root])
        assert "n/a" in text
        assert "%" not in text

    def test_chrome_trace_empty_forest_is_a_valid_document(self):
        document = chrome_trace([])
        assert [event["ph"] for event in document["traceEvents"]] == ["M"]
        json.loads(chrome_trace_json([]))

    def test_chrome_trace_clamps_unfinished_span_duration(self):
        span = Span("never-finished")
        span.start_wall = 10.0
        span.end_wall = 0.0  # never closed: wall_seconds is negative
        (meta, event) = chrome_trace([span])["traceEvents"]
        assert event["dur"] == 0.0

    def test_spans_to_jsonl_empty_forest_is_empty_text(self):
        assert spans_to_jsonl([]) == ""
        assert spans_from_jsonl("") == ()


class TestMetricsJson:
    def test_snapshot_is_valid_json(self):
        metrics = MetricsRegistry()
        metrics.counter("hits").inc(3)
        metrics.histogram("lat").observe(1.5)
        parsed = json.loads(metrics_to_json(metrics))
        assert parsed["hits"] == {"type": "counter", "value": 3}
        assert parsed["lat"]["count"] == 1


class TestPimsEvaluationProfile:
    """End-to-end: profile a real (small) PIMS evaluation."""

    @pytest.fixture()
    def recorded(self, pims):
        recorder = Recorder()
        sosae = Sosae(
            pims.scenarios,
            pims.architecture,
            pims.mapping,
            walkthrough_options=pims.options,
        )
        with use(recorder):
            report = sosae.evaluate()
        return recorder, report

    def test_profile_covers_every_stage(self, recorded):
        recorder, report = recorded
        assert report.consistent
        rendered = render_profile(recorder.roots, recorder.metrics)
        assert rendered.startswith("evaluate  ")
        for stage in STAGE_SPANS:
            assert stage in rendered
        assert "metrics:" in rendered
        assert "walkthrough.steps" in rendered

    def test_span_tree_matches_pipeline(self, recorded):
        recorder, _ = recorded
        assert len(recorder.roots) == 1
        root = recorder.roots[0]
        assert root.name == "evaluate"
        assert root.attributes["consistent"] is True
        stage_names = [child.name for child in root.children]
        for stage in STAGE_SPANS:
            assert stage in stage_names
        walkthrough = next(
            child
            for child in root.children
            if child.name == "evaluate.walkthrough"
        )
        scenario_spans = [
            span
            for span in walkthrough.iter_spans()
            if span.name == "walkthrough.scenario"
        ]
        assert scenario_spans
        step_spans = [
            span
            for span in walkthrough.iter_spans()
            if span.name == "walkthrough.step"
        ]
        assert step_spans
        assert all(span.attributes.get("ok") for span in step_spans)

    def test_metrics_counters_are_nonzero(self, recorded):
        recorder, _ = recorded
        metrics = recorder.metrics
        assert metrics.value("walkthrough.steps") > 0
        assert metrics.value("walkthrough.traces") > 0
        assert metrics.value("index.hits") > 0
        assert metrics.value("walkthrough.missing_links") == 0

    def test_exporters_accept_the_real_tree(self, recorded):
        recorder, _ = recorded
        rebuilt = spans_from_jsonl(spans_to_jsonl(recorder.roots))
        assert rebuilt[0].count() == recorder.roots[0].count()
        document = chrome_trace(recorder.roots)
        names = {
            event["name"]
            for event in document["traceEvents"]
            if event["ph"] == "X"
        }
        for stage in STAGE_SPANS:
            assert stage in names


class TestSpanIdentity:
    """Stable span ids and parent references in both export formats,
    with backward-compatible reading of id-less files."""

    def _recorded_forest(self):
        from repro.obs import TraceContext
        from repro.obs.spans import SpanRecorder

        recorder = Recorder(
            spans=SpanRecorder(
                context=TraceContext(trace_id="abcd" * 4, shard=2)
            )
        )
        with use(recorder):
            with recorder.span("outer"):
                with recorder.span("inner"):
                    pass
            with recorder.span("second"):
                pass
        return recorder.roots

    def test_jsonl_carries_and_restores_identity(self):
        roots = self._recorded_forest()
        text = spans_to_jsonl(roots)
        for line in text.splitlines():
            record = json.loads(line)
            assert record["trace_id"] == "abcd" * 4
            assert record["shard"] == 2
            assert record["span_id"].startswith("s2.")
        restored = spans_from_jsonl(text)
        outer, second = restored
        assert outer.span_id == "s2.1"
        assert outer.children[0].span_id == "s2.2"
        assert outer.children[0].parent_id == "s2.1"
        assert second.span_id == "s2.3"

    def test_ids_survive_a_jsonl_round_trip_byte_identically(self):
        roots = self._recorded_forest()
        text = spans_to_jsonl(roots)
        assert spans_to_jsonl(spans_from_jsonl(text)) == text

    def test_chrome_trace_args_carry_identity(self):
        roots = self._recorded_forest()
        document = chrome_trace(roots)
        complete = [
            event for event in document["traceEvents"]
            if event.get("ph") == "X"
        ]
        assert all("span_id" in event["args"] for event in complete)
        child = next(
            event for event in complete if event["name"] == "inner"
        )
        assert child["args"]["parent_span_id"] == "s2.1"
        # Shard lanes: tid = shard + 1.
        assert {event["tid"] for event in complete} == {3}

    def test_multi_shard_trace_names_its_lanes(self):
        main = Span("evaluate")
        main.start_wall, main.end_wall = 0.0, 1.0
        forest = (main,) + self._recorded_forest()
        document = chrome_trace(forest)
        names = {
            event["args"]["name"]
            for event in document["traceEvents"]
            if event.get("ph") == "M" and event["name"] == "thread_name"
        }
        assert names == {"main", "shard 2"}

    def test_chrome_round_trip_links_by_id(self):
        roots = self._recorded_forest()
        restored = spans_from_chrome_trace(chrome_trace(roots))
        assert [span.name for span in restored] == ["outer", "second"]
        assert restored[0].children[0].name == "inner"
        assert restored[0].children[0].parent_id == restored[0].span_id
        assert all(span.shard == 2 for span in restored)
        # Identity args do not leak into user attributes.
        assert "span_id" not in restored[0].attributes

    def test_old_idless_jsonl_still_loads(self):
        """A trace written before span identity existed (positional
        id/parent only) must reconstruct the same tree, ids left None."""
        old = (
            '{"id": 0, "parent": null, "name": "evaluate",'
            ' "start_wall": 0.0, "end_wall": 1.0,'
            ' "start_cpu": 0.0, "end_cpu": 0.5, "attributes": {}}\n'
            '{"id": 1, "parent": 0, "name": "stage",'
            ' "start_wall": 0.1, "end_wall": 0.9,'
            ' "start_cpu": 0.1, "end_cpu": 0.4, "attributes": {}}\n'
        )
        (root,) = spans_from_jsonl(old)
        assert root.name == "evaluate"
        assert root.span_id is None
        assert root.shard is None
        assert root.children[0].name == "stage"

    def test_old_idless_chrome_trace_still_loads(self):
        """An old Chrome trace (no span_id args) falls back to per-tid
        interval containment."""
        document = {
            "traceEvents": [
                {"name": "evaluate", "ph": "X", "ts": 0.0, "dur": 1000.0,
                 "pid": 1, "tid": 1, "args": {}},
                {"name": "stage", "ph": "X", "ts": 100.0, "dur": 500.0,
                 "pid": 1, "tid": 1, "args": {}},
            ]
        }
        (root,) = spans_from_chrome_trace(document)
        assert root.name == "evaluate"
        assert [child.name for child in root.children] == ["stage"]
        assert root.span_id is None
