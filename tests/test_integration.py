"""Cross-module integration tests.

These exercise whole-pipeline flows the paper motivates: exporting and
re-importing all artifacts, evaluating an Acme-imported architecture
(ADL independence), evolution with traceability-driven re-evaluation, and
entity-derived mappings agreeing with hand-built ones.
"""

from __future__ import annotations

from repro.adl.acme import parse_acme, to_acme
from repro.adl.diff import diff_architectures
from repro.adl.xadl import parse_xadl, to_xadl_xml
from repro.core.entity_mapping import EntityMapping
from repro.core.evaluator import Sosae
from repro.core.mapping import Mapping
from repro.core.traceability import TraceabilityMatrix
from repro.core.walkthrough import WalkthroughEngine
from repro.scenarioml.xml_io import parse_scenarioml, to_scenarioml_xml
from repro.systems.crash import (
    FIRE_CC,
    POLICE_CC,
    build_crash_mapping,
)
from repro.systems.pims import GET_SHARE_PRICES, LOADER


class TestArtifactRoundtripEvaluation:
    def test_pims_evaluation_identical_after_full_roundtrip(self, pims):
        """Serialize scenarios (ScenarioML), architecture (xADL), and
        mapping (JSON); re-import everything; the evaluation verdicts must
        be unchanged."""
        scenarios = parse_scenarioml(to_scenarioml_xml(pims.scenarios))
        architecture = parse_xadl(to_xadl_xml(pims.architecture))
        mapping = Mapping.from_json(
            pims.mapping.to_json(), scenarios.ontology, architecture
        )
        original = Sosae(
            pims.scenarios,
            pims.architecture,
            pims.mapping,
            walkthrough_options=pims.options,
        ).evaluate()
        reimported = Sosae(
            scenarios, architecture, mapping, walkthrough_options=pims.options
        ).evaluate()
        assert original.consistent == reimported.consistent
        assert original.passed_scenarios == reimported.passed_scenarios

    def test_acme_imported_architecture_evaluates_identically(self, pims):
        """ADL independence: the walkthrough only needs structure, so an
        architecture that made a round trip through Acme yields the same
        verdicts — including the seeded-fault failure."""
        acme_architecture = parse_acme(to_acme(pims.excised_architecture()))
        mapping = Mapping.from_dict(
            pims.mapping.to_dict(), pims.ontology, acme_architecture
        )
        engine = WalkthroughEngine(acme_architecture, mapping, pims.options)
        verdicts = engine.walk_all(pims.scenarios)
        failed = [v.scenario for v in verdicts if not v.passed]
        assert failed == [GET_SHARE_PRICES]


class TestEvolutionWorkflow:
    def test_diff_traceability_localizes_reevaluation(self, pims):
        """The maintenance loop: architecture evolves -> diff -> impacted
        scenarios -> re-evaluate only those -> same verdicts as a full
        re-evaluation."""
        variant = pims.excised_architecture()
        diff = diff_architectures(pims.architecture, variant)
        matrix = TraceabilityMatrix(pims.scenarios, pims.mapping)
        impacted = matrix.impacted_scenarios(diff)
        assert GET_SHARE_PRICES in impacted

        mapping = Mapping.from_dict(
            pims.mapping.to_dict(), pims.ontology, variant
        )
        engine = WalkthroughEngine(variant, mapping, pims.options)
        targeted = {
            name: engine.walk_scenario(
                pims.scenarios.get(name), pims.scenarios
            ).passed
            for name in impacted
        }
        full = {
            verdict.scenario: verdict.passed
            for verdict in engine.walk_all(pims.scenarios)
        }
        for name, passed in targeted.items():
            assert full[name] == passed
        # Scenarios outside the impact set were unaffected by the change.
        for name, passed in full.items():
            if name not in impacted:
                assert passed

    def test_scenario_change_impact_points_at_components(self, pims):
        matrix = TraceabilityMatrix(pims.scenarios, pims.mapping)
        impacted = matrix.impacted_components(GET_SHARE_PRICES)
        assert LOADER in impacted
        assert "Authentication" not in impacted


class TestEntityDerivedMapping:
    def test_crash_entity_mapping_agrees_with_manual_for_shutdown(
        self, crash
    ):
        """Deriving the shutdownEntity mapping from the entities appearing
        in its occurrences reproduces the hand-built entries for the
        centers the scenarios actually mention."""
        entity_mapping = EntityMapping(crash.ontology, crash.architecture)
        entity_mapping.map_entity("CommandAndControl", POLICE_CC)
        for organization_cc in (POLICE_CC, FIRE_CC):
            entity_mapping.map_entity(organization_cc, organization_cc)
        derived = entity_mapping.derive_event_mapping(crash.scenarios)
        assert POLICE_CC in derived.components_for("shutdownEntity")
        # sendMessage occurrences mention both centers.
        send_targets = set(derived.components_for("sendMessage"))
        assert {POLICE_CC, FIRE_CC} <= send_targets

    def test_derived_mapping_walkthrough_passes(self, crash):
        entity_mapping = EntityMapping(crash.ontology, crash.architecture)
        for organization_cc in (POLICE_CC, FIRE_CC):
            entity_mapping.map_entity(organization_cc, organization_cc)
        derived = entity_mapping.derive_event_mapping(
            crash.scenarios, base=crash.mapping
        )
        engine = WalkthroughEngine(
            crash.architecture, derived, crash.options
        )
        verdict = engine.walk_scenario(
            crash.scenarios.get("message-sequence"), crash.scenarios
        )
        assert verdict.passed


class TestCrossSystemOntologyMerge:
    def test_conflicting_shared_concepts_are_detected(self, pims, crash):
        """Both case studies define an 'Actor' class with different prose;
        merging must flag the conflict rather than silently pick one."""
        import pytest

        from repro.errors import DuplicateDefinitionError

        with pytest.raises(DuplicateDefinitionError):
            pims.ontology.merge(crash.ontology)

    def test_disjoint_subsets_merge_cleanly(self, pims):
        from repro.scenarioml.ontology import Ontology

        extension = Ontology("pims-extension")
        extension.define_event_type(
            "exportReport", "The system exports a report"
        )
        merged = pims.ontology.merge(extension)
        assert merged.has_event_type("createPortfolio")
        assert merged.has_event_type("exportReport")
        merged.validate()
