"""Property-based tests (hypothesis) for core invariants."""

from __future__ import annotations

import string

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.adl.acme import parse_acme, to_acme
from repro.adl.diff import diff_architectures
from repro.adl.structure import Architecture
from repro.adl.xadl import parse_xadl, to_xadl_xml
from repro.core.mapping import Mapping
from repro.scenarioml.events import (
    Alternation,
    Iteration,
    Optional_,
    SimpleEvent,
    TypedEvent,
)
from repro.scenarioml.ontology import Ontology
from repro.scenarioml.scenario import Scenario, ScenarioSet, TraceOptions
from repro.scenarioml.xml_io import parse_scenarioml, to_scenarioml_xml
from repro.sim.engine import Simulator
from repro.sim.network import ChannelPolicy, NetworkChannel
from repro.sim.node import Message, Node
from repro.sim.trace import MessageTrace
from repro.systems.generators import SyntheticSpec, build_synthetic

# Identifier-ish names: printable, no XML-hostile control characters.
names = st.text(
    alphabet=string.ascii_letters + string.digits + " _.-",
    min_size=1,
    max_size=20,
).map(str.strip).filter(bool)

texts = st.text(
    alphabet=string.ascii_letters + string.digits + " _.,;:'!?()-",
    min_size=1,
    max_size=40,
).map(str.strip).filter(bool)


# ----------------------------------------------------------------------
# Ontology invariants
# ----------------------------------------------------------------------

@given(names_list=st.lists(names, min_size=1, max_size=8, unique=True))
def test_subsumption_chain_is_acyclic_and_complete(names_list):
    """A linear subclass chain yields exactly its suffix as ancestors."""
    ontology = Ontology("chain")
    previous = None
    for name in names_list:
        ontology.define_instance_type(name, super_name=previous)
        previous = name
    for index, name in enumerate(names_list):
        ancestors = ontology.class_ancestors(name)
        assert list(ancestors) == list(reversed(names_list[:index]))
        assert ontology.is_subclass_of(name, names_list[0])
    ontology.validate()


@given(
    event_names=st.lists(names, min_size=2, max_size=6, unique=True),
)
def test_descendants_inverse_of_ancestors(event_names):
    ontology = Ontology("tree")
    root = event_names[0]
    ontology.define_event_type(root)
    for name in event_names[1:]:
        ontology.define_event_type(name, super_name=root)
    descendants = set(ontology.event_type_descendants(root))
    assert descendants == set(event_names[1:])
    for name in event_names[1:]:
        assert root in ontology.event_type_ancestors(name)


# ----------------------------------------------------------------------
# Scenario trace expansion invariants
# ----------------------------------------------------------------------

simple_events = texts.map(lambda t: SimpleEvent(text=t))


def schema_events(children):
    return st.one_of(
        st.tuples(children, children).map(
            lambda pair: Alternation(branches=pair)
        ),
        children.map(lambda c: Optional_(body=c)),
        st.tuples(children, st.integers(0, 2), st.integers(0, 2)).map(
            lambda triple: Iteration(
                body=triple[0],
                min_count=triple[1],
                max_count=triple[1] + triple[2],
            )
        ),
    )


event_trees = st.recursive(simple_events, schema_events, max_leaves=6)


@settings(max_examples=60, suppress_health_check=[HealthCheck.too_slow])
@given(events=st.lists(event_trees, min_size=1, max_size=4))
def test_trace_expansion_bounded_and_leaf_only(events):
    ontology = Ontology("o")
    scenarios = ScenarioSet(ontology)
    scenarios.add(Scenario(name="s", events=tuple(events)))
    options = TraceOptions(max_traces=64)
    traces = scenarios.traces("s", options)
    assert 1 <= len(traces) <= 64
    for trace in traces:
        for event in trace:
            assert isinstance(event, (SimpleEvent, TypedEvent))


@settings(max_examples=30)
@given(
    branch_count=st.integers(2, 5),
    tail_count=st.integers(0, 3),
)
def test_alternation_trace_count_is_branch_count(branch_count, tail_count):
    ontology = Ontology("o")
    scenarios = ScenarioSet(ontology)
    branches = tuple(
        SimpleEvent(text=f"branch-{i}") for i in range(branch_count)
    )
    tail = tuple(SimpleEvent(text=f"tail-{i}") for i in range(tail_count))
    scenarios.add(
        Scenario(name="s", events=(Alternation(branches=branches), *tail))
    )
    traces = scenarios.traces("s")
    assert len(traces) == branch_count
    for trace in traces:
        assert len(trace) == 1 + tail_count


# ----------------------------------------------------------------------
# Serialization roundtrips
# ----------------------------------------------------------------------

@settings(max_examples=40, suppress_health_check=[HealthCheck.too_slow])
@given(
    scenario_names=st.lists(names, min_size=1, max_size=4, unique=True),
    event_texts=st.lists(texts, min_size=1, max_size=4),
)
def test_scenarioml_roundtrip_preserves_events(scenario_names, event_texts):
    ontology = Ontology("o")
    ontology.define_event_type("e", "does [x]", parameters=["x"])
    scenarios = ScenarioSet(ontology)
    for name in scenario_names:
        scenarios.add(
            Scenario(
                name=name,
                events=tuple(
                    SimpleEvent(text=text) for text in event_texts
                )
                + (TypedEvent(type_name="e", arguments={"x": name}),),
            )
        )
    parsed = parse_scenarioml(to_scenarioml_xml(scenarios))
    assert len(parsed) == len(scenarios)
    for name in scenario_names:
        assert parsed.get(name).events == scenarios.get(name).events


@settings(max_examples=40, suppress_health_check=[HealthCheck.too_slow])
@given(
    component_names=st.lists(names, min_size=2, max_size=6, unique=True),
    description=texts,
)
def test_adl_roundtrips_are_structure_preserving(component_names, description):
    architecture = Architecture("generated", description=description)
    for name in component_names:
        architecture.add_component(name, description=description)
    hub = architecture.add_connector("the-hub")
    for index, name in enumerate(component_names):
        architecture.link((name, "port"), ("the-hub", f"slot{index}"))
    via_xadl = parse_xadl(to_xadl_xml(architecture))
    assert diff_architectures(architecture, via_xadl).is_empty
    via_acme = parse_acme(to_acme(architecture))
    assert diff_architectures(architecture, via_acme).is_empty


# ----------------------------------------------------------------------
# Mapping complexity invariant
# ----------------------------------------------------------------------

@settings(max_examples=25, suppress_health_check=[HealthCheck.too_slow])
@given(
    spec=st.builds(
        SyntheticSpec,
        event_types=st.integers(1, 10),
        components=st.integers(1, 6),
        scenarios=st.integers(1, 8),
        events_per_scenario=st.integers(1, 8),
        reuse=st.floats(0.0, 3.0),
        seed=st.integers(0, 1000),
    )
)
def test_ontology_mediated_links_never_exceed_direct_links(spec):
    """The paper's complexity claim as an invariant: the ontology-mediated
    mapping is never larger than per-occurrence direct linking, and the
    reduction factor equals at least 1."""
    system = build_synthetic(spec)
    direct = system.mapping.direct_link_count(system.scenarios)
    used = set()
    for scenario in system.scenarios:
        used.update(scenario.event_type_names())
    mediated = sum(
        len(system.mapping.components_for(name)) for name in used
    )
    assert mediated <= direct
    assert system.mapping.complexity_reduction(system.scenarios) >= 1.0


# ----------------------------------------------------------------------
# Simulation invariants
# ----------------------------------------------------------------------

@settings(max_examples=30)
@given(
    delays=st.lists(
        st.floats(0.0, 100.0, allow_nan=False), min_size=1, max_size=20
    )
)
def test_simulator_processes_events_in_nondecreasing_time(delays):
    simulator = Simulator()
    observed: list[float] = []
    for delay in delays:
        simulator.schedule(delay, lambda: observed.append(simulator.now))
    simulator.run()
    assert observed == sorted(observed)
    assert len(observed) == len(delays)


@settings(max_examples=25)
@given(
    seed=st.integers(0, 10_000),
    jitter=st.floats(0.0, 100.0, allow_nan=False),
    count=st.integers(1, 15),
)
def test_fifo_channel_always_preserves_order(seed, jitter, count):
    simulator = Simulator()
    trace = MessageTrace()
    channel = NetworkChannel(
        simulator,
        trace,
        policy=ChannelPolicy(latency=1.0, jitter=jitter, fifo=True),
        seed=seed,
    )
    channel.register(Node("a"))
    channel.register(Node("b"))
    for index in range(count):
        channel.send(
            Message(
                name=f"m{index}", source="a", destination="b",
                sequence=index + 1,
            )
        )
    simulator.run()
    assert trace.order_preserved("a", "b")
    assert len(trace.deliveries_to("b")) == count
