"""Tests for the sosae command-line interface."""

from __future__ import annotations

import json
import time
from pathlib import Path

import pytest

from repro.cli import main
from repro.obs import read_events


class TestDemo:
    def test_pims_intact_exits_zero(self, capsys):
        assert main(["demo", "pims"]) == 0
        out = capsys.readouterr().out
        assert "overall: CONSISTENT" in out

    def test_pims_excised_exits_nonzero(self, capsys):
        assert main(["demo", "pims", "--variant", "excised"]) == 1
        out = capsys.readouterr().out
        assert "FAIL get-share-prices" in out

    def test_crash_intact(self, capsys):
        assert main(["demo", "crash"]) == 0

    def test_crash_insecure_flags_negative_scenario(self, capsys):
        assert main(["demo", "crash", "--variant", "insecure"]) == 1
        out = capsys.readouterr().out
        assert "unauthorized-network-access" in out

    def test_crash_dynamic(self, capsys):
        assert main(["demo", "crash", "--dynamic"]) == 0
        out = capsys.readouterr().out
        assert "PASS entity-availability" in out
        assert "PASS message-sequence" in out

    def test_markdown_output(self, capsys):
        assert main(["demo", "pims", "--markdown"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("# Evaluation of `pims`")

    def test_wrong_variant_for_system_errors(self, capsys):
        assert main(["demo", "pims", "--variant", "insecure"]) == 2
        assert main(["demo", "crash", "--variant", "excised"]) == 2


class TestTableAndExport:
    def test_table_pims(self, capsys):
        assert main(["table", "pims"]) == 0
        out = capsys.readouterr().out
        assert "authenticateUser" in out
        assert "Master Controller" in out

    def test_table_markdown(self, capsys):
        assert main(["table", "crash", "--markdown"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("| event type")

    def test_export_scenarioml(self, capsys):
        assert main(["export", "pims", "scenarioml"]) == 0
        out = capsys.readouterr().out
        assert out.lstrip().startswith("<scenarioml")

    def test_export_xadl(self, capsys):
        assert main(["export", "crash", "xadl"]) == 0
        out = capsys.readouterr().out
        assert out.lstrip().startswith("<xArch")

    def test_export_acme(self, capsys):
        assert main(["export", "pims", "acme"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("System pims")

    def test_export_mapping(self, capsys):
        assert main(["export", "pims", "mapping"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert "entries" in data

    def test_export_owl(self, capsys):
        assert main(["export", "crash", "owl"]) == 0
        out = capsys.readouterr().out
        assert out.lstrip().startswith("<rdf:RDF")
        assert "owl:Class" in out


class TestAnalysisCommands:
    def test_rank(self, capsys):
        assert main(["rank", "pims", "--top", "3"]) == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert len(lines) == 3
        assert lines[0].lstrip().startswith("1.")

    def test_rank_crash_puts_dependability_first(self, capsys):
        assert main(["rank", "crash", "--top", "2"]) == 0
        out = capsys.readouterr().out
        assert "entity-availability" in out or "message-sequence" in out

    def test_implied(self, capsys):
        assert main(["implied", "pims", "--max-length", "3", "--limit", "4"]) == 0
        out = capsys.readouterr().out
        assert "implied scenario" in out
        assert "stitched from" in out

    def test_implied_closed_specification(self, capsys):
        # CRASH's scenarios share no stitchable hand-offs at length 2.
        assert main(["implied", "crash", "--max-length", "2"]) == 0
        out = capsys.readouterr().out
        assert out  # either closed or candidates; command succeeds

    def test_dot_architecture(self, capsys):
        assert main(["dot", "pims"]) == 0
        out = capsys.readouterr().out
        assert out.startswith('graph "pims"')

    def test_dot_mapping(self, capsys):
        assert main(["dot", "crash", "--what", "mapping"]) == 0
        out = capsys.readouterr().out
        assert out.startswith('digraph "crash-fig8"')

    def test_lint(self, capsys):
        assert main(["lint", "pims"]) == 0
        out = capsys.readouterr().out
        assert "finding(s) (advisory)" in out or "no lint findings" in out


class TestEvaluateFromFiles:
    @pytest.fixture
    def artifact_files(self, tmp_path: Path, capsys) -> dict[str, Path]:
        paths = {}
        for artifact, filename in (
            ("scenarioml", "scenarios.xml"),
            ("xadl", "architecture.xml"),
            ("acme", "architecture.acme"),
            ("mapping", "mapping.json"),
        ):
            assert main(["export", "pims", artifact]) == 0
            content = capsys.readouterr().out
            path = tmp_path / filename
            path.write_text(content)
            paths[artifact] = path
        return paths

    def test_evaluate_xadl_inputs(self, artifact_files, capsys):
        status = main(
            [
                "evaluate",
                "--scenarios", str(artifact_files["scenarioml"]),
                "--architecture", str(artifact_files["xadl"]),
                "--mapping", str(artifact_files["mapping"]),
            ]
        )
        out = capsys.readouterr().out
        assert status == 0, out
        assert "overall: CONSISTENT" in out

    def test_evaluate_acme_inputs(self, artifact_files, capsys):
        status = main(
            [
                "evaluate",
                "--scenarios", str(artifact_files["scenarioml"]),
                "--architecture", str(artifact_files["acme"]),
                "--mapping", str(artifact_files["mapping"]),
                "--acme",
            ]
        )
        out = capsys.readouterr().out
        assert status == 0, out

    def test_evaluate_missing_file_is_usage_error(self, tmp_path, capsys):
        status = main(
            [
                "evaluate",
                "--scenarios", str(tmp_path / "missing.xml"),
                "--architecture", str(tmp_path / "missing2.xml"),
                "--mapping", str(tmp_path / "missing.json"),
            ]
        )
        assert status == 2

    def test_evaluate_malformed_scenarioml_is_usage_error(
        self, tmp_path, artifact_files, capsys
    ):
        bad = tmp_path / "bad.xml"
        bad.write_text("<not-scenarioml/>")
        status = main(
            [
                "evaluate",
                "--scenarios", str(bad),
                "--architecture", str(artifact_files["xadl"]),
                "--mapping", str(artifact_files["mapping"]),
            ]
        )
        assert status == 2

    def test_evaluate_save_and_baseline_roundtrip(
        self, tmp_path, artifact_files, capsys
    ):
        saved = tmp_path / "report.json"
        base_args = [
            "evaluate",
            "--scenarios", str(artifact_files["scenarioml"]),
            "--architecture", str(artifact_files["xadl"]),
            "--mapping", str(artifact_files["mapping"]),
        ]
        assert main([*base_args, "--save-report", str(saved)]) == 0
        assert saved.exists()
        capsys.readouterr()
        # Comparing the same inputs against the saved baseline: clean.
        assert main([*base_args, "--baseline", str(saved)]) == 0
        out = capsys.readouterr().out
        assert "no verdict changes" in out


class TestObservabilityFlags:
    def test_profile_prints_summary_after_identical_report(self, capsys):
        assert main(["demo", "pims"]) == 0
        plain = capsys.readouterr().out
        assert main(["demo", "pims", "--profile"]) == 0
        profiled = capsys.readouterr().out
        # Observability must not change the report text, only append to it.
        assert profiled.startswith(plain)
        extra = profiled[len(plain):]
        assert "=== profile ===" in extra
        for stage in (
            "evaluate.validation",
            "evaluate.style_check",
            "evaluate.coverage",
            "evaluate.constraints",
            "evaluate.walkthrough",
        ):
            assert stage in extra
        assert "metrics:" in extra

    def test_trace_and_metrics_files(self, tmp_path, capsys):
        trace = tmp_path / "trace.json"
        metrics = tmp_path / "metrics.json"
        status = main(
            [
                "demo", "pims",
                "--trace-out", str(trace),
                "--metrics-out", str(metrics),
            ]
        )
        assert status == 0
        document = json.loads(trace.read_text())
        events = document["traceEvents"]
        assert {event["ph"] for event in events} == {"M", "X"}
        assert any(event["name"] == "evaluate" for event in events)
        snapshot = json.loads(metrics.read_text())
        assert snapshot["walkthrough.steps"]["value"] > 0
        assert snapshot["index.hits"]["value"] > 0

    def test_exit_code_unchanged_on_inconsistent_variant(self, capsys):
        assert main(["demo", "pims", "--variant", "excised"]) == 1
        plain = capsys.readouterr().out
        assert main(["demo", "pims", "--variant", "excised", "--profile"]) == 1
        profiled = capsys.readouterr().out
        assert profiled.startswith(plain)
        assert "=== profile ===" in profiled

    def test_evaluate_subcommand_accepts_the_flags(
        self, tmp_path, capsys
    ):
        assert main(["export", "pims", "scenarioml"]) == 0
        scenarios = tmp_path / "scenarios.xml"
        scenarios.write_text(capsys.readouterr().out)
        assert main(["export", "pims", "xadl"]) == 0
        architecture = tmp_path / "architecture.xml"
        architecture.write_text(capsys.readouterr().out)
        assert main(["export", "pims", "mapping"]) == 0
        mapping = tmp_path / "mapping.json"
        mapping.write_text(capsys.readouterr().out)

        metrics = tmp_path / "metrics.json"
        status = main(
            [
                "evaluate",
                "--scenarios", str(scenarios),
                "--architecture", str(architecture),
                "--mapping", str(mapping),
                "--profile",
                "--metrics-out", str(metrics),
            ]
        )
        assert status == 0
        out = capsys.readouterr().out
        assert "=== profile ===" in out
        assert json.loads(metrics.read_text())["walkthrough.traces"]["value"] > 0


class TestEventStreamFlags:
    def test_events_file_is_a_parseable_stream(self, tmp_path, capsys):
        stream = tmp_path / "events.jsonl"
        assert main(["demo", "pims", "--events", str(stream)]) == 0
        events = read_events(stream)
        kinds = [event.kind for event in events]
        assert kinds[0] == "evaluation-started"
        assert kinds[-1] == "evaluation-finished"
        assert "stage-started" in kinds and "scenario-finished" in kinds
        # Sequence numbers are contiguous from 1.
        assert [event.seq for event in events] == list(
            range(1, len(events) + 1)
        )

    def test_heartbeat_requires_events(self, capsys):
        assert main(["demo", "pims", "--heartbeat", "5"]) == 2
        assert "--heartbeat" in capsys.readouterr().err

    def test_heartbeats_carry_metric_snapshots(self, tmp_path, capsys):
        stream = tmp_path / "events.jsonl"
        assert main(
            ["demo", "pims", "--events", str(stream),
             "--heartbeat", "0.000001"]
        ) == 0
        beats = [e for e in read_events(stream) if e.kind == "heartbeat"]
        assert beats
        assert beats[-1].metrics.get("walkthrough.steps", {}).get("value")

    def test_exit_code_unchanged_with_event_stream(self, tmp_path, capsys):
        stream = tmp_path / "events.jsonl"
        assert main(
            ["demo", "pims", "--variant", "excised", "--events", str(stream)]
        ) == 1
        events = read_events(stream)
        assert any(event.kind == "finding-emitted" for event in events)
        finished = events[-1]
        assert finished.kind == "evaluation-finished"
        assert not finished.consistent

    def test_record_emits_run_recorded_into_the_stream(
        self, tmp_path, capsys
    ):
        stream = tmp_path / "events.jsonl"
        assert main(
            ["demo", "pims", "--events", str(stream),
             "--record", "--runs-dir", str(tmp_path / "runs")]
        ) == 0
        recorded = [
            event for event in read_events(stream)
            if event.kind == "run-recorded"
        ]
        assert [event.run_id for event in recorded] == ["r0001"]

    def test_save_report_round_trips(self, tmp_path, capsys):
        saved = tmp_path / "report.json"
        assert main(["demo", "pims", "--save-report", str(saved)]) == 0
        data = json.loads(saved.read_text())
        assert data["architecture"]


class TestTailAndDashboard:
    @pytest.fixture
    def event_stream(self, tmp_path, capsys) -> Path:
        stream = tmp_path / "events.jsonl"
        assert main(["demo", "pims", "--events", str(stream)]) == 0
        capsys.readouterr()
        return stream

    def test_tail_pretty_prints_every_event(self, event_stream, capsys):
        assert main(["tail", str(event_stream), "--no-color"]) == 0
        out = capsys.readouterr().out
        lines = out.strip().splitlines()
        assert len(lines) == len(read_events(event_stream))
        assert "evaluation-started" in out
        assert "evaluation-finished" in out
        assert "\x1b[" not in out

    def test_tail_missing_file_is_usage_error(self, tmp_path, capsys):
        assert main(["tail", str(tmp_path / "nope.jsonl")]) == 2
        assert "error:" in capsys.readouterr().err

    def test_dashboard_from_stream_and_trace(
        self, tmp_path, event_stream, capsys
    ):
        trace = tmp_path / "trace.json"
        assert main(["demo", "pims", "--trace-out", str(trace)]) == 0
        capsys.readouterr()
        out = tmp_path / "dash.html"
        status = main(
            ["dashboard", "--out", str(out),
             "--events", str(event_stream),
             "--trace", str(trace),
             "--runs-dir", str(tmp_path / "no-runs")]
        )
        assert status == 0
        assert str(out) in capsys.readouterr().out
        html = out.read_text()
        assert html.startswith("<!DOCTYPE html>")
        assert "http://" not in html and "https://" not in html
        assert "evaluation-finished" in html
        assert "evaluate.walkthrough" in html

    def test_dashboard_with_no_inputs_is_usage_error(self, tmp_path, capsys):
        status = main(
            ["dashboard", "--out", str(tmp_path / "d.html"),
             "--runs-dir", str(tmp_path / "empty")]
        )
        assert status == 2
        assert "nothing to render" in capsys.readouterr().err

    def test_dashboard_rejects_events_and_live_together(
        self, tmp_path, event_stream, capsys
    ):
        status = main(
            ["dashboard", "--out", str(tmp_path / "d.html"),
             "--events", str(event_stream),
             "--live", "http://127.0.0.1:1/events"]
        )
        assert status == 2
        assert "not both" in capsys.readouterr().err

    def test_tail_follow_bounded_by_max_events(self, event_stream, capsys):
        status = main(
            ["tail", str(event_stream), "--follow", "--no-color",
             "--poll", "0.01", "--max-events", "3"]
        )
        assert status == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert len(lines) == 3
        assert "evaluation-started" in lines[0]

    def test_tail_follow_rejects_stdin(self, capsys):
        assert main(["tail", "-", "--follow"]) == 2
        assert "not stdin" in capsys.readouterr().err


class TestServe:
    def _rules_file(self, tmp_path, threshold=0):
        rules = tmp_path / "rules.json"
        rules.write_text(json.dumps({"rules": [{
            "name": "no-findings",
            "metric": "report.findings",
            "op": ">",
            "threshold": threshold,
            "severity": "critical",
        }]}))
        return rules

    def test_once_on_intact_demo(self, capsys):
        assert main(["serve", "--system", "pims", "--once"]) == 0
        out = capsys.readouterr().out
        assert "serve --once: CONSISTENT, 0 finding(s)" in out
        assert "0 alert(s) fired" in out

    def test_once_check_exits_one_when_a_rule_fires(
        self, tmp_path, capsys
    ):
        rules = self._rules_file(tmp_path)
        events = tmp_path / "serve-events.jsonl"
        status = main(
            ["serve", "--system", "pims", "--variant", "excised",
             "--once", "--check", "--rules", str(rules),
             "--events", str(events)]
        )
        assert status == 1
        out = capsys.readouterr().out
        assert "INCONSISTENT" in out
        assert "ALERT no-findings" in out
        kinds = [event.kind for event in read_events(events)]
        assert "alert-fired" in kinds
        assert "evaluation-finished" in kinds

    def test_once_check_passes_quiet_rules(self, tmp_path, capsys):
        rules = self._rules_file(tmp_path, threshold=1000)
        status = main(
            ["serve", "--system", "pims", "--variant", "excised",
             "--once", "--check", "--rules", str(rules)]
        )
        assert status == 0

    def test_check_without_once_is_usage_error(self, capsys):
        assert main(["serve", "--system", "pims", "--check"]) == 2
        assert "--once" in capsys.readouterr().err

    def test_system_and_spec_files_conflict(self, tmp_path, capsys):
        assert main(
            ["serve", "--system", "pims",
             "--scenarios", str(tmp_path / "s.xml"), "--once"]
        ) == 2
        assert "not both" in capsys.readouterr().err

    def test_partial_spec_files_are_rejected(self, tmp_path, capsys):
        assert main(
            ["serve", "--scenarios", str(tmp_path / "s.xml"), "--once"]
        ) == 2
        assert "--mapping" in capsys.readouterr().err

    def test_bad_rules_file_is_usage_error(self, tmp_path, capsys):
        rules = tmp_path / "rules.json"
        rules.write_text("{}")
        assert main(
            ["serve", "--system", "pims", "--once",
             "--rules", str(rules)]
        ) == 2
        assert "rules" in capsys.readouterr().err

    def test_once_records_into_the_registry(self, tmp_path, capsys):
        runs_dir = tmp_path / "runs"
        status = main(
            ["serve", "--system", "pims", "--once", "--record",
             "--runs-dir", str(runs_dir)]
        )
        assert status == 0
        assert main(["runs", "list", "--runs-dir", str(runs_dir)]) == 0
        out = capsys.readouterr().out
        assert "serve-pims-intact" in out

    def test_serve_loop_with_max_runs_answers_http(self, tmp_path, capsys):
        import threading
        import urllib.request

        events = tmp_path / "events.jsonl"
        status_box = {}

        def run():
            status_box["status"] = main(
                ["serve", "--system", "pims", "--port", "0",
                 "--interval", "0.2", "--poll", "0.05",
                 "--max-runs", "50", "--events", str(events),
                 "--flush-every", "1"]
            )

        thread = threading.Thread(target=run, daemon=True)
        thread.start()
        # The CLI picks a free port; recover it from the banner line.
        deadline = time.monotonic() + 30
        url = None
        while time.monotonic() < deadline and url is None:
            out = capsys.readouterr().out
            for token in out.split():
                if token.startswith("http://"):
                    url = token
            time.sleep(0.05)
        assert url is not None, "serve never printed its URL"
        with urllib.request.urlopen(f"{url}/metrics", timeout=10) as resp:
            body = resp.read().decode("utf-8")
        assert "sosae_serve_up 1" in body
        assert 'quantile="0.95"' in body
        with urllib.request.urlopen(f"{url}/healthz", timeout=10) as resp:
            health = json.loads(resp.read())
        assert health["status"] == "ok"
        thread.join(timeout=60)
        assert not thread.is_alive()
        assert status_box["status"] == 0
        assert events.exists()


class TestExplain:
    def test_list_shows_ids_for_every_finding(self, capsys):
        assert main(
            ["explain", "--system", "pims", "--variant", "excised", "--list"]
        ) == 0
        out = capsys.readouterr().out
        assert "missing-link" in out
        assert "constraint-violation" in out

    def test_omitted_id_also_lists(self, capsys):
        assert main(["explain", "--system", "pims", "--variant", "excised"]) == 0
        assert "missing-link" in capsys.readouterr().out

    def test_explain_by_id_prefix_renders_the_chain(self, capsys):
        assert main(
            ["explain", "--system", "pims", "--variant", "excised", "--list"]
        ) == 0
        first_id = capsys.readouterr().out.split()[0]
        assert main(
            ["explain", first_id[:6], "--system", "pims",
             "--variant", "excised"]
        ) == 0
        out = capsys.readouterr().out
        assert f"finding {first_id}" in out
        assert "causal chain:" in out
        assert "conclusion:" in out

    def test_unknown_id_is_a_usage_error(self, capsys):
        assert main(
            ["explain", "zzzzzzzz", "--system", "pims",
             "--variant", "excised"]
        ) == 2
        assert "error:" in capsys.readouterr().err

    def test_report_file_source(self, tmp_path, capsys):
        assert main(
            ["explain", "--system", "pims", "--variant", "excised", "--list"]
        ) == 0
        listed = capsys.readouterr().out
        # Round-trip through a saved report: same ids, same explanations.
        from repro.cli import _build_demo
        from repro.core.evaluator import Sosae
        from repro.core.report_io import report_to_json

        demo = _build_demo("pims", "excised")
        report = Sosae(
            demo.scenarios, demo.architecture, demo.mapping,
            bindings=demo.bindings, constraints=demo.constraints,
            walkthrough_options=demo.options,
            runtime_config=demo.runtime_config,
        ).evaluate()
        report_path = tmp_path / "report.json"
        report_path.write_text(report_to_json(report))
        assert main(["explain", "--report", str(report_path), "--list"]) == 0
        assert capsys.readouterr().out == listed

    def test_both_sources_is_an_error(self, tmp_path, capsys):
        report_path = tmp_path / "r.json"
        report_path.write_text("{}")
        assert main(
            ["explain", "--report", str(report_path), "--system", "pims"]
        ) == 2

    def test_no_source_is_an_error(self, capsys):
        assert main(["explain"]) == 2
        assert "error:" in capsys.readouterr().err


class TestRuns:
    def _record_demo(self, runs_dir, variant="intact"):
        return main(
            ["demo", "pims", "--variant", variant,
             "--record", "--runs-dir", str(runs_dir)]
        )

    def test_record_list_diff_roundtrip(self, tmp_path, capsys):
        runs_dir = tmp_path / "runs"
        assert self._record_demo(runs_dir) == 0
        assert self._record_demo(runs_dir) == 0
        capsys.readouterr()
        assert main(["runs", "list", "--runs-dir", str(runs_dir)]) == 0
        listing = capsys.readouterr().out
        assert "r0001" in listing and "r0002" in listing
        assert "demo-pims-intact" in listing
        assert main(
            ["runs", "diff", "previous", "latest",
             "--runs-dir", str(runs_dir)]
        ) == 0
        diffed = capsys.readouterr().out
        assert "report digest: unchanged" in diffed
        assert "no regressions" in diffed
        assert "index.hits" in diffed

    def test_diff_flags_regression_with_nonzero_exit(self, tmp_path, capsys):
        runs_dir = tmp_path / "runs"
        assert self._record_demo(runs_dir) == 0
        # The excised variant walks into dead ends: misses and
        # missing-link counters rise, which a diff must flag.
        assert self._record_demo(runs_dir, variant="excised") == 1
        capsys.readouterr()
        assert main(
            ["runs", "diff", "r0001", "r0002", "--runs-dir", str(runs_dir)]
        ) == 1
        out = capsys.readouterr().out
        assert "<< regression" in out

    def test_diff_missing_run_is_usage_error(self, tmp_path, capsys):
        runs_dir = tmp_path / "runs"
        assert self._record_demo(runs_dir) == 0
        capsys.readouterr()
        assert main(
            ["runs", "diff", "r0001", "r0099", "--runs-dir", str(runs_dir)]
        ) == 2
        assert "error:" in capsys.readouterr().err

    def test_list_empty_registry(self, tmp_path, capsys):
        assert main(["runs", "list", "--runs-dir", str(tmp_path / "no")]) == 0
        assert "no runs recorded" in capsys.readouterr().out


class TestVerbosityFlags:
    def test_verbose_logs_recording_to_stderr(self, tmp_path, capsys):
        runs_dir = tmp_path / "runs"
        assert main(
            ["-v", "demo", "pims", "--record", "--runs-dir", str(runs_dir)]
        ) == 0
        err = capsys.readouterr().err
        assert "recorded run r0001" in err

    def test_default_is_silent_on_stderr(self, tmp_path, capsys):
        runs_dir = tmp_path / "runs"
        assert main(
            ["demo", "pims", "--record", "--runs-dir", str(runs_dir)]
        ) == 0
        assert capsys.readouterr().err == ""

    def test_quiet_still_shows_errors(self, capsys):
        assert main(["--quiet", "demo", "pims", "--variant", "insecure"]) == 2
        assert "error:" in capsys.readouterr().err

    def test_errors_go_through_the_logger(self, capsys):
        assert main(["demo", "pims", "--variant", "insecure"]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "insecure variant belongs to the crash demo" in err


class TestFollowRotation:
    """``sosae tail --follow`` across truncation and rotation."""

    def _drain(self, path, count):
        from repro.cli import _follow_lines

        return list(_follow_lines(Path(path), poll=0.01, max_lines=count))

    def test_truncation_reopens_from_the_start(self, tmp_path):
        from repro.cli import _follow_lines

        stream = tmp_path / "events.jsonl"
        stream.write_text("one\ntwo\nthree\n")
        follow = _follow_lines(stream, poll=0.01, max_lines=5)
        assert [next(follow) for _ in range(3)] == ["one", "two", "three"]
        # A writer truncates and starts over: the follower must notice
        # the size shrink and reopen instead of waiting forever.
        stream.write_text("fresh\nstart\n")
        assert [next(follow) for _ in range(2)] == ["fresh", "start"]

    def test_rotation_reopens_the_new_file(self, tmp_path):
        import os

        from repro.cli import _follow_lines

        stream = tmp_path / "events.jsonl"
        stream.write_text("old-a\nold-b\n")
        follow = _follow_lines(stream, poll=0.01, max_lines=4)
        assert [next(follow) for _ in range(2)] == ["old-a", "old-b"]
        # Log rotation: the path now names a different inode.
        replacement = tmp_path / "events.jsonl.new"
        replacement.write_text("new-a\nnew-b\n")
        os.replace(replacement, stream)
        assert [next(follow) for _ in range(2)] == ["new-a", "new-b"]

    def test_plain_append_still_streams(self, tmp_path):
        from repro.cli import _follow_lines

        stream = tmp_path / "events.jsonl"
        stream.write_text("a\n")
        follow = _follow_lines(stream, poll=0.01, max_lines=2)
        assert next(follow) == "a"
        with stream.open("a") as handle:
            handle.write("b\n")
        assert next(follow) == "b"


class TestWorkersFlag:
    def test_demo_workers_matches_single_process_output(self, capsys):
        assert main(["demo", "pims"]) == 0
        single = capsys.readouterr().out
        assert main(["demo", "pims", "--workers", "2"]) == 0
        sharded = capsys.readouterr().out
        assert sharded == single

    def test_demo_workers_rejects_dynamic(self, capsys):
        status = main(["demo", "pims", "--dynamic", "--workers", "2"])
        assert status == 2
        assert "process boundary" in capsys.readouterr().err

    def test_evaluate_workers_from_spec_files(self, tmp_path, capsys):
        scenarios = tmp_path / "s.xml"
        architecture = tmp_path / "a.xml"
        mapping = tmp_path / "m.json"
        for flag, path in (
            ("scenarioml", scenarios),
            ("xadl", architecture),
            ("mapping", mapping),
        ):
            assert main(["export", "pims", flag]) == 0
            path.write_text(capsys.readouterr().out)
        status = main(
            ["evaluate", "--scenarios", str(scenarios),
             "--architecture", str(architecture),
             "--mapping", str(mapping), "--workers", "2"]
        )
        assert status == 0
        assert "CONSISTENT" in capsys.readouterr().out


class TestRunsAttribute:
    def test_attributes_between_recorded_runs(self, tmp_path, capsys):
        runs_dir = str(tmp_path / "runs")
        for _ in range(2):
            assert main(
                ["demo", "pims", "--record", "--runs-dir", runs_dir]
            ) == 0
        capsys.readouterr()
        status = main(
            ["runs", "attribute", "r0001", "r0002", "--runs-dir", runs_dir]
        )
        assert status == 0
        out = capsys.readouterr().out
        assert "cost attribution: r0001" in out
        assert "scenario" in out and "cause" in out

    def test_top_limits_scenario_rows(self, tmp_path, capsys):
        runs_dir = str(tmp_path / "runs")
        for _ in range(2):
            assert main(
                ["demo", "pims", "--record", "--runs-dir", runs_dir]
            ) == 0
        capsys.readouterr()
        assert main(
            ["runs", "attribute", "r0001", "r0002",
             "--runs-dir", runs_dir, "--top", "3"]
        ) == 0
        out = capsys.readouterr().out
        header = next(
            index for index, line in enumerate(out.splitlines())
            if line.startswith("scenario")
        )
        scenario_rows = []
        for line in out.splitlines()[header + 1:]:
            if not line.strip():
                break
            scenario_rows.append(line)
        assert len(scenario_rows) == 3

    def test_unknown_run_is_usage_error(self, tmp_path, capsys):
        assert main(
            ["runs", "attribute", "r0001", "r0002",
             "--runs-dir", str(tmp_path / "none")]
        ) == 2
        assert "error:" in capsys.readouterr().err


class TestProfileCommands:
    def _profiled_demo(self, runs_dir, variant="intact", hz="2000"):
        return main(
            ["demo", "pims", "--variant", variant, "--profile-hz", hz,
             "--record", "--runs-dir", str(runs_dir)]
        )

    def test_profile_hz_prints_a_sampled_profile(self, capsys):
        assert main(["demo", "pims", "--profile-hz", "2000"]) == 0
        out = capsys.readouterr().out
        assert "=== sampled profile ===" in out

    def test_record_persists_the_folded_artifact(self, tmp_path, capsys):
        runs_dir = tmp_path / "runs"
        assert self._profiled_demo(runs_dir) == 0
        artifact = runs_dir / "profiles" / "r0001.folded"
        assert artifact.exists()
        assert artifact.read_text().startswith("# sosae-profile format=1 ")

    def test_show_renders_hot_frames(self, tmp_path, capsys):
        runs_dir = tmp_path / "runs"
        assert self._profiled_demo(runs_dir) == 0
        capsys.readouterr()
        assert main(
            ["profile", "show", "latest", "--runs-dir", str(runs_dir)]
        ) == 0
        out = capsys.readouterr().out
        assert "self%" in out

    def test_show_reads_a_folded_file_directly(self, tmp_path, capsys):
        folded = tmp_path / "p.folded"
        folded.write_text("main;work 10\nmain;idle 2\n")
        assert main(["profile", "show", str(folded)]) == 0
        out = capsys.readouterr().out
        assert "work" in out

    def test_diff_between_recorded_runs(self, tmp_path, capsys):
        runs_dir = tmp_path / "runs"
        assert self._profiled_demo(runs_dir) == 0
        assert self._profiled_demo(runs_dir) == 0
        capsys.readouterr()
        assert main(
            ["profile", "diff", "previous", "latest",
             "--runs-dir", str(runs_dir)]
        ) == 0
        out = capsys.readouterr().out
        assert "profile diff:" in out

    def test_diff_against_unprofiled_run_is_usage_error(
        self, tmp_path, capsys
    ):
        runs_dir = tmp_path / "runs"
        assert main(
            ["demo", "pims", "--record", "--runs-dir", str(runs_dir)]
        ) == 0
        assert self._profiled_demo(runs_dir) == 0
        capsys.readouterr()
        assert main(
            ["profile", "diff", "r0001", "r0002",
             "--runs-dir", str(runs_dir)]
        ) == 2
        assert "no recorded profile" in capsys.readouterr().err

    def test_dashboard_accepts_profile_flags(self, tmp_path, capsys):
        runs_dir = tmp_path / "runs"
        assert self._profiled_demo(runs_dir) == 0
        assert self._profiled_demo(runs_dir) == 0
        capsys.readouterr()
        out_html = tmp_path / "dash.html"
        assert main(
            ["dashboard",
             "--profile-before", "r0001", "--profile-after", "r0002",
             "--runs-dir", str(runs_dir), "--out", str(out_html)]
        ) == 0
        assert "Differential profile" in out_html.read_text()

    def test_dashboard_autodetects_profiled_runs(self, tmp_path, capsys):
        runs_dir = tmp_path / "runs"
        assert self._profiled_demo(runs_dir) == 0
        assert self._profiled_demo(runs_dir) == 0
        capsys.readouterr()
        out_html = tmp_path / "dash.html"
        assert main(
            ["dashboard", "--runs-dir", str(runs_dir),
             "--out", str(out_html)]
        ) == 0
        html = out_html.read_text()
        assert "Differential profile" in html


class TestRunsBisect:
    def _record(self, runs_dir, variant="intact"):
        return main(
            ["demo", "pims", "--variant", variant,
             "--record", "--runs-dir", str(runs_dir)]
        )

    def test_names_the_step_run_and_exits_one(self, tmp_path, capsys):
        runs_dir = tmp_path / "runs"
        for _ in range(4):
            assert self._record(runs_dir) == 0
        for _ in range(2):
            assert self._record(runs_dir, variant="excised") == 1
        capsys.readouterr()
        assert main(
            ["runs", "bisect", "findings",
             "--runs-dir", str(runs_dir), "--window", "3"]
        ) == 1
        out = capsys.readouterr().out
        assert "stepped at r0005" in out
        assert "<< step" in out

    def test_clean_history_exits_zero(self, tmp_path, capsys):
        runs_dir = tmp_path / "runs"
        for _ in range(5):
            assert self._record(runs_dir) == 0
        capsys.readouterr()
        assert main(
            ["runs", "bisect", "findings",
             "--runs-dir", str(runs_dir), "--window", "3"]
        ) == 0
        assert "no step" in capsys.readouterr().out

    def test_unknown_metric_is_usage_error(self, tmp_path, capsys):
        runs_dir = tmp_path / "runs"
        for _ in range(5):
            assert self._record(runs_dir) == 0
        capsys.readouterr()
        assert main(
            ["runs", "bisect", "not-a-metric",
             "--runs-dir", str(runs_dir), "--window", "3"]
        ) == 2
        assert "error:" in capsys.readouterr().err


class TestTailFilters:
    @pytest.fixture
    def noisy_stream(self, tmp_path, capsys) -> Path:
        """An event stream containing warnings (failed scenario +
        findings) alongside the usual info chatter."""
        stream = tmp_path / "events.jsonl"
        assert main(
            ["demo", "crash", "--variant", "insecure",
             "--events", str(stream)]
        ) == 1
        capsys.readouterr()
        return stream

    def test_severity_floor_drops_info_chatter(self, noisy_stream, capsys):
        assert main(
            ["tail", str(noisy_stream), "--no-color",
             "--severity", "warning"]
        ) == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert lines, "warnings expected from the insecure variant"
        # info-level chatter is gone; only warning-grade kinds remain
        assert not any("scenario-started" in line for line in lines)
        assert not any("stage-" in line for line in lines)
        assert any("finding-emitted" in line for line in lines)
        assert len(lines) < len(read_events(noisy_stream))

    def test_type_glob_narrows_to_matching_kinds(
        self, noisy_stream, capsys
    ):
        assert main(
            ["tail", str(noisy_stream), "--no-color",
             "--type", "scenario-*"]
        ) == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert lines
        assert all(
            "scenario-started" in line or "scenario-finished" in line
            for line in lines
        )

    def test_severity_and_type_compose_as_and(self, noisy_stream, capsys):
        assert main(
            ["tail", str(noisy_stream), "--no-color",
             "--severity", "warning", "--type", "scenario-finished"]
        ) == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert lines
        # only the *failed* scenario-finished events clear the floor
        assert all("scenario-finished" in line for line in lines)
        assert all("FAIL" in line for line in lines)

    def test_filters_apply_in_follow_mode(self, noisy_stream, capsys):
        status = main(
            ["tail", str(noisy_stream), "--follow", "--no-color",
             "--poll", "0.01", "--max-events", "2",
             "--type", "scenario-finished"]
        )
        assert status == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert len(lines) == 2
        assert all("scenario-finished" in line for line in lines)

    def test_unfiltered_output_is_unchanged(self, noisy_stream, capsys):
        assert main(["tail", str(noisy_stream), "--no-color"]) == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert len(lines) == len(read_events(noisy_stream))


class TestJobsCli:
    @pytest.fixture
    def spec_files(self, tmp_path, capsys):
        """Spec files exported through the CLI itself."""
        paths = {}
        for key, argv in (
            ("scenarios", ["export", "pims", "scenarioml"]),
            ("architecture", ["export", "pims", "xadl"]),
            ("mapping", ["export", "pims", "mapping"]),
        ):
            assert main(argv) == 0
            path = tmp_path / f"{key}.spec"
            path.write_text(capsys.readouterr().out)
            paths[key] = path
        return paths

    @pytest.fixture
    def job_server(self, tmp_path):
        from repro.obs import RunRegistry, ServeDaemon
        from repro.systems.pims import build_pims
        from repro.core.evaluator import Sosae

        pims = build_pims()
        daemon = ServeDaemon(
            lambda: Sosae(pims.scenarios, pims.architecture, pims.mapping),
            registry=RunRegistry(tmp_path / "server-runs"),
            jobs=True,
            tenant_quota=2,
            job_executors=1,
        )
        host, port = daemon.start_http()
        yield daemon, f"http://{host}:{port}"
        daemon.shutdown()

    def test_submit_wait_round_trip(
        self, job_server, spec_files, tmp_path, capsys
    ):
        _, base = job_server
        report_path = tmp_path / "report.json"
        status = main(
            ["jobs", "submit", "--url", base, "--tenant", "acme",
             "--label", "cli-test", "--actor", "tester",
             "--scenarios", str(spec_files["scenarios"]),
             "--architecture", str(spec_files["architecture"]),
             "--mapping", str(spec_files["mapping"]),
             "--wait", "--report", str(report_path)]
        )
        out = capsys.readouterr().out
        assert status == 0, out
        assert "submitted j0001" in out
        assert "done" in out
        report = json.loads(report_path.read_text())
        assert report["architecture"]

    def test_status_and_list_over_http(
        self, job_server, spec_files, capsys
    ):
        daemon, base = job_server
        assert main(
            ["jobs", "submit", "--url", base, "--tenant", "beta",
             "--scenarios", str(spec_files["scenarios"]),
             "--architecture", str(spec_files["architecture"]),
             "--mapping", str(spec_files["mapping"]), "--wait"]
        ) == 0
        capsys.readouterr()
        assert main(["jobs", "status", "j0001", "--url", base]) == 0
        body = json.loads(capsys.readouterr().out)
        assert body["state"] == "done"
        assert main(["jobs", "list", "--url", base, "--tenant", "beta"]) == 0
        out = capsys.readouterr().out
        assert "j0001" in out and "beta" in out

    def test_list_offline_reads_the_registry(self, tmp_path, capsys):
        from repro.obs import JobRecord, JobRegistry

        registry = JobRegistry(tmp_path)
        registry.append(
            JobRecord(job_id="j0001", tenant="acme", state="done",
                      run_id="r0001")
        )
        registry.append(
            JobRecord(job_id="j0002", tenant="beta", state="queued")
        )
        assert main(["jobs", "list", "--jobs-dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "j0001" in out and "j0002" in out
        assert main(
            ["jobs", "list", "--jobs-dir", str(tmp_path),
             "--tenant", "acme"]
        ) == 0
        out = capsys.readouterr().out
        assert "j0001" in out and "j0002" not in out

    def test_runs_list_scopes_by_tenant(self, tmp_path, capsys):
        runs_dir = tmp_path / "runs"
        assert main(
            ["demo", "pims", "--record", "--runs-dir", str(runs_dir)]
        ) == 0
        capsys.readouterr()
        assert main(
            ["runs", "list", "--runs-dir", str(runs_dir),
             "--tenant", "ghost"]
        ) == 0
        assert "no runs recorded" in capsys.readouterr().out

    def test_dashboard_tenant_view(self, tmp_path, capsys):
        from repro.obs import JobRecord, JobRegistry

        registry = JobRegistry(tmp_path / "jobs")
        registry.append(
            JobRecord(job_id="j0001", tenant="acme", state="done",
                      submitted_at=1.0, finished_at=2.0,
                      wall_seconds=0.5)
        )
        out_path = tmp_path / "tenant.html"
        status = main(
            ["dashboard", "--out", str(out_path),
             "--runs-dir", str(tmp_path / "no-runs"),
             "--jobs-dir", str(tmp_path / "jobs"),
             "--tenant", "acme"]
        )
        assert status == 0
        html = out_path.read_text()
        assert "Tenant jobs" in html
        assert "j0001" in html
        assert "tenant acme" in html
