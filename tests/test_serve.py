"""Tests for the continuous-evaluation daemon behind ``sosae serve``."""

from __future__ import annotations

import http.client
import json
import os
import re
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.core.evaluator import Sosae
from repro.errors import ReproError
from repro.obs import (
    AlertRule,
    Profile,
    RunRegistry,
    RunRecorded,
    ServeDaemon,
    SpecWatcher,
    read_sse_events,
)


class TestSpecWatcher:
    def test_first_poll_reports_a_change(self, tmp_path):
        spec = tmp_path / "a.xml"
        spec.write_text("v1")
        watcher = SpecWatcher([spec])
        assert watcher.changed() is True
        assert watcher.changed() is False

    def test_rewrites_are_detected(self, tmp_path):
        spec = tmp_path / "a.xml"
        spec.write_text("v1")
        watcher = SpecWatcher([spec])
        watcher.changed()
        spec.write_text("v2 is longer")
        assert watcher.changed() is True
        assert watcher.changed() is False

    def test_missing_files_fingerprint_as_absent(self, tmp_path):
        spec = tmp_path / "gone.xml"
        watcher = SpecWatcher([spec])
        watcher.changed()
        assert watcher.changed() is False
        spec.write_text("now it exists")
        assert watcher.changed() is True

    def test_delete_counts_as_a_change(self, tmp_path):
        spec = tmp_path / "a.xml"
        spec.write_text("v1")
        watcher = SpecWatcher([spec])
        watcher.changed()
        spec.unlink()
        assert watcher.changed() is True

    def test_changed_paths_names_the_edited_files(self, tmp_path):
        first = tmp_path / "a.xml"
        second = tmp_path / "b.xml"
        first.write_text("v1")
        second.write_text("v1")
        watcher = SpecWatcher([first, second])
        assert set(watcher.changed_paths()) == {first, second}
        assert watcher.changed_paths() == ()
        second.write_text("v2 is longer")
        assert watcher.changed_paths() == (second,)


@pytest.fixture
def build(small_scenarios, chain_architecture, chain_mapping):
    return lambda: Sosae(small_scenarios, chain_architecture, chain_mapping)


@pytest.fixture
def failing_build(small_scenarios, chain_architecture, chain_mapping):
    def _build():
        raise ReproError("spec went sideways")

    return _build


class TestRunOnce:
    def test_successful_run_updates_state(self, build):
        daemon = ServeDaemon(build)
        assert daemon.ready() is False
        outcome = daemon.run_once()
        assert outcome.ok is True
        assert outcome.consistent is True
        assert outcome.alerting is False
        assert daemon.ready() is True
        assert daemon.health()["runs_completed"] == 1
        assert json.loads(daemon.report_json())["findings"] == []

    def test_metrics_accumulate_across_runs(self, build):
        daemon = ServeDaemon(build)
        daemon.run_once()
        daemon.run_once()
        text = daemon.render_metrics()
        assert "sosae_evaluate_runs_total 2" in text
        assert "sosae_serve_runs_total 2" in text
        assert 'sosae_evaluate_wall_seconds{quantile="0.5"}' in text
        assert 'sosae_evaluate_wall_seconds{quantile="0.95"}' in text
        assert 'sosae_evaluate_wall_seconds{quantile="0.99"}' in text
        assert (
            'sosae_serve_stage_wall_seconds{stage="evaluate.walkthrough"}'
            in text
        )

    def test_build_failure_is_survived_and_reported(self, failing_build):
        daemon = ServeDaemon(failing_build)
        outcome = daemon.run_once()
        assert outcome.ok is False
        assert "sideways" in outcome.error
        health = daemon.health()
        assert health["status"] == "ok"
        assert health["runs_failed"] == 1
        assert "sideways" in health["last_error"]
        assert daemon.ready() is False
        assert "sosae_serve_run_failures_total 1" in daemon.render_metrics()

    def test_recovery_clears_the_last_error(
        self, build, failing_build
    ):
        builders = [failing_build, build]

        def flaky():
            return builders.pop(0)()

        daemon = ServeDaemon(flaky)
        daemon.run_once()
        outcome = daemon.run_once(rebuild=True)
        assert outcome.ok is True
        assert daemon.health()["last_error"] is None

    def test_findings_rule_fires_and_lands_on_the_bus(
        self, small_scenarios, chain_architecture, chain_mapping
    ):
        chain_architecture.excise_links_between("logic", "logic-store")
        daemon = ServeDaemon(
            lambda: Sosae(
                small_scenarios, chain_architecture, chain_mapping
            ),
            rules=[
                AlertRule(
                    name="no-findings",
                    metric="report.findings",
                    threshold=0,
                    severity="critical",
                )
            ],
        )
        outcome = daemon.run_once()
        assert outcome.ok is True
        assert outcome.alerting is True
        assert outcome.fired[0].rule == "no-findings"
        assert [e.kind for e in daemon.bus.events()].count("alert-fired") == 1
        alerts = json.loads(daemon.alerts_json())["alerts"]
        assert alerts[0]["active"] is True
        assert (
            'sosae_serve_alerts_active{severity="critical"} 1'
            in daemon.render_metrics()
        )

    def test_records_runs_when_given_a_registry(self, build, tmp_path):
        registry = RunRegistry(tmp_path / "runs")
        daemon = ServeDaemon(build, registry=registry, label="loop")
        outcome = daemon.run_once()
        assert outcome.run_id == "r0001"
        (record,) = registry.load()
        assert record.label == "loop"
        assert any(
            isinstance(event, RunRecorded) for event in daemon.bus.events()
        )

    def test_invalid_interval_is_rejected(self, build):
        with pytest.raises(ReproError, match="interval"):
            ServeDaemon(build, interval=0.0)


class TestServeLoop:
    def test_max_runs_bounds_the_loop(self, build):
        daemon = ServeDaemon(build, interval=0.001)
        daemon.serve_loop(poll=0.001, max_runs=3)
        assert daemon.health()["runs_completed"] == 3

    def test_spec_change_triggers_a_rebuild(self, tmp_path, build):
        spec = tmp_path / "watched.xml"
        spec.write_text("v1")
        builds = []

        def counting_build():
            builds.append(spec.read_text())
            return build()

        daemon = ServeDaemon(counting_build, watch_paths=[spec])
        daemon.serve_loop(poll=0.001, max_runs=1)
        spec.write_text("v2")
        daemon.serve_loop(poll=0.001, max_runs=1)
        assert builds == ["v1", "v2"]

    def test_no_interval_no_watch_runs_once(self, build):
        daemon = ServeDaemon(build)
        daemon.stop()  # returns immediately after the stop flag check
        daemon.serve_loop(poll=0.001)
        assert daemon.health()["runs_completed"] == 0


class TestIncrementalServe:
    @pytest.fixture
    def versioned_build(self, small_scenarios, chain_architecture, chain_mapping):
        """A builder over mutable architecture state, so a 'spec edit'
        is simulated by swapping the architecture between rebuilds."""
        state = {"architecture": chain_architecture}

        def build():
            architecture = state["architecture"]
            return Sosae(
                small_scenarios,
                architecture,
                chain_mapping.rebind(architecture),
            )

        return state, build

    def test_architecture_edit_takes_the_incremental_path(
        self, tmp_path, versioned_build, chain_architecture
    ):
        arch_path = tmp_path / "architecture.xml"
        state, build = versioned_build
        daemon = ServeDaemon(build, incremental_safe_paths=(arch_path,))
        first = daemon.run_once()  # cold build: neither hit nor miss
        state["architecture"] = chain_architecture.clone("v2")
        second = daemon.run_once(rebuild=True, changed_paths=(arch_path,))
        assert first.ok and second.ok
        assert second.consistent == first.consistent
        health = daemon.health()
        assert health["incremental_hits"] == 1
        assert health["incremental_misses"] == 0
        text = daemon.render_metrics()
        assert "sosae_serve_incremental_hit_total 1" in text
        assert "sosae_serve_incremental_miss_total 0" in text
        assert (
            'sosae_serve_stage_wall_seconds{stage="evaluate.incremental"}'
            in text
        )

    def test_unsafe_path_edit_falls_back_to_full(
        self, tmp_path, versioned_build, chain_architecture
    ):
        arch_path = tmp_path / "architecture.xml"
        scenario_path = tmp_path / "scenarios.xml"
        state, build = versioned_build
        daemon = ServeDaemon(build, incremental_safe_paths=(arch_path,))
        daemon.run_once()
        state["architecture"] = chain_architecture.clone("v2")
        outcome = daemon.run_once(
            rebuild=True, changed_paths=(scenario_path,)
        )
        assert outcome.ok
        health = daemon.health()
        assert health["incremental_hits"] == 0
        assert health["incremental_misses"] == 1

    def test_full_eval_mode_never_goes_incremental(
        self, tmp_path, versioned_build, chain_architecture
    ):
        arch_path = tmp_path / "architecture.xml"
        state, build = versioned_build
        daemon = ServeDaemon(
            build, incremental=False, incremental_safe_paths=(arch_path,)
        )
        daemon.run_once()
        state["architecture"] = chain_architecture.clone("v2")
        daemon.run_once(rebuild=True, changed_paths=(arch_path,))
        health = daemon.health()
        assert health["incremental_hits"] == 0
        assert health["incremental_misses"] == 0

    def test_watched_edit_routes_through_the_loop(
        self, tmp_path, versioned_build, chain_architecture
    ):
        arch_path = tmp_path / "architecture.xml"
        arch_path.write_text("v1")
        state, build = versioned_build
        daemon = ServeDaemon(
            build,
            watch_paths=(arch_path,),
            incremental_safe_paths=(arch_path,),
        )
        daemon.serve_loop(poll=0.001, max_runs=1)
        state["architecture"] = chain_architecture.clone("v2")
        arch_path.write_text("v2 with a longer body")
        daemon.serve_loop(poll=0.001, max_runs=1)
        assert daemon.health()["incremental_hits"] == 1


@pytest.fixture
def served(build):
    daemon = ServeDaemon(
        build,
        rules=[AlertRule(name="r", metric="report.findings", threshold=0)],
    )
    daemon.run_once()
    host, port = daemon.start_http()
    yield daemon, f"http://{host}:{port}"
    daemon.shutdown()


def _get(url):
    with urllib.request.urlopen(url, timeout=10) as response:
        return response.status, response.read().decode("utf-8")


class TestHttpEndpoints:
    def test_metrics_endpoint(self, served):
        _, base = served
        status, body = _get(f"{base}/metrics")
        assert status == 200
        assert "sosae_serve_up 1" in body
        assert 'quantile="0.95"' in body

    def test_healthz_and_readyz(self, served):
        _, base = served
        status, body = _get(f"{base}/healthz")
        assert status == 200 and json.loads(body)["status"] == "ok"
        status, body = _get(f"{base}/readyz")
        assert status == 200 and json.loads(body)["ready"] is True

    def test_readyz_is_503_before_the_first_run(self, build):
        daemon = ServeDaemon(build)
        host, port = daemon.start_http()
        try:
            with pytest.raises(urllib.error.HTTPError) as caught:
                _get(f"http://{host}:{port}/readyz")
            assert caught.value.code == 503
            with pytest.raises(urllib.error.HTTPError) as caught:
                _get(f"http://{host}:{port}/report")
            assert caught.value.code == 503
        finally:
            daemon.shutdown()

    def test_report_and_alerts(self, served):
        _, base = served
        status, body = _get(f"{base}/report")
        assert status == 200 and json.loads(body)["findings"] == []
        status, body = _get(f"{base}/alerts")
        assert json.loads(body)["alerts"][0]["rule"] == "r"

    def test_root_lists_endpoints(self, served):
        _, base = served
        status, body = _get(f"{base}/")
        assert "/metrics" in json.loads(body)["endpoints"]

    def test_unknown_route_is_404(self, served):
        _, base = served
        with pytest.raises(urllib.error.HTTPError) as caught:
            _get(f"{base}/nope")
        assert caught.value.code == 404

    def test_sse_replay_returns_buffered_events(self, served):
        _, base = served
        events = read_sse_events(f"{base}/events?replay=2048", limit=4)
        kinds = [event.kind for event in events]
        assert kinds[0] == "evaluation-started"
        assert len(events) == 4

    def test_sse_streams_live_events(self, served):
        daemon, base = served
        import threading

        collected = {}

        def consume():
            collected["events"] = read_sse_events(
                f"{base}/events", limit=1, duration=10.0
            )

        thread = threading.Thread(target=consume)
        thread.start()
        time.sleep(0.3)  # let the subscriber attach
        daemon.run_once()
        thread.join(timeout=15)
        assert not thread.is_alive()
        assert len(collected["events"]) == 1

    def test_double_start_is_an_error(self, served):
        daemon, _ = served
        with pytest.raises(ReproError, match="already running"):
            daemon.start_http()


class TestReadSseEvents:
    def test_rejects_non_http_urls(self):
        with pytest.raises(ReproError, match="http"):
            read_sse_events("file:///etc/passwd")


class TestShardedServe:
    def test_workers_run_full_evaluations_through_the_pool(self, build):
        daemon = ServeDaemon(build, workers=2)
        outcome = daemon.run_once()
        assert outcome.ok is True
        text = daemon.render_metrics()
        assert "sosae_serve_shard_workers 2" in text
        assert 'sosae_serve_shard_wall_seconds{shard="1"}' in text
        assert 'sosae_serve_shard_scenarios{shard="1"}' in text

    def test_single_worker_exposes_no_shard_gauges(self, build):
        daemon = ServeDaemon(build)
        daemon.run_once()
        assert "serve_shard" not in daemon.render_metrics()

    def test_workers_must_be_positive(self, build):
        with pytest.raises(ReproError, match="workers"):
            ServeDaemon(build, workers=0)

    def test_sharded_report_matches_single_process(self, build):
        single = ServeDaemon(build)
        sharded = ServeDaemon(build, workers=2)
        single.run_once()
        sharded.run_once()
        assert json.loads(sharded.report_json()) == json.loads(
            single.report_json()
        )


class TestContinuousProfiling:
    def test_rejects_bad_profiling_parameters(self, build):
        with pytest.raises(ReproError, match="hz"):
            ServeDaemon(build, profile_hz=0)
        with pytest.raises(ReproError, match="history"):
            ServeDaemon(build, profile_hz=97.0, profile_history=0)

    def test_profile_endpoint_is_404_when_profiling_is_off(self, served):
        _, base = served
        with pytest.raises(urllib.error.HTTPError) as caught:
            _get(f"{base}/profile")
        assert caught.value.code == 404
        assert "profile-hz" in caught.value.read().decode("utf-8")

    def test_profile_endpoint_is_503_before_the_first_run(self, build):
        daemon = ServeDaemon(build, profile_hz=500.0)
        host, port = daemon.start_http()
        try:
            with pytest.raises(urllib.error.HTTPError) as caught:
                _get(f"http://{host}:{port}/profile")
            assert caught.value.code == 503
        finally:
            daemon.shutdown()

    def test_profiled_run_serves_folded_text(self, build):
        daemon = ServeDaemon(build, profile_hz=2000.0)
        daemon.run_once()
        host, port = daemon.start_http()
        try:
            status, body = _get(f"http://{host}:{port}/profile")
            assert status == 200
            assert body.startswith("# sosae-profile format=1 ")
            Profile.from_folded(body)  # parses back
            status, _ = _get(f"http://{host}:{port}/profile?last=1")
            assert status == 200
        finally:
            daemon.shutdown()

    def test_profile_ring_is_bounded_and_last_selects_a_suffix(
        self, build
    ):
        daemon = ServeDaemon(build, profile_hz=2000.0, profile_history=2)
        for _ in range(3):
            daemon.run_once()
        merged_all = Profile.from_folded(daemon.profile_folded())
        merged_last = Profile.from_folded(daemon.profile_folded(last=1))
        assert merged_last.samples <= merged_all.samples

    def test_unprofiled_daemon_reports_no_folded_text(self, build):
        daemon = ServeDaemon(build)
        daemon.run_once()
        assert daemon.profile_folded() is None


class TestInsufficientHistorySurfacing:
    def _anomaly_rule(self, window=6):
        return AlertRule(
            name="wall-step", metric="wall_seconds", source="runs",
            mode="anomaly", window=window, threshold=3.5,
        )

    def test_outcome_names_the_underfilled_rules(self, build, tmp_path):
        daemon = ServeDaemon(
            build,
            registry=RunRegistry(tmp_path / "runs"),
            rules=[self._anomaly_rule(window=6)],
        )
        outcome = daemon.run_once()
        (line,) = outcome.insufficient
        assert line.startswith("wall-step:")
        assert "needs 6" in line

    def test_alerts_endpoint_carries_the_status(self, build, tmp_path):
        daemon = ServeDaemon(
            build,
            registry=RunRegistry(tmp_path / "runs"),
            rules=[self._anomaly_rule(window=6)],
        )
        daemon.run_once()
        host, port = daemon.start_http()
        try:
            status, body = _get(f"http://{host}:{port}/alerts")
            assert status == 200
            (state,) = json.loads(body)["alerts"]
            assert state["status"] == "insufficient-history"
            assert "needs 6" in state["status_detail"]
        finally:
            daemon.shutdown()

    def test_filled_window_clears_the_outcome_field(self, build, tmp_path):
        daemon = ServeDaemon(
            build,
            registry=RunRegistry(tmp_path / "runs"),
            rules=[self._anomaly_rule(window=4)],
        )
        outcomes = [daemon.run_once() for _ in range(5)]
        assert outcomes[0].insufficient
        assert outcomes[-1].insufficient == ()


class TestSpecWatcherFingerprint:
    def test_rewrite_with_identical_mtime_is_still_detected(self, tmp_path):
        """mtime alone is too coarse: force the rewrite to land on the
        exact same timestamp and rely on the size half of the
        (st_mtime_ns, st_size) fingerprint."""
        spec = tmp_path / "a.xml"
        spec.write_text("v1")
        stamp = spec.stat()
        watcher = SpecWatcher([spec])
        watcher.changed()
        spec.write_text("v2 is longer than v1")
        os.utime(spec, ns=(stamp.st_atime_ns, stamp.st_mtime_ns))
        assert spec.stat().st_mtime_ns == stamp.st_mtime_ns
        assert watcher.changed() is True
        assert watcher.changed() is False

    def test_touch_without_content_change_reports_a_change(self, tmp_path):
        # a bumped mtime alone flips the fingerprint (conservative:
        # better a redundant rebuild than a missed one)
        spec = tmp_path / "a.xml"
        spec.write_text("v1")
        watcher = SpecWatcher([spec])
        watcher.changed()
        stamp = spec.stat()
        os.utime(
            spec,
            ns=(stamp.st_atime_ns, stamp.st_mtime_ns + 1_000_000),
        )
        assert watcher.changed() is True


class TestSseSubscriberLeak:
    def test_disconnected_client_is_unsubscribed(self, build):
        """A regression guard for SSE subscriber leaks: after a client
        drops, the next keep-alive write hits the broken pipe and the
        handler's finally-block must return the bus to its baseline
        subscriber count."""
        daemon = ServeDaemon(build, sse_keepalive=0.1)
        daemon.run_once()
        host, port = daemon.start_http()
        try:
            baseline = daemon.bus.subscriber_count
            connection = http.client.HTTPConnection(host, port, timeout=10)
            connection.request("GET", "/events?replay=1")
            response = connection.getresponse()
            assert response.status == 200
            # read one frame so we know the stream is live
            assert b"data:" in response.fp.readline() + response.fp.readline()
            deadline = time.monotonic() + 5.0
            while daemon.bus.subscriber_count <= baseline:
                if time.monotonic() > deadline:
                    pytest.fail("SSE handler never subscribed")
                time.sleep(0.01)
            # the response object holds the socket's file alive; both
            # must go for the server to see the disconnect
            response.close()
            connection.close()
            deadline = time.monotonic() + 5.0
            while daemon.bus.subscriber_count != baseline:
                if time.monotonic() > deadline:
                    pytest.fail(
                        "subscriber leaked after client disconnect: "
                        f"{daemon.bus.subscriber_count} != {baseline}"
                    )
                time.sleep(0.05)
        finally:
            daemon.shutdown()


class TestScrapeUnderLoad:
    def test_metrics_and_healthz_survive_concurrent_runs(self, build, tmp_path):
        """Hammer /metrics and /healthz from threads while the serve
        loop re-evaluates: every scrape answers 200 and the run counter
        never goes backwards."""
        daemon = ServeDaemon(build, registry=RunRegistry(tmp_path / "runs"))
        daemon.run_once()
        host, port = daemon.start_http()
        base = f"http://{host}:{port}"
        failures = []
        # one list per scraping thread: monotonicity is a per-observer
        # property — two threads' reads interleave arbitrarily
        per_thread = [[], [], [], []]
        stop = threading.Event()

        def hammer(path, counters):
            pattern = re.compile(r"sosae_serve_runs_total (\d+)")
            while not stop.is_set():
                try:
                    status, body = _get(f"{base}{path}")
                except Exception as error:  # noqa: BLE001
                    failures.append(f"{path}: {error!r}")
                    return
                if status != 200:
                    failures.append(f"{path}: HTTP {status}")
                    return
                if path == "/metrics":
                    match = pattern.search(body)
                    if not match:
                        failures.append("/metrics: runs counter missing")
                        return
                    counters.append(int(match.group(1)))

        threads = [
            threading.Thread(target=hammer, args=(path, counters))
            for path, counters in zip(
                ("/metrics", "/metrics", "/healthz", "/healthz"),
                per_thread,
            )
        ]
        try:
            for thread in threads:
                thread.start()
            for _ in range(8):
                daemon.run_once()
        finally:
            stop.set()
            for thread in threads:
                thread.join(timeout=10)
            daemon.shutdown()
        assert not failures, failures
        metric_reads = per_thread[0] + per_thread[1]
        assert metric_reads, "scrape threads never read the run counter"
        for counters in per_thread[:2]:
            assert counters == sorted(counters), (
                "run counter went backwards within one scraper"
            )
        assert max(metric_reads) >= 1
