"""Unit tests for negative-scenario evaluation."""

from __future__ import annotations

import pytest

from repro.core.consistency import InconsistencyKind
from repro.core.negative import evaluate_negative_scenario
from repro.core.walkthrough import WalkthroughEngine
from repro.errors import EvaluationError
from repro.scenarioml.events import TypedEvent
from repro.scenarioml.scenario import Scenario, ScenarioKind, ScenarioSet


def negative(*events, name="bad") -> Scenario:
    return Scenario(name=name, events=tuple(events), kind=ScenarioKind.NEGATIVE)


def typed(type_name, **arguments) -> TypedEvent:
    return TypedEvent(type_name=type_name, arguments=arguments)


class TestNegativeEvaluation:
    def test_rejects_positive_scenario(
        self, small_scenarios, chain_architecture, chain_mapping
    ):
        engine = WalkthroughEngine(chain_architecture, chain_mapping)
        with pytest.raises(EvaluationError):
            evaluate_negative_scenario(
                engine, small_scenarios.get("make-widget"), small_scenarios
            )

    def test_admitted_behavior_is_flagged(
        self, small_ontology, chain_architecture, chain_mapping
    ):
        scenarios = ScenarioSet(small_ontology)
        scenario = scenarios.add(
            negative(typed("notify", who="alice"), typed("create", subject="w"))
        )
        engine = WalkthroughEngine(chain_architecture, chain_mapping)
        verdict = evaluate_negative_scenario(engine, scenario, scenarios)
        assert not verdict.passed
        assert any(
            f.kind is InconsistencyKind.NEGATIVE_SCENARIO_SUCCEEDED
            for f in verdict.all_inconsistencies()
        )

    def test_blocked_behavior_passes(
        self, small_ontology, chain_architecture, chain_mapping
    ):
        chain_architecture.excise_links_between("ui", "ui-logic")
        scenarios = ScenarioSet(small_ontology)
        scenario = scenarios.add(
            negative(typed("notify", who="alice"), typed("create", subject="w"))
        )
        engine = WalkthroughEngine(chain_architecture, chain_mapping)
        verdict = evaluate_negative_scenario(engine, scenario, scenarios)
        assert verdict.passed
        assert not any(
            f.kind is InconsistencyKind.NEGATIVE_SCENARIO_SUCCEEDED
            for f in verdict.all_inconsistencies()
        )

    def test_unrealizable_event_counts_as_blocked(
        self, small_ontology, chain_architecture, chain_mapping
    ):
        chain_mapping.unmap_event("destroy")
        scenarios = ScenarioSet(small_ontology)
        scenario = scenarios.add(negative(typed("destroy", subject="w")))
        engine = WalkthroughEngine(chain_architecture, chain_mapping)
        verdict = evaluate_negative_scenario(engine, scenario, scenarios)
        assert verdict.passed
        assert verdict.blocked

    def test_verdict_is_marked_negative(
        self, small_ontology, chain_architecture, chain_mapping
    ):
        scenarios = ScenarioSet(small_ontology)
        scenario = scenarios.add(negative(typed("create", subject="w")))
        engine = WalkthroughEngine(chain_architecture, chain_mapping)
        verdict = evaluate_negative_scenario(engine, scenario, scenarios)
        assert verdict.negative
        assert "(negative)" in verdict.render()
