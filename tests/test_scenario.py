"""Unit tests for scenarios, scenario sets, and trace expansion."""

from __future__ import annotations

import pytest

from repro.errors import EpisodeCycleError, ScenarioError, UnknownDefinitionError
from repro.scenarioml.events import (
    Alternation,
    Episode,
    Iteration,
    Optional_,
    SimpleEvent,
    TypedEvent,
    parallel,
    sequence,
)
from repro.scenarioml.ontology import Ontology
from repro.scenarioml.scenario import (
    QualityAttribute,
    Scenario,
    ScenarioKind,
    ScenarioSet,
    TraceOptions,
)


def simple(name: str = "s", *texts: str) -> Scenario:
    events = tuple(SimpleEvent(text=t) for t in (texts or ("one",)))
    return Scenario(name=name, events=events)


class TestScenario:
    def test_requires_name(self):
        with pytest.raises(ScenarioError):
            Scenario(name="", events=(SimpleEvent(text="x"),))

    def test_requires_events(self):
        with pytest.raises(ScenarioError):
            Scenario(name="empty", events=())

    def test_kind_flags(self):
        positive = simple()
        negative = Scenario(
            name="n", events=(SimpleEvent(text="x"),),
            kind=ScenarioKind.NEGATIVE,
        )
        assert not positive.is_negative
        assert negative.is_negative

    def test_functional_flag(self):
        functional = simple()
        quality = Scenario(
            name="q",
            events=(SimpleEvent(text="x"),),
            quality_attributes=(QualityAttribute.AVAILABILITY,),
        )
        assert functional.is_functional
        assert not quality.is_functional

    def test_typed_events_traverses_nested_structure(self):
        scenario = Scenario(
            name="nested",
            events=(
                sequence(
                    TypedEvent(type_name="a"),
                    Alternation(
                        branches=(
                            TypedEvent(type_name="b"),
                            SimpleEvent(text="c"),
                        )
                    ),
                ),
            ),
        )
        assert [e.type_name for e in scenario.typed_events()] == ["a", "b"]

    def test_event_type_names_deduplicate_in_order(self):
        scenario = Scenario(
            name="dups",
            events=(
                TypedEvent(type_name="b"),
                TypedEvent(type_name="a"),
                TypedEvent(type_name="b"),
            ),
        )
        assert scenario.event_type_names() == ("b", "a")

    def test_episodes_found(self):
        scenario = Scenario(
            name="with-episode",
            events=(Episode(scenario_name="other"),),
        )
        assert [e.scenario_name for e in scenario.episodes()] == ["other"]

    def test_render_numbers_steps(self, small_ontology: Ontology):
        scenario = Scenario(
            name="r",
            title="Rendered",
            events=(
                SimpleEvent(text="first"),
                SimpleEvent(text="second", label="2.a"),
            ),
        )
        text = scenario.render(small_ontology)
        assert "Scenario: Rendered" in text
        assert "(1) first" in text
        assert "(2.a) second" in text

    def test_render_marks_negative(self):
        scenario = Scenario(
            name="n", events=(SimpleEvent(text="x"),),
            kind=ScenarioKind.NEGATIVE,
        )
        assert "[negative]" in scenario.render()


class TestScenarioSet:
    def test_add_and_get(self, small_ontology: Ontology):
        scenarios = ScenarioSet(small_ontology)
        scenario = scenarios.add(simple("one"))
        assert scenarios.get("one") is scenario
        assert "one" in scenarios
        assert len(scenarios) == 1

    def test_duplicate_names_rejected(self, small_ontology: Ontology):
        scenarios = ScenarioSet(small_ontology)
        scenarios.add(simple("one"))
        with pytest.raises(ScenarioError):
            scenarios.add(simple("one"))

    def test_get_unknown_raises(self, small_ontology: Ontology):
        scenarios = ScenarioSet(small_ontology)
        with pytest.raises(UnknownDefinitionError):
            scenarios.get("ghost")

    def test_extend(self, small_ontology: Ontology):
        scenarios = ScenarioSet(small_ontology)
        scenarios.extend([simple("a"), simple("b")])
        assert [s.name for s in scenarios] == ["a", "b"]

    def test_quality_filters(self, small_ontology: Ontology):
        scenarios = ScenarioSet(small_ontology)
        scenarios.add(simple("f"))
        scenarios.add(
            Scenario(
                name="q",
                events=(SimpleEvent(text="x"),),
                quality_attributes=(QualityAttribute.RELIABILITY,),
            )
        )
        assert [s.name for s in scenarios.functional_scenarios()] == ["f"]
        assert [s.name for s in scenarios.quality_scenarios()] == ["q"]
        assert scenarios.quality_scenarios(QualityAttribute.RELIABILITY)
        assert not scenarios.quality_scenarios(QualityAttribute.SECURITY)

    def test_event_type_names_across_set(self, small_scenarios: ScenarioSet):
        assert small_scenarios.event_type_names() == (
            "create",
            "notify",
            "destroy",
        )


class TestTraceExpansion:
    def make_set(self, ontology: Ontology, *scenarios: Scenario) -> ScenarioSet:
        scenario_set = ScenarioSet(ontology)
        scenario_set.extend(scenarios)
        return scenario_set

    def test_flat_scenario_has_one_trace(self, small_ontology: Ontology):
        scenario_set = self.make_set(
            small_ontology, simple("flat", "a", "b", "c")
        )
        traces = scenario_set.traces("flat")
        assert len(traces) == 1
        assert [e.render() for e in traces[0]] == ["a", "b", "c"]

    def test_alternation_multiplies_traces(self, small_ontology: Ontology):
        scenario = Scenario(
            name="alt",
            events=(
                Alternation(
                    branches=(SimpleEvent(text="a"), SimpleEvent(text="b"))
                ),
                SimpleEvent(text="tail"),
            ),
        )
        traces = self.make_set(small_ontology, scenario).traces("alt")
        rendered = {tuple(e.render() for e in t) for t in traces}
        assert rendered == {("a", "tail"), ("b", "tail")}

    def test_optional_yields_present_and_absent(
        self, small_ontology: Ontology
    ):
        scenario = Scenario(
            name="opt",
            events=(Optional_(body=SimpleEvent(text="x")),),
        )
        traces = self.make_set(small_ontology, scenario).traces("opt")
        rendered = {tuple(e.render() for e in t) for t in traces}
        assert rendered == {(), ("x",)}

    def test_bounded_iteration_unrolls_within_bounds(
        self, small_ontology: Ontology
    ):
        scenario = Scenario(
            name="it",
            events=(
                Iteration(body=SimpleEvent(text="x"), min_count=1, max_count=3),
            ),
        )
        traces = self.make_set(small_ontology, scenario).traces("it")
        lengths = sorted(len(t) for t in traces)
        assert lengths == [1, 2, 3]

    def test_unbounded_iteration_uses_extra_budget(
        self, small_ontology: Ontology
    ):
        scenario = Scenario(
            name="it",
            events=(Iteration(body=SimpleEvent(text="x"), min_count=2),),
        )
        traces = self.make_set(small_ontology, scenario).traces(
            "it", TraceOptions(iteration_extra=2)
        )
        lengths = sorted(len(t) for t in traces)
        assert lengths == [2, 3, 4]

    def test_zero_min_iteration_includes_empty_trace(
        self, small_ontology: Ontology
    ):
        scenario = Scenario(
            name="it0",
            events=(
                Iteration(body=SimpleEvent(text="x"), min_count=0, max_count=1),
            ),
        )
        traces = self.make_set(small_ontology, scenario).traces("it0")
        assert {len(t) for t in traces} == {0, 1}

    def test_parallel_interleavings(self, small_ontology: Ontology):
        scenario = Scenario(
            name="par",
            events=(parallel(SimpleEvent(text="a"), SimpleEvent(text="b")),),
        )
        traces = self.make_set(small_ontology, scenario).traces("par")
        rendered = {tuple(e.render() for e in t) for t in traces}
        assert rendered == {("a", "b"), ("b", "a")}

    def test_parallel_permutation_bound(self, small_ontology: Ontology):
        scenario = Scenario(
            name="par3",
            events=(
                parallel(
                    SimpleEvent(text="a"),
                    SimpleEvent(text="b"),
                    SimpleEvent(text="c"),
                ),
            ),
        )
        traces = self.make_set(small_ontology, scenario).traces(
            "par3", TraceOptions(max_parallel_permutations=2)
        )
        assert len(traces) == 2

    def test_episode_inlines_reused_scenario(self, small_ontology: Ontology):
        inner = simple("inner", "i1", "i2")
        outer = Scenario(
            name="outer",
            events=(
                SimpleEvent(text="before"),
                Episode(scenario_name="inner"),
                SimpleEvent(text="after"),
            ),
        )
        scenario_set = self.make_set(small_ontology, inner, outer)
        (trace,) = scenario_set.traces("outer")
        assert [e.render() for e in trace] == ["before", "i1", "i2", "after"]

    def test_episode_cycle_detected(self, small_ontology: Ontology):
        first = Scenario(name="a", events=(Episode(scenario_name="b"),))
        second = Scenario(name="b", events=(Episode(scenario_name="a"),))
        scenario_set = self.make_set(small_ontology, first, second)
        with pytest.raises(EpisodeCycleError):
            scenario_set.traces("a")

    def test_self_episode_cycle_detected(self, small_ontology: Ontology):
        loop = Scenario(name="loop", events=(Episode(scenario_name="loop"),))
        scenario_set = self.make_set(small_ontology, loop)
        with pytest.raises(EpisodeCycleError):
            scenario_set.traces("loop")

    def test_max_traces_cap_respected(self, small_ontology: Ontology):
        branches = tuple(SimpleEvent(text=f"b{i}") for i in range(4))
        scenario = Scenario(
            name="explode",
            events=(
                Alternation(branches=branches),
                Alternation(branches=branches),
                Alternation(branches=branches),
            ),
        )
        traces = self.make_set(small_ontology, scenario).traces(
            "explode", TraceOptions(max_traces=10)
        )
        assert len(traces) == 10

    def test_resolve_episodes_transitively(self, small_ontology: Ontology):
        leafy = simple("leafy")
        middle = Scenario(name="middle", events=(Episode(scenario_name="leafy"),))
        top = Scenario(name="top", events=(Episode(scenario_name="middle"),))
        scenario_set = self.make_set(small_ontology, leafy, middle, top)
        assert set(scenario_set.resolve_episodes("top")) == {"middle", "leafy"}

    def test_resolve_episodes_detects_cycles(self, small_ontology: Ontology):
        first = Scenario(name="a", events=(Episode(scenario_name="b"),))
        second = Scenario(name="b", events=(Episode(scenario_name="a"),))
        scenario_set = self.make_set(small_ontology, first, second)
        with pytest.raises(EpisodeCycleError):
            scenario_set.resolve_episodes("a")
