"""Unit tests for requirement-imposed communication constraints."""

from __future__ import annotations

import pytest

from repro.adl.structure import Architecture
from repro.core.constraints import (
    ForbidsDirectLink,
    MustNotCommunicate,
    MustRouteVia,
    RequiresPath,
    check_constraints,
)
from repro.core.consistency import InconsistencyKind
from repro.errors import ArchitectureError, EvaluationError


def client_server() -> Architecture:
    """Two clients joined through a central server."""
    architecture = Architecture("cs")
    architecture.add_component("client-1")
    architecture.add_component("client-2")
    architecture.add_component("server")
    architecture.add_connector("link-1")
    architecture.add_connector("link-2")
    architecture.link(("client-1", "net"), ("link-1", "a"))
    architecture.link(("link-1", "b"), ("server", "c1"))
    architecture.link(("client-2", "net"), ("link-2", "a"))
    architecture.link(("link-2", "b"), ("server", "c2"))
    return architecture


class TestMustRouteVia:
    def test_satisfied_by_mediated_topology(self):
        constraint = MustRouteVia("client-1", "client-2", "server")
        assert constraint.check(client_server()) == []

    def test_violated_by_bypass(self):
        architecture = client_server()
        architecture.link(("client-1", "direct"), ("client-2", "direct"))
        constraint = MustRouteVia("client-1", "client-2", "server")
        (finding,) = constraint.check(architecture)
        assert finding.kind is InconsistencyKind.CONSTRAINT_VIOLATION
        assert "without passing through" in finding.message

    def test_description_used_in_message(self):
        architecture = client_server()
        architecture.link(("client-1", "direct"), ("client-2", "direct"))
        constraint = MustRouteVia(
            "client-1",
            "client-2",
            "server",
            description="Clients need to communicate through a central server",
        )
        (finding,) = constraint.check(architecture)
        assert "central server" in finding.message

    def test_unknown_element_raises(self):
        constraint = MustRouteVia("client-1", "ghost", "server")
        with pytest.raises(ArchitectureError):
            constraint.check(client_server())

    def test_disconnected_endpoints_satisfy_vacuously(self):
        architecture = client_server()
        architecture.excise_links_between("client-2", "link-2")
        constraint = MustRouteVia("client-1", "client-2", "server")
        assert constraint.check(architecture) == []

    def test_mediator_equal_to_source_is_rejected(self):
        # `avoiding` ignores names equal to the endpoints, so such a
        # mediator is never removed and the constraint could never
        # report a violation; it must be rejected at construction.
        with pytest.raises(EvaluationError):
            MustRouteVia("server", "client-2", "server")

    def test_mediator_equal_to_target_is_rejected(self):
        with pytest.raises(EvaluationError):
            MustRouteVia("client-1", "server", "server")


class TestMustNotCommunicate:
    def test_violated_when_any_path_exists(self):
        constraint = MustNotCommunicate("client-1", "client-2")
        (finding,) = constraint.check(client_server())
        assert "can communicate" in finding.message

    def test_satisfied_when_isolated(self):
        architecture = client_server()
        architecture.excise_links_between("client-2", "link-2")
        constraint = MustNotCommunicate("client-1", "client-2")
        assert constraint.check(architecture) == []


class TestRequiresPath:
    def test_satisfied(self):
        assert RequiresPath("client-1", "server").check(client_server()) == []

    def test_violated(self):
        architecture = client_server()
        architecture.excise_links_between("client-1", "link-1")
        (finding,) = RequiresPath("client-1", "server").check(architecture)
        assert "no communication path" in finding.message

    def test_directed_variant(self, chain_architecture):
        assert (
            RequiresPath("ui", "store", respect_directions=True).check(
                chain_architecture
            )
            == []
        )
        (finding,) = RequiresPath(
            "store", "ui", respect_directions=True
        ).check(chain_architecture)
        assert finding.kind is InconsistencyKind.CONSTRAINT_VIOLATION


class TestForbidsDirectLink:
    def test_satisfied_with_mediated_links(self):
        constraint = ForbidsDirectLink("client-1", "server")
        assert constraint.check(client_server()) == []

    def test_violated_per_direct_link(self):
        architecture = client_server()
        architecture.link(("client-1", "d1"), ("client-2", "d1"))
        architecture.link(("client-1", "d2"), ("client-2", "d2"))
        findings = ForbidsDirectLink("client-1", "client-2").check(
            architecture
        )
        assert len(findings) == 2


class TestCheckConstraints:
    def test_aggregates_all_violations(self):
        architecture = client_server()
        architecture.link(("client-1", "direct"), ("client-2", "direct"))
        findings = check_constraints(
            architecture,
            [
                MustRouteVia("client-1", "client-2", "server"),
                ForbidsDirectLink("client-1", "client-2"),
                RequiresPath("client-1", "server"),
            ],
        )
        assert len(findings) == 2

    def test_empty_constraint_list(self):
        assert check_constraints(client_server(), []) == []
