"""Tests for the declarative alert / SLO rules engine."""

from __future__ import annotations

import json
import math

import pytest

from repro.errors import ReproError
from repro.obs import (
    AlertEngine,
    AlertFired,
    AlertResolved,
    AlertRule,
    EventBus,
    load_rules,
    parse_rules,
    scalar_values,
    use_events,
)
from repro.obs.runs import RunRecord


def _run(index, **overrides):
    """A minimal run-registry record for runs-source rules."""
    fields = dict(
        run_id=f"r{index:04d}",
        label="demo",
        timestamp=float(index),
        git_sha=None,
        wall_seconds=1.0,
        consistent=True,
        scenarios_passed=3,
        scenarios_failed=0,
        findings=0,
        report_digest="d",
        metrics={},
        stages={},
    )
    fields.update(overrides)
    return RunRecord(**fields)


class TestRuleValidation:
    def test_defaults_are_sane(self):
        rule = AlertRule(name="r", metric="findings", threshold=0)
        assert rule.op == ">"
        assert rule.severity == "warning"
        assert rule.for_count == 1
        assert rule.condition() == "findings > 0"

    def test_runs_rule_condition_shows_the_reduction(self):
        rule = AlertRule(
            name="r",
            metric="wall_seconds",
            threshold=20,
            source="runs",
            mode="regression-pct",
            window=5,
        )
        assert "regression-pct(wall_seconds, window=5)" in rule.condition()

    @pytest.mark.parametrize(
        "overrides, match",
        [
            (dict(name=""), "non-empty name"),
            (dict(metric=""), "needs a metric"),
            (dict(op="~"), "unknown op"),
            (dict(severity="fatal"), "unknown severity"),
            (dict(source="prometheus"), "unknown source"),
            (dict(mode="avg"), "unknown mode"),
            (dict(mode="delta"), "needs source = 'runs'"),
            (dict(for_count=0), "'for' must be >= 1"),
            (dict(cooldown=-1.0), "cooldown must be >= 0"),
            (
                dict(source="runs", mode="delta", window=1),
                "window must be >= 2",
            ),
        ],
    )
    def test_invalid_rules_are_rejected(self, overrides, match):
        fields = dict(name="r", metric="m", threshold=1.0)
        fields.update(overrides)
        with pytest.raises(ReproError, match=match):
            AlertRule(**fields)


class TestParseRules:
    def test_parses_rules_table_and_bare_list(self):
        entry = {"name": "r", "metric": "m", "threshold": 2, "for": 3}
        for data in ({"rules": [entry]}, [entry]):
            (rule,) = parse_rules(data)
            assert rule.name == "r"
            assert rule.threshold == 2.0
            assert rule.for_count == 3

    def test_missing_rules_list(self):
        with pytest.raises(ReproError, match="no 'rules' list"):
            parse_rules({"rule": []})
        with pytest.raises(ReproError, match="must be a list"):
            parse_rules({"rules": "nope"})

    def test_unknown_and_missing_keys(self):
        with pytest.raises(ReproError, match="unknown key"):
            parse_rules([{"name": "r", "metric": "m", "threshold": 1,
                          "treshold": 2}])
        with pytest.raises(ReproError, match="missing required key"):
            parse_rules([{"name": "r"}])

    def test_boolean_threshold_is_rejected(self):
        with pytest.raises(ReproError, match="threshold must be a number"):
            parse_rules([{"name": "r", "metric": "m", "threshold": True}])

    def test_duplicate_names_are_rejected(self):
        entry = {"name": "dup", "metric": "m", "threshold": 1}
        with pytest.raises(ReproError, match="duplicate rule name"):
            parse_rules([entry, dict(entry)])

    def test_load_rules_json(self, tmp_path):
        path = tmp_path / "rules.json"
        path.write_text(json.dumps(
            {"rules": [{"name": "r", "metric": "m", "threshold": 1}]}
        ))
        (rule,) = load_rules(path)
        assert rule.name == "r"

    def test_load_rules_toml(self, tmp_path):
        tomllib = pytest.importorskip("tomllib")
        assert tomllib is not None
        path = tmp_path / "rules.toml"
        path.write_text(
            '[[rules]]\nname = "r"\nmetric = "m"\nthreshold = 1\n'
        )
        (rule,) = load_rules(path)
        assert rule.metric == "m"

    def test_load_rules_errors_name_the_file(self, tmp_path):
        path = tmp_path / "rules.json"
        path.write_text("not json")
        with pytest.raises(ReproError, match="rules.json"):
            load_rules(path)
        path.write_text(json.dumps([{"name": "r"}]))
        with pytest.raises(ReproError, match="rules.json.*missing"):
            load_rules(path)


class TestScalarValues:
    def test_flattens_histograms_and_merges_extras(self):
        snapshot = {
            "steps": {"type": "counter", "value": 7},
            "lat": {
                "type": "histogram",
                "count": 2,
                "mean": 1.5,
                "p50": 1.0,
                "p95": 2.0,
                "p99": 2.0,
                "min": 1.0,
                "max": 2.0,
                "total": 3.0,
            },
        }
        values = scalar_values(snapshot, extra={"report.findings": 4})
        assert values["steps"] == 7
        assert values["lat.p95"] == 2.0
        assert values["report.findings"] == 4.0


class TestAlertEngine:
    def test_fires_on_violation_and_resolves_on_recovery(self):
        engine = AlertEngine(
            [AlertRule(name="r", metric="findings", threshold=0)]
        )
        fired = engine.evaluate({"findings": 3.0})
        assert len(fired) == 1 and isinstance(fired[0], AlertFired)
        assert fired[0].value == 3.0 and fired[0].threshold == 0.0
        assert len(engine.active_alerts()) == 1
        # Still violating: no duplicate fire while active.
        assert engine.evaluate({"findings": 5.0}) == []
        resolved = engine.evaluate({"findings": 0.0})
        assert len(resolved) == 1 and isinstance(resolved[0], AlertResolved)
        assert engine.active_alerts() == ()

    def test_exact_threshold_is_not_a_strict_violation(self):
        engine = AlertEngine(
            [AlertRule(name="r", metric="m", threshold=5, op=">")]
        )
        assert engine.evaluate({"m": 5.0}) == []
        assert len(engine.evaluate({"m": 5.0001})) == 1

    def test_exact_threshold_fires_with_ge(self):
        engine = AlertEngine(
            [AlertRule(name="r", metric="m", threshold=5, op=">=")]
        )
        assert len(engine.evaluate({"m": 5.0})) == 1

    def test_for_count_needs_consecutive_violations(self):
        engine = AlertEngine(
            [AlertRule(name="r", metric="m", threshold=0, for_count=3)]
        )
        assert engine.evaluate({"m": 1.0}) == []
        assert engine.evaluate({"m": 1.0}) == []
        assert len(engine.evaluate({"m": 1.0})) == 1

    def test_recovery_resets_the_consecutive_count(self):
        engine = AlertEngine(
            [AlertRule(name="r", metric="m", threshold=0, for_count=2)]
        )
        engine.evaluate({"m": 1.0})
        engine.evaluate({"m": 0.0})  # reset
        assert engine.evaluate({"m": 1.0}) == []
        assert len(engine.evaluate({"m": 1.0})) == 1

    def test_cooldown_suppresses_refire_until_elapsed(self):
        engine = AlertEngine(
            [AlertRule(name="r", metric="m", threshold=0, cooldown=60.0)]
        )
        assert len(engine.evaluate({"m": 1.0}, now=0.0)) == 1
        assert len(engine.evaluate({"m": 0.0}, now=10.0)) == 1  # resolve
        # Violates again inside the cooldown window: suppressed.
        assert engine.evaluate({"m": 1.0}, now=30.0) == []
        assert engine.active_alerts() == ()
        # Past the cooldown it fires again.
        fired = engine.evaluate({"m": 1.0}, now=61.0)
        assert len(fired) == 1 and isinstance(fired[0], AlertFired)

    def test_unknown_metric_warns_once_and_skips(self, caplog):
        engine = AlertEngine(
            [AlertRule(name="r", metric="ghost", threshold=0)]
        )
        with caplog.at_level("WARNING", logger="repro.obs.alerts"):
            assert engine.evaluate({"m": 1.0}) == []
            assert engine.evaluate({"m": 1.0}) == []
        warnings = [
            record for record in caplog.records
            if "unknown metric" in record.getMessage()
        ]
        assert len(warnings) == 1
        assert engine.active_alerts() == ()

    def test_missing_data_does_not_resolve_an_active_alert(self):
        engine = AlertEngine(
            [AlertRule(name="r", metric="m", threshold=0)]
        )
        engine.evaluate({"m": 1.0})
        assert engine.evaluate({}) == []
        assert len(engine.active_alerts()) == 1

    def test_transitions_are_published_on_the_event_bus(self):
        engine = AlertEngine(
            [AlertRule(name="r", metric="m", threshold=0,
                       severity="critical")]
        )
        bus = EventBus()
        with use_events(bus):
            engine.evaluate({"m": 2.0})
            engine.evaluate({"m": 0.0})
        kinds = [event.kind for event in bus.events()]
        assert kinds == ["alert-fired", "alert-resolved"]
        assert bus.events()[0].severity == "critical"

    def test_state_snapshot_is_json_friendly(self):
        engine = AlertEngine(
            [AlertRule(name="r", metric="m", threshold=0,
                       description="no findings allowed")]
        )
        engine.evaluate({"m": 2.0})
        (state,) = engine.to_dict()
        assert state["rule"] == "r"
        assert state["active"] is True
        assert state["last_value"] == 2.0
        json.dumps(state)


class TestRunsSourceRules:
    def test_value_mode_reads_the_latest_record(self):
        engine = AlertEngine(
            [AlertRule(name="r", metric="findings", threshold=2,
                       source="runs")]
        )
        history = [_run(1, findings=5), _run(2, findings=1)]
        assert engine.evaluate({}, runs=history) == []
        history.append(_run(3, findings=4))
        assert len(engine.evaluate({}, runs=history)) == 1

    def test_delta_mode_compares_window_ends(self):
        engine = AlertEngine(
            [AlertRule(name="r", metric="wall_seconds", threshold=0.5,
                       source="runs", mode="delta", window=3)]
        )
        history = [
            _run(1, wall_seconds=1.0),
            _run(2, wall_seconds=1.2),
            _run(3, wall_seconds=1.4),
        ]
        assert engine.evaluate({}, runs=history) == []  # delta 0.4
        history.append(_run(4, wall_seconds=2.0))       # window delta 0.8
        assert len(engine.evaluate({}, runs=history)) == 1

    def test_regression_pct_mode(self):
        engine = AlertEngine(
            [AlertRule(name="r", metric="wall_seconds", threshold=20,
                       source="runs", mode="regression-pct", window=2)]
        )
        history = [_run(1, wall_seconds=1.0), _run(2, wall_seconds=1.1)]
        assert engine.evaluate({}, runs=history) == []  # +10%
        history.append(_run(3, wall_seconds=1.5))       # +36% over run 2
        (fired,) = engine.evaluate({}, runs=history)
        assert fired.value == pytest.approx(100 * (1.5 - 1.1) / 1.1)

    def test_regression_from_zero_is_infinite(self):
        engine = AlertEngine(
            [AlertRule(name="r", metric="findings", threshold=20,
                       source="runs", mode="regression-pct", window=2)]
        )
        history = [_run(1, findings=0), _run(2, findings=3)]
        (fired,) = engine.evaluate({}, runs=history)
        assert fired.value == math.inf

    def test_consistent_maps_to_zero_one(self):
        engine = AlertEngine(
            [AlertRule(name="r", metric="consistent", threshold=1,
                       op="<", source="runs")]
        )
        assert engine.evaluate({}, runs=[_run(1, consistent=True)]) == []
        assert len(
            engine.evaluate({}, runs=[_run(2, consistent=False)])
        ) == 1

    def test_metric_scalars_from_records(self):
        record = _run(
            1, metrics={"walk.steps": {"type": "counter", "value": 9}}
        )
        engine = AlertEngine(
            [AlertRule(name="r", metric="walk.steps", threshold=5,
                       source="runs")]
        )
        assert len(engine.evaluate({}, runs=[record])) == 1

    def test_short_series_is_skipped_not_crashed(self):
        engine = AlertEngine(
            [AlertRule(name="r", metric="wall_seconds", threshold=0,
                       source="runs", mode="delta", window=3)]
        )
        assert engine.evaluate({}, runs=[_run(1)]) == []

    def test_absent_registry_metric_warns_once(self, caplog):
        engine = AlertEngine(
            [AlertRule(name="r", metric="no.such", threshold=0,
                       source="runs")]
        )
        with caplog.at_level("WARNING", logger="repro.obs.alerts"):
            engine.evaluate({}, runs=[_run(1)])
            engine.evaluate({}, runs=[_run(2)])
        warnings = [
            record for record in caplog.records
            if "absent from the run registry" in record.getMessage()
        ]
        assert len(warnings) == 1


class TestAnomalyMode:
    def _engine(self, window=4, threshold=3.5, **extra):
        kwargs = dict(
            name="step", metric="wall_seconds", source="runs",
            mode="anomaly", window=window, threshold=threshold,
        )
        kwargs.update(extra)
        return AlertEngine([AlertRule(**kwargs)])

    def test_fires_on_a_step_not_on_noise(self):
        engine = self._engine(window=4)
        history = [
            _run(i, wall_seconds=w)
            for i, w in enumerate((1.0, 1.02, 0.98, 1.01), start=1)
        ]
        history.append(_run(5, wall_seconds=1.0))
        assert engine.evaluate({}, runs=history) == []
        history.append(_run(6, wall_seconds=5.0))
        (fired,) = engine.evaluate({}, runs=history)
        assert fired.rule == "step"
        assert fired.value > 3.5  # the value is the robust z-score

    def test_parse_rules_defaults_anomaly_threshold(self):
        (rule,) = parse_rules(
            {"rules": [{"name": "step", "metric": "wall_seconds",
                        "source": "runs", "mode": "anomaly",
                        "window": 4}]}
        )
        assert rule.mode == "anomaly"
        assert rule.threshold == 3.5

    def test_anomaly_needs_runs_source_and_a_wide_window(self):
        with pytest.raises(ReproError, match="source"):
            AlertRule(name="a", metric="m", threshold=1, mode="anomaly")
        with pytest.raises(ReproError, match="window"):
            AlertRule(name="a", metric="m", threshold=3.5, source="runs",
                      mode="anomaly", window=2)


class TestInsufficientHistory:
    def _engine(self, window=4, mode="anomaly", threshold=3.5):
        return AlertEngine(
            [AlertRule(name="slo", metric="wall_seconds", source="runs",
                       mode=mode, threshold=threshold, window=window)]
        )

    def test_underfilled_window_sets_the_status(self):
        engine = self._engine(window=4)
        engine.evaluate({}, runs=[_run(1), _run(2)])
        (state,) = engine.insufficient_history()
        assert state.status == "insufficient-history"
        assert "needs" in state.status_detail
        assert "2" in state.status_detail

    def test_status_appears_in_the_snapshot(self):
        engine = self._engine(window=4)
        engine.evaluate({}, runs=[_run(1)])
        (snap,) = engine.to_dict()
        assert snap["status"] == "insufficient-history"
        assert snap["status_detail"]

    def test_filled_window_clears_the_status(self):
        engine = self._engine(window=4)
        engine.evaluate({}, runs=[_run(1), _run(2)])
        assert engine.insufficient_history()
        history = [_run(i, wall_seconds=1.0) for i in range(1, 6)]
        engine.evaluate({}, runs=history)
        assert engine.insufficient_history() == ()
        (snap,) = engine.to_dict()
        assert snap["status"] == "ok"

    def test_metric_source_rules_never_report_history(self):
        engine = AlertEngine(
            [AlertRule(name="m", metric="findings", threshold=0)]
        )
        engine.evaluate({})
        assert engine.insufficient_history() == ()
        (snap,) = engine.to_dict()
        assert snap["status"] == "no-data"


class TestTenantScopedRules:
    def test_metric_rule_reads_the_tenant_scalar(self):
        engine = AlertEngine(
            [AlertRule(name="r", metric="jobs_failed", threshold=0,
                       tenant="acme")]
        )
        # the bare metric name never matches a tenant-scoped rule
        assert engine.evaluate({"jobs_failed": 5.0}) == []
        (state,) = engine.states
        assert state.status == "no-data"
        (fired,) = engine.evaluate({"tenant.acme.jobs_failed": 2.0})
        assert fired.value == 2.0

    def test_runs_rule_sees_only_the_tenant_slice(self):
        engine = AlertEngine(
            [AlertRule(name="r", metric="findings", threshold=2,
                       source="runs", tenant="acme")]
        )
        history = [
            _run(1, findings=9, tenant="beta"),   # loud, but not ours
            _run(2, findings=0, tenant="acme"),
        ]
        assert engine.evaluate({}, runs=history) == []
        history.append(_run(3, findings=4, tenant="acme"))
        assert len(engine.evaluate({}, runs=history)) == 1

    def test_insufficient_history_names_the_tenant(self):
        engine = AlertEngine(
            [AlertRule(name="r", metric="wall_seconds", threshold=1,
                       source="runs", mode="delta", window=3,
                       tenant="acme")]
        )
        engine.evaluate({}, runs=[_run(1, tenant="beta")] * 5)
        (state,) = engine.states
        assert state.status == "insufficient-history"
        assert "acme" in state.status_detail

    def test_parse_rules_reads_tenant_and_render_shows_it(self):
        (rule,) = parse_rules([
            {"name": "r", "metric": "jobs_rejected", "threshold": 0,
             "tenant": "acme"}
        ])
        assert rule.tenant == "acme"
        assert "[tenant acme]" in rule.condition()
