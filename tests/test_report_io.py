"""Unit tests for report persistence and baseline comparison."""

from __future__ import annotations

import pytest

from repro.core.evaluator import Sosae
from repro.core.mapping import Mapping
from repro.core.report_io import (
    compare_reports,
    report_from_json,
    report_to_json,
)
from repro.errors import SerializationError


def evaluate(scenarios, architecture, mapping):
    return Sosae(scenarios, architecture, mapping).evaluate()


class TestPersistence:
    def test_roundtrip_preserves_outcomes(
        self, small_scenarios, chain_architecture, chain_mapping
    ):
        report = evaluate(small_scenarios, chain_architecture, chain_mapping)
        restored = report_from_json(report_to_json(report))
        assert restored.architecture == report.architecture
        assert restored.consistent == report.consistent
        assert restored.passed_scenarios == report.passed_scenarios
        assert restored.failed_scenarios == report.failed_scenarios

    def test_roundtrip_preserves_findings_and_steps(
        self, small_scenarios, chain_architecture, chain_mapping
    ):
        chain_architecture.excise_links_between("logic", "logic-store")
        report = evaluate(small_scenarios, chain_architecture, chain_mapping)
        restored = report_from_json(report_to_json(report))
        original = {str(f) for f in report.all_inconsistencies()}
        recovered = {str(f) for f in restored.all_inconsistencies()}
        assert original == recovered
        verdict = restored.verdict("make-widget")
        assert verdict.traces[0].steps[0].event_rendering

    def test_dynamic_verdicts_survive_without_traces(self, crash):
        from repro.sim.network import ChannelPolicy
        from repro.sim.runtime import RuntimeConfig

        report = Sosae(
            crash.scenarios,
            crash.architecture,
            crash.mapping,
            bindings=crash.bindings,
            walkthrough_options=crash.options,
            runtime_config=RuntimeConfig(
                policy=ChannelPolicy(latency=1.0, failure_detection=True)
            ),
        ).evaluate(include_dynamic=True)
        restored = report_from_json(report_to_json(report))
        assert len(restored.dynamic_verdicts) == len(report.dynamic_verdicts)
        assert restored.consistent == report.consistent
        assert "[stored]" in restored.dynamic_verdicts[0].render()

    def test_negative_verdict_polarity_survives(
        self, small_ontology, chain_architecture, chain_mapping
    ):
        from repro.scenarioml.events import TypedEvent
        from repro.scenarioml.scenario import (
            Scenario,
            ScenarioKind,
            ScenarioSet,
        )

        scenarios = ScenarioSet(small_ontology)
        scenarios.add(
            Scenario(
                name="forbidden",
                kind=ScenarioKind.NEGATIVE,
                events=(
                    TypedEvent(type_name="create", arguments={"subject": "x"}),
                ),
            )
        )
        report = evaluate(scenarios, chain_architecture, chain_mapping)
        restored = report_from_json(report_to_json(report))
        verdict = restored.verdict("forbidden")
        assert verdict.negative
        assert verdict.passed == report.verdict("forbidden").passed

    def test_malformed_json_rejected(self):
        with pytest.raises(SerializationError):
            report_from_json("{not json")

    def test_wrong_format_version_rejected(self):
        with pytest.raises(SerializationError):
            report_from_json('{"format": 99, "architecture": "x"}')

    def test_unknown_kind_rejected(self):
        text = (
            '{"format": 1, "architecture": "x", "scenario_verdicts": [], '
            '"findings": [{"kind": "weird", "message": "m"}]}'
        )
        with pytest.raises(SerializationError):
            report_from_json(text)


class TestComparison:
    def test_no_changes(self, small_scenarios, chain_architecture, chain_mapping):
        report = evaluate(small_scenarios, chain_architecture, chain_mapping)
        comparison = compare_reports(report, report)
        assert comparison.clean
        assert comparison.summary() == "no verdict changes"

    def test_regression_detected(
        self, small_scenarios, chain_architecture, chain_mapping
    ):
        baseline = evaluate(
            small_scenarios, chain_architecture, chain_mapping
        )
        broken = chain_architecture.clone("broken")
        broken.excise_links_between("logic", "logic-store")
        broken_mapping = Mapping.from_dict(
            chain_mapping.to_dict(), chain_mapping.ontology, broken
        )
        current = evaluate(small_scenarios, broken, broken_mapping)
        comparison = compare_reports(baseline, current)
        assert not comparison.clean
        assert "make-widget" in comparison.regressions
        assert "regressions" in comparison.summary()

    def test_fix_detected(
        self, small_scenarios, chain_architecture, chain_mapping
    ):
        broken = chain_architecture.clone("broken")
        broken.excise_links_between("logic", "logic-store")
        broken_mapping = Mapping.from_dict(
            chain_mapping.to_dict(), chain_mapping.ontology, broken
        )
        baseline = evaluate(small_scenarios, broken, broken_mapping)
        current = evaluate(
            small_scenarios, chain_architecture, chain_mapping
        )
        comparison = compare_reports(baseline, current)
        assert comparison.clean
        assert "make-widget" in comparison.fixes

    def test_new_and_removed_scenarios(
        self, small_scenarios, chain_architecture, chain_mapping
    ):
        baseline = evaluate(
            small_scenarios, chain_architecture, chain_mapping
        )
        from repro.scenarioml.events import TypedEvent
        from repro.scenarioml.scenario import Scenario

        small_scenarios.add(
            Scenario(
                name="fresh",
                events=(
                    TypedEvent(type_name="create", arguments={"subject": "x"}),
                ),
            )
        )
        current = evaluate(
            small_scenarios, chain_architecture, chain_mapping
        )
        comparison = compare_reports(baseline, current)
        assert comparison.new_scenarios == ("fresh",)
        reverse = compare_reports(current, baseline)
        assert reverse.removed_scenarios == ("fresh",)

    def test_pims_excision_regression_story(self, pims):
        baseline = Sosae(
            pims.scenarios,
            pims.architecture,
            pims.mapping,
            walkthrough_options=pims.options,
        ).evaluate()
        evolved = pims.excised_architecture()
        mapping = Mapping.from_dict(
            pims.mapping.to_dict(), pims.ontology, evolved
        )
        current = Sosae(
            pims.scenarios, evolved, mapping, walkthrough_options=pims.options
        ).evaluate()
        comparison = compare_reports(baseline, current)
        assert comparison.regressions == ("get-share-prices",)
