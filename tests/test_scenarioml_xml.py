"""Unit tests for ScenarioML XML serialization and parsing."""

from __future__ import annotations

import pytest

from repro.errors import SerializationError
from repro.scenarioml.events import (
    Alternation,
    CompoundEvent,
    Episode,
    Iteration,
    Optional_,
    SimpleEvent,
    TypedEvent,
)
from repro.scenarioml.ontology import Ontology, Parameter
from repro.scenarioml.scenario import (
    QualityAttribute,
    Scenario,
    ScenarioKind,
    ScenarioSet,
)
from repro.scenarioml.xml_io import parse_scenarioml, to_scenarioml_xml


def roundtrip(scenario_set: ScenarioSet) -> ScenarioSet:
    return parse_scenarioml(to_scenarioml_xml(scenario_set))


class TestRoundtrip:
    def test_small_set(self, small_scenarios: ScenarioSet):
        parsed = roundtrip(small_scenarios)
        assert len(parsed) == len(small_scenarios)
        for original in small_scenarios:
            assert parsed.get(original.name).events == original.events

    def test_ontology_definitions_preserved(
        self, small_scenarios: ScenarioSet
    ):
        parsed = roundtrip(small_scenarios)
        ontology = parsed.ontology
        assert ontology.term("widget").definition
        assert ontology.instance_type("Human").super_name == "Actor"
        assert ontology.instance("alice").type_name == "Human"
        create = ontology.event_type("create")
        assert create.super_name == "act"
        assert create.actor == "System"
        assert create.parameters == (Parameter("subject"),)
        assert ontology.event_type("act").abstract

    def test_typed_parameter_preserved(self, small_scenarios: ScenarioSet):
        parsed = roundtrip(small_scenarios)
        (parameter,) = parsed.ontology.event_type("notify").parameters
        assert parameter.type_name == "Actor"

    def test_scenario_metadata_preserved(self, small_ontology: Ontology):
        scenario_set = ScenarioSet(small_ontology, name="meta")
        scenario_set.add(
            Scenario(
                name="rich",
                title="A rich scenario",
                description="Why this matters.",
                kind=ScenarioKind.NEGATIVE,
                quality_attributes=(
                    QualityAttribute.AVAILABILITY,
                    QualityAttribute.SECURITY,
                ),
                actors=("alice", "backend"),
                alternative_of="main",
                events=(SimpleEvent(text="x", actor="alice", label="1"),),
            )
        )
        scenario_set.add(
            Scenario(name="main", events=(SimpleEvent(text="y"),))
        )
        parsed = roundtrip(scenario_set)
        rich = parsed.get("rich")
        assert rich.title == "A rich scenario"
        assert rich.description == "Why this matters."
        assert rich.kind is ScenarioKind.NEGATIVE
        assert rich.quality_attributes == (
            QualityAttribute.AVAILABILITY,
            QualityAttribute.SECURITY,
        )
        assert rich.actors == ("alice", "backend")
        assert rich.alternative_of == "main"
        assert parsed.name == "meta"

    def test_all_event_structures(self, small_ontology: Ontology):
        scenario_set = ScenarioSet(small_ontology)
        scenario_set.add(
            Scenario(name="target", events=(SimpleEvent(text="t"),))
        )
        scenario_set.add(
            Scenario(
                name="structures",
                events=(
                    TypedEvent(
                        type_name="create",
                        arguments={"subject": "thing"},
                        label="1",
                    ),
                    CompoundEvent(
                        subevents=(
                            SimpleEvent(text="a"),
                            SimpleEvent(text="b"),
                        ),
                        pattern="parallel",
                        label="2",
                    ),
                    Alternation(
                        branches=(
                            SimpleEvent(text="c"),
                            SimpleEvent(text="d"),
                        ),
                        label="3",
                    ),
                    Iteration(
                        body=SimpleEvent(text="e"),
                        min_count=0,
                        max_count=2,
                        label="4",
                    ),
                    Optional_(body=SimpleEvent(text="f"), label="5"),
                    Episode(scenario_name="target", label="6"),
                ),
            )
        )
        parsed = roundtrip(scenario_set)
        assert parsed.get("structures").events == scenario_set.get(
            "structures"
        ).events

    def test_iteration_without_max(self, small_ontology: Ontology):
        scenario_set = ScenarioSet(small_ontology)
        scenario_set.add(
            Scenario(
                name="it",
                events=(Iteration(body=SimpleEvent(text="x"), min_count=2),),
            )
        )
        parsed = roundtrip(scenario_set)
        (event,) = parsed.get("it").events
        assert isinstance(event, Iteration)
        assert event.min_count == 2
        assert event.max_count is None

    def test_multi_child_schema_bodies_wrap_in_sequence(
        self, small_ontology: Ontology
    ):
        document = """
        <scenarioml name="w">
          <ontology name="o"/>
          <scenario name="s">
            <iteration min="1">
              <event>a</event>
              <event>b</event>
            </iteration>
          </scenario>
        </scenarioml>
        """
        parsed = parse_scenarioml(document)
        (iteration,) = parsed.get("s").events
        assert isinstance(iteration, Iteration)
        assert isinstance(iteration.body, CompoundEvent)
        assert len(iteration.body.subevents) == 2

    def test_pims_roundtrip(self, pims):
        parsed = roundtrip(pims.scenarios)
        assert len(parsed) == len(pims.scenarios)
        for scenario in pims.scenarios:
            assert parsed.get(scenario.name).events == scenario.events

    def test_crash_roundtrip(self, crash):
        parsed = roundtrip(crash.scenarios)
        for scenario in crash.scenarios:
            reparsed = parsed.get(scenario.name)
            assert reparsed.events == scenario.events
            assert reparsed.quality_attributes == scenario.quality_attributes


class TestParsingErrors:
    def test_malformed_xml(self):
        with pytest.raises(SerializationError):
            parse_scenarioml("<scenarioml><broken")

    def test_wrong_root(self):
        with pytest.raises(SerializationError):
            parse_scenarioml("<wrong/>")

    def test_missing_ontology(self):
        with pytest.raises(SerializationError):
            parse_scenarioml("<scenarioml name='x'/>")

    def test_unknown_ontology_child(self):
        with pytest.raises(SerializationError):
            parse_scenarioml(
                "<scenarioml><ontology name='o'><bogus/></ontology></scenarioml>"
            )

    def test_unknown_event_element(self):
        document = (
            "<scenarioml><ontology name='o'/>"
            "<scenario name='s'><bogus/></scenario></scenarioml>"
        )
        with pytest.raises(SerializationError):
            parse_scenarioml(document)

    def test_missing_required_attribute(self):
        document = (
            "<scenarioml><ontology name='o'><term>def</term></ontology>"
            "</scenarioml>"
        )
        with pytest.raises(SerializationError):
            parse_scenarioml(document)

    def test_unknown_quality_attribute(self):
        document = (
            "<scenarioml><ontology name='o'/>"
            "<scenario name='s' qualities='sparkle'>"
            "<event>x</event></scenario></scenarioml>"
        )
        with pytest.raises(SerializationError):
            parse_scenarioml(document)

    def test_empty_iteration_body_rejected(self):
        document = (
            "<scenarioml><ontology name='o'/>"
            "<scenario name='s'><iteration min='1'/></scenario></scenarioml>"
        )
        with pytest.raises(SerializationError):
            parse_scenarioml(document)
