"""Unit tests for the discrete-event simulation engine."""

from __future__ import annotations

import pytest

from repro.errors import SimulationError
from repro.sim.engine import Simulator


class TestScheduling:
    def test_starts_at_time_zero(self):
        assert Simulator().now == 0.0

    def test_negative_delay_rejected(self):
        simulator = Simulator()
        with pytest.raises(SimulationError):
            simulator.schedule(-1.0, lambda: None)

    def test_callbacks_run_in_time_order(self):
        simulator = Simulator()
        order: list[str] = []
        simulator.schedule(2.0, lambda: order.append("late"))
        simulator.schedule(1.0, lambda: order.append("early"))
        simulator.run()
        assert order == ["early", "late"]

    def test_ties_broken_by_scheduling_order(self):
        simulator = Simulator()
        order: list[int] = []
        for index in range(5):
            simulator.schedule(1.0, lambda i=index: order.append(i))
        simulator.run()
        assert order == [0, 1, 2, 3, 4]

    def test_time_advances_to_callback_time(self):
        simulator = Simulator()
        seen: list[float] = []
        simulator.schedule(3.5, lambda: seen.append(simulator.now))
        simulator.run()
        assert seen == [3.5]
        assert simulator.now == 3.5

    def test_schedule_at_absolute_time(self):
        simulator = Simulator()
        simulator.schedule(1.0, lambda: None)
        simulator.run()
        seen: list[float] = []
        simulator.schedule_at(5.0, lambda: seen.append(simulator.now))
        simulator.run()
        assert seen == [5.0]

    def test_callbacks_can_schedule_more(self):
        simulator = Simulator()
        order: list[str] = []

        def first() -> None:
            order.append("first")
            simulator.schedule(1.0, lambda: order.append("second"))

        simulator.schedule(1.0, first)
        simulator.run()
        assert order == ["first", "second"]
        assert simulator.now == 2.0

    def test_zero_delay_runs_after_current_instant_batch(self):
        simulator = Simulator()
        order: list[str] = []

        def first() -> None:
            order.append("a")
            simulator.schedule(0.0, lambda: order.append("c"))

        simulator.schedule(1.0, first)
        simulator.schedule(1.0, lambda: order.append("b"))
        simulator.run()
        assert order == ["a", "b", "c"]


class TestRun:
    def test_run_until_stops_early(self):
        simulator = Simulator()
        fired: list[float] = []
        simulator.schedule(1.0, lambda: fired.append(1.0))
        simulator.schedule(10.0, lambda: fired.append(10.0))
        simulator.run(until=5.0)
        assert fired == [1.0]
        assert simulator.now == 5.0
        assert simulator.pending_events == 1

    def test_run_resumes_after_until(self):
        simulator = Simulator()
        fired: list[float] = []
        simulator.schedule(10.0, lambda: fired.append(10.0))
        simulator.run(until=5.0)
        simulator.run()
        assert fired == [10.0]

    def test_max_events_guard(self):
        simulator = Simulator()

        def forever() -> None:
            simulator.schedule(1.0, forever)

        simulator.schedule(1.0, forever)
        with pytest.raises(SimulationError):
            simulator.run(max_events=100)

    def test_processed_counter(self):
        simulator = Simulator()
        for _ in range(3):
            simulator.schedule(1.0, lambda: None)
        simulator.run()
        assert simulator.processed_events == 3

    def test_step_processes_one(self):
        simulator = Simulator()
        order: list[int] = []
        simulator.schedule(1.0, lambda: order.append(1))
        simulator.schedule(2.0, lambda: order.append(2))
        assert simulator.step()
        assert order == [1]
        assert simulator.step()
        assert not simulator.step()

    def test_reentrant_run_rejected(self):
        simulator = Simulator()

        def nested() -> None:
            simulator.run()

        simulator.schedule(1.0, nested)
        with pytest.raises(SimulationError):
            simulator.run()


class TestCancellation:
    def test_cancelled_callback_does_not_run(self):
        simulator = Simulator()
        fired: list[str] = []
        handle = simulator.schedule(1.0, lambda: fired.append("x"))
        handle.cancel()
        simulator.run()
        assert fired == []
        assert handle.cancelled

    def test_cancelled_events_not_counted_pending(self):
        simulator = Simulator()
        handle = simulator.schedule(1.0, lambda: None)
        assert simulator.pending_events == 1
        handle.cancel()
        assert simulator.pending_events == 0

    def test_handle_reports_time(self):
        simulator = Simulator()
        handle = simulator.schedule(4.0, lambda: None)
        assert handle.time == 4.0
