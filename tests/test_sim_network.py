"""Unit tests for simulated channels, nodes, failures, and traces."""

from __future__ import annotations

import pytest

from repro.errors import SimulationError
from repro.sim.engine import Simulator
from repro.sim.failures import FailureInjector
from repro.sim.network import FAILURE_MESSAGE, ChannelPolicy, NetworkChannel
from repro.sim.node import Message, Node
from repro.sim.trace import MessageTrace, TraceEventKind


def make_channel(policy: ChannelPolicy | None = None, seed: int = 0):
    simulator = Simulator()
    trace = MessageTrace()
    channel = NetworkChannel(simulator, trace, policy=policy, seed=seed)
    return simulator, trace, channel


class TestPolicy:
    def test_rejects_negative_latency(self):
        with pytest.raises(SimulationError):
            ChannelPolicy(latency=-1)

    def test_rejects_negative_jitter(self):
        with pytest.raises(SimulationError):
            ChannelPolicy(jitter=-0.1)

    def test_rejects_bad_drop_rate(self):
        with pytest.raises(SimulationError):
            ChannelPolicy(drop_rate=1.5)

    def test_rejects_negative_detection_delay(self):
        with pytest.raises(SimulationError):
            ChannelPolicy(detection_delay=-1)


class TestNode:
    def test_requires_name(self):
        with pytest.raises(SimulationError):
            Node("")

    def test_message_requires_name(self):
        with pytest.raises(SimulationError):
            Message(name="", source="a")

    def test_dead_node_rejects_delivery(self):
        node = Node("n")
        node.shut_down()
        assert not node.deliver(Message(name="m", source="x"))
        node.restore()
        assert node.deliver(Message(name="m", source="x"))

    def test_handler_invoked_on_delivery(self):
        seen = []
        node = Node("n", handler=lambda n, m: seen.append(m.name))
        node.deliver(Message(name="hello", source="x"))
        assert seen == ["hello"]
        assert node.delivered_names() == ("hello",)

    def test_sequence_numbers_increase(self):
        node = Node("n")
        assert node.next_sequence() < node.next_sequence()

    def test_forwarded_keeps_message_id(self):
        message = Message(name="m", source="a", destination="b")
        hop = message.forwarded(source="relay")
        assert hop.message_id == message.message_id
        assert hop.source == "relay"


class TestChannel:
    def test_register_rejects_duplicates(self):
        _, _, channel = make_channel()
        channel.register(Node("n"))
        with pytest.raises(SimulationError):
            channel.register(Node("n"))

    def test_unknown_node_lookup(self):
        _, _, channel = make_channel()
        with pytest.raises(SimulationError):
            channel.node("ghost")

    def test_send_requires_receiver(self):
        _, _, channel = make_channel()
        channel.register(Node("a"))
        with pytest.raises(SimulationError):
            channel.send(Message(name="m", source="a"))

    def test_delivery_after_latency(self):
        simulator, trace, channel = make_channel(ChannelPolicy(latency=2.0))
        channel.register(Node("a"))
        channel.register(Node("b"))
        channel.send(Message(name="m", source="a", destination="b"))
        simulator.run()
        (delivery,) = trace.deliveries_to("b")
        assert delivery.time == 2.0
        assert channel.node("b").delivered_names() == ("m",)

    def test_fifo_preserves_order_despite_jitter(self):
        simulator, trace, channel = make_channel(
            ChannelPolicy(latency=1.0, jitter=50.0, fifo=True), seed=1
        )
        channel.register(Node("a"))
        channel.register(Node("b"))
        for index in range(10):
            channel.send(
                Message(
                    name=f"m{index}", source="a", destination="b",
                    sequence=index + 1,
                )
            )
        simulator.run()
        assert trace.delivery_order("b") == tuple(f"m{i}" for i in range(10))
        assert trace.order_preserved("a", "b")

    def test_reordering_channel_can_break_order(self):
        for seed in range(30):
            simulator, trace, channel = make_channel(
                ChannelPolicy(latency=1.0, jitter=50.0, fifo=False), seed=seed
            )
            channel.register(Node("a"))
            channel.register(Node("b"))
            for index in range(10):
                channel.send(
                    Message(
                        name=f"m{index}", source="a", destination="b",
                        sequence=index + 1,
                    )
                )
            simulator.run()
            if not trace.order_preserved("a", "b"):
                return
        pytest.fail("no seed produced a reordering with 50x jitter")

    def test_lossy_channel_drops(self):
        simulator, trace, channel = make_channel(
            ChannelPolicy(latency=1.0, drop_rate=1.0)
        )
        channel.register(Node("a"))
        channel.register(Node("b"))
        channel.send(Message(name="m", source="a", destination="b"))
        simulator.run()
        assert not trace.deliveries_to("b")
        assert len(trace.dropped_messages()) == 1

    def test_dead_destination_rejected_silently_without_detection(self):
        simulator, trace, channel = make_channel(ChannelPolicy(latency=1.0))
        channel.register(Node("a"))
        channel.register(Node("b"))
        channel.mark_down("b")
        channel.send(Message(name="m", source="a", destination="b"))
        simulator.run()
        assert trace.filter(kind=TraceEventKind.REJECT)
        assert not trace.failure_notices_to("a")

    def test_failure_detection_notifies_sender(self):
        simulator, trace, channel = make_channel(
            ChannelPolicy(latency=1.0, failure_detection=True, detection_delay=2.0)
        )
        channel.register(Node("a"))
        channel.register(Node("b"))
        channel.mark_down("b")
        channel.send(Message(name="m", source="a", destination="b"))
        simulator.run()
        (notice,) = trace.failure_notices_to("a")
        assert notice.message is not None
        assert notice.message.name == FAILURE_MESSAGE
        assert notice.message.payload["failed_node"] == "b"
        assert notice.time == 3.0  # latency + detection delay
        assert channel.node("a").delivered_names() == (FAILURE_MESSAGE,)

    def test_pair_policy_overrides_default(self):
        simulator, trace, channel = make_channel(ChannelPolicy(latency=1.0))
        channel.register(Node("a"))
        channel.register(Node("b"))
        channel.set_pair_policy("a", "b", ChannelPolicy(drop_rate=1.0))
        channel.send(Message(name="m", source="a", destination="b"))
        simulator.run()
        assert not trace.deliveries_to("b")

    def test_send_to_explicit_hop_receiver(self):
        simulator, trace, channel = make_channel(ChannelPolicy(latency=1.0))
        channel.register(Node("a"))
        channel.register(Node("relay"))
        channel.send(
            Message(name="m", source="a", destination="far-away"),
            to="relay",
        )
        simulator.run()
        assert channel.node("relay").delivered_names() == ("m",)


class TestFailureInjector:
    def make(self):
        simulator, trace, channel = make_channel(ChannelPolicy(latency=1.0))
        channel.register(Node("a"))
        channel.register(Node("b"))
        injector = FailureInjector(simulator, channel)
        return simulator, trace, channel, injector

    def test_shutdown_at_time(self):
        simulator, trace, channel, injector = self.make()
        injector.shutdown("b", at=5.0)
        simulator.run()
        assert not channel.node("b").alive
        (down,) = trace.filter(kind=TraceEventKind.NODE_DOWN)
        assert down.time == 5.0

    def test_restore(self):
        simulator, trace, channel, injector = self.make()
        injector.shutdown("b", at=1.0)
        injector.restore("b", at=2.0)
        simulator.run()
        assert channel.node("b").alive
        assert trace.filter(kind=TraceEventKind.NODE_UP)

    def test_unknown_node_rejected(self):
        _, _, _, injector = self.make()
        with pytest.raises(SimulationError):
            injector.shutdown("ghost")

    def test_partition_blocks_both_directions(self):
        simulator, trace, channel, injector = self.make()
        injector.partition(["a"], ["b"], at=0.0)
        simulator.run()
        channel.send(Message(name="m", source="a", destination="b"))
        channel.send(Message(name="r", source="b", destination="a"))
        simulator.run()
        assert not trace.deliveries_to("b")
        assert not trace.deliveries_to("a")

    def test_heal_restores_traffic(self):
        simulator, trace, channel, injector = self.make()
        injector.partition(["a"], ["b"], at=0.0)
        injector.heal(at=10.0)
        simulator.run()
        channel.send(Message(name="m", source="a", destination="b"))
        simulator.run()
        assert trace.deliveries_to("b")

    def test_overlapping_partition_groups_rejected(self):
        _, _, _, injector = self.make()
        with pytest.raises(SimulationError):
            injector.partition(["a"], ["a", "b"])


class TestTraceQueries:
    def test_summary_counts(self):
        trace = MessageTrace()
        trace.record(0.0, TraceEventKind.SEND, "a")
        trace.record(1.0, TraceEventKind.DELIVER, "b")
        trace.record(2.0, TraceEventKind.DELIVER, "b")
        assert "deliver=2" in trace.summary()
        assert "send=1" in trace.summary()
        assert len(trace) == 3

    def test_filter_by_predicate(self):
        trace = MessageTrace()
        trace.record(0.0, TraceEventKind.SEND, "a")
        trace.record(5.0, TraceEventKind.SEND, "a")
        late = trace.filter(predicate=lambda e: e.time > 1.0)
        assert len(late) == 1

    def test_was_delivered(self):
        trace = MessageTrace()
        message = Message(name="m", source="a", destination="b")
        trace.record(1.0, TraceEventKind.DELIVER, "b", message)
        assert trace.was_delivered("m")
        assert trace.was_delivered("m", "b")
        assert not trace.was_delivered("m", "c")
        assert not trace.was_delivered("other")

    def test_render_with_limit(self):
        trace = MessageTrace()
        for index in range(5):
            trace.record(float(index), TraceEventKind.SEND, "a")
        rendered = trace.render(limit=2)
        assert "and 3 more" in rendered

    def test_order_preserved_vacuously_true(self):
        trace = MessageTrace()
        assert trace.order_preserved("a", "b")

    def test_order_uses_origin_payload_for_forwarded_messages(self):
        trace = MessageTrace()
        first = Message(
            name="m1", source="relay", destination="b",
            payload={"origin": "a"}, sequence=2,
        )
        second = Message(
            name="m2", source="relay", destination="b",
            payload={"origin": "a"}, sequence=1,
        )
        trace.record(1.0, TraceEventKind.DELIVER, "b", first)
        trace.record(2.0, TraceEventKind.DELIVER, "b", second)
        assert not trace.order_preserved("a", "b")
        assert trace.delivery_order("b", sender="a") == ("m1", "m2")
