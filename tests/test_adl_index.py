"""Property-style equivalence tests for the communication index.

The index memoizes graphs, BFS trees, and reachability sets; these tests
assert that every cached answer matches a fresh-BFS reference computed the
way the pre-index implementation did — across generated architectures,
direction-sensitivity, ``via``/``avoiding`` combinations, and after
structural mutations that must invalidate the fingerprint.
"""

from __future__ import annotations

import itertools

import networkx as nx
import pytest

from repro.adl.graph import (
    can_communicate,
    communication_graph,
    communication_path,
    directed_communication_graph,
    reachable_elements,
)
from repro.adl.index import (
    CommunicationIndex,
    communication_index,
    structural_fingerprint,
)
from repro.adl.structure import Architecture, Direction, Interface
from repro.errors import ArchitectureError
from repro.systems.generators import SyntheticSpec, build_synthetic


# ----------------------------------------------------------------------
# Fresh-BFS reference implementations (the historical algorithm)
# ----------------------------------------------------------------------


def reference_path(
    architecture, source, target, respect_directions=False, via=None, avoiding=None
):
    """The pre-index algorithm: fresh graph per query, pairwise BFS,
    node removal for ``avoiding`` (safe here: the graph is private)."""
    graph = (
        directed_communication_graph(architecture)
        if respect_directions
        else communication_graph(architecture)
    )
    if avoiding:
        graph.remove_nodes_from(
            [name for name in avoiding if name not in (source, target)]
        )
    waypoints = [source, *(via or ()), target]
    full_path = [source]
    for hop_source, hop_target in zip(waypoints, waypoints[1:]):
        if hop_source not in graph or hop_target not in graph:
            return None
        try:
            hop = nx.shortest_path(graph, hop_source, hop_target)
        except nx.NetworkXNoPath:
            return None
        full_path.extend(hop[1:])
    return tuple(full_path)


def reference_reachable(architecture, source, respect_directions=False):
    graph = (
        directed_communication_graph(architecture)
        if respect_directions
        else communication_graph(architecture)
    )
    if respect_directions:
        return frozenset(nx.descendants(graph, source))
    return frozenset(nx.node_connected_component(graph, source) - {source})


def assert_valid_path(architecture, path, source, target, respect_directions):
    """A reported path must start/end correctly and follow actual links."""
    assert path[0] == source and path[-1] == target
    graph = (
        directed_communication_graph(architecture)
        if respect_directions
        else communication_graph(architecture)
    )
    for step_from, step_to in zip(path, path[1:]):
        assert graph.has_edge(step_from, step_to), (step_from, step_to)


# ----------------------------------------------------------------------
# Architectures under test
# ----------------------------------------------------------------------


def hub_architecture(seed: int, components: int) -> Architecture:
    return build_synthetic(
        SyntheticSpec(components=components, scenarios=1, seed=seed)
    ).architecture


def layered_architecture() -> Architecture:
    """A three-tier chain with a side branch and one-way links — small
    enough to enumerate every element pair, rich enough to make the
    directed and undirected answers diverge."""
    architecture = Architecture("layered")
    architecture.add_component("ui", interfaces=[Interface("out", Direction.OUT)])
    architecture.add_component(
        "logic",
        interfaces=[
            Interface("in", Direction.IN),
            Interface("out", Direction.OUT),
        ],
    )
    architecture.add_component(
        "store", interfaces=[Interface("in", Direction.IN)]
    )
    architecture.add_component("audit")
    architecture.add_connector("rpc")
    architecture.add_connector("db-bus")
    architecture.link(("ui", "out"), ("rpc", "a"))
    architecture.link(("rpc", "b"), ("logic", "in"))
    architecture.link(("logic", "out"), ("db-bus", "a"))
    architecture.link(("db-bus", "b"), ("store", "in"))
    architecture.link(("logic", "audit-port"), ("audit", "port"))
    architecture.validate()
    return architecture


@pytest.fixture(params=["hub-small", "hub-large", "layered"])
def architecture(request) -> Architecture:
    builders = {
        "hub-small": lambda: hub_architecture(seed=1, components=4),
        "hub-large": lambda: hub_architecture(seed=2, components=12),
        "layered": layered_architecture,
    }
    return builders[request.param]()


def element_names(architecture) -> list[str]:
    return [c.name for c in architecture.components] + [
        c.name for c in architecture.connectors
    ]


# ----------------------------------------------------------------------
# Equivalence properties
# ----------------------------------------------------------------------


class TestIndexedAnswersMatchFreshBfs:
    @pytest.mark.parametrize("respect_directions", [False, True])
    def test_path_and_can_communicate_every_pair(
        self, architecture, respect_directions
    ):
        index = CommunicationIndex(architecture)
        names = element_names(architecture)
        for source, target in itertools.product(names, names):
            expected = reference_path(
                architecture, source, target, respect_directions
            )
            actual = index.path(
                source, target, respect_directions=respect_directions
            )
            assert (actual is None) == (expected is None), (source, target)
            assert index.can_communicate(
                source, target, respect_directions=respect_directions
            ) == (expected is not None)
            if actual is not None:
                # Several shortest paths may exist; require equal length
                # and that the reported one is genuinely walkable.
                assert len(actual) == len(expected)
                assert_valid_path(
                    architecture, actual, source, target, respect_directions
                )

    @pytest.mark.parametrize("respect_directions", [False, True])
    def test_reachable_every_source(self, architecture, respect_directions):
        index = CommunicationIndex(architecture)
        for source in element_names(architecture):
            assert index.reachable(
                source, respect_directions=respect_directions
            ) == reference_reachable(architecture, source, respect_directions)

    def test_via_and_avoiding_combinations(self, architecture):
        index = CommunicationIndex(architecture)
        names = element_names(architecture)
        source, target = names[0], names[-1]
        waypoints = names[1 : len(names) - 1]
        cases = [
            {"via": [w]} for w in waypoints[:3]
        ] + [
            {"avoiding": [w]} for w in waypoints[:3]
        ] + [
            {"via": [w], "avoiding": [x]}
            for w, x in itertools.product(waypoints[:2], waypoints[:2])
            if w != x
        ]
        for kwargs in cases:
            for respect_directions in (False, True):
                expected = reference_path(
                    architecture, source, target, respect_directions, **kwargs
                )
                actual = index.path(
                    source,
                    target,
                    respect_directions=respect_directions,
                    **kwargs,
                )
                assert (actual is None) == (expected is None), kwargs
                if actual is not None:
                    assert len(actual) == len(expected), kwargs

    def test_best_path_between_matches_pairwise_minimum(self, architecture):
        index = CommunicationIndex(architecture)
        names = element_names(architecture)
        groups = [names[:2], names[-2:], [names[0], names[-1]]]
        for sources, targets in itertools.product(groups, groups):
            pairwise = [
                reference_path(architecture, s, t)
                for s in sources
                for t in targets
            ]
            lengths = [len(p) for p in pairwise if p is not None]
            best = index.best_path_between(sources, targets)
            if not lengths:
                assert best is None
            else:
                assert best is not None
                assert len(best) == min(lengths)

    def test_memoized_and_unmemoized_answers_are_identical(self, architecture):
        """memoize=False rebuilds everything per query but runs the same
        search; answers must match the warm index tuple-for-tuple."""
        warm = CommunicationIndex(architecture, memoize=True)
        cold = CommunicationIndex(architecture, memoize=False)
        names = element_names(architecture)
        for source, target in itertools.product(names[:4], names[:4]):
            for respect_directions in (False, True):
                assert warm.path(
                    source, target, respect_directions=respect_directions
                ) == cold.path(
                    source, target, respect_directions=respect_directions
                )
                assert warm.reachable(
                    source, respect_directions=respect_directions
                ) == cold.reachable(
                    source, respect_directions=respect_directions
                )
        assert warm.best_path_between(names[:2], names[-2:]) == (
            cold.best_path_between(names[:2], names[-2:])
        )
        assert warm.articulation_components() == cold.articulation_components()
        assert warm.is_fully_connected() == cold.is_fully_connected()


class TestInvalidation:
    def test_mutation_invalidates_fingerprint(self):
        architecture = hub_architecture(seed=3, components=6)
        index = CommunicationIndex(architecture)
        before = index.path("component-0", "component-5")
        assert before is not None
        fingerprint_before = structural_fingerprint(architecture)

        architecture.excise_links_between("component-5", "bus")
        assert structural_fingerprint(architecture) != fingerprint_before
        assert index.path("component-0", "component-5") is None
        assert index.can_communicate("component-0", "component-5") is False
        assert "component-5" not in index.reachable("component-0")

    def test_mutated_index_matches_fresh_index(self):
        architecture = hub_architecture(seed=4, components=6)
        index = CommunicationIndex(architecture)
        names = element_names(architecture)
        for source in names:
            index.reachable(source)  # warm every cache entry

        architecture.excise_links_between("component-2", "bus")
        architecture.add_component("late")
        architecture.link(("late", "port"), ("bus", "slot-late"), name="late-link")

        fresh = CommunicationIndex(architecture)
        for source in element_names(architecture):
            assert index.reachable(source) == fresh.reachable(source)
            assert index.reachable(source, respect_directions=True) == (
                fresh.reachable(source, respect_directions=True)
            )
        assert index.articulation_components() == fresh.articulation_components()

    def test_interface_direction_change_invalidates(self):
        architecture = Architecture("flip")
        architecture.add_component(
            "a", interfaces=[Interface("p", Direction.OUT)]
        )
        architecture.add_component(
            "b", interfaces=[Interface("q", Direction.IN)]
        )
        architecture.link(("a", "p"), ("b", "q"))
        index = CommunicationIndex(architecture)
        assert index.can_communicate("a", "b", respect_directions=True)
        assert not index.can_communicate("b", "a", respect_directions=True)

        # Reverse the link's direction by replacing both interfaces.
        architecture.component("a").interfaces["p"] = Interface(
            "p", Direction.IN
        )
        architecture.component("b").interfaces["q"] = Interface(
            "q", Direction.OUT
        )
        assert not index.can_communicate("a", "b", respect_directions=True)
        assert index.can_communicate("b", "a", respect_directions=True)

    def test_module_api_invalidation_after_mutation(self):
        """The weakly-cached shared index behind graph.py answers stale-free
        after mutation through the public Architecture API."""
        architecture = hub_architecture(seed=5, components=5)
        assert can_communicate(architecture, "component-0", "component-4")
        architecture.excise_links_between("component-4", "bus")
        assert not can_communicate(architecture, "component-0", "component-4")
        assert (
            communication_path(architecture, "component-0", "component-4")
            is None
        )
        assert "component-4" not in reachable_elements(
            architecture, "component-0"
        )


class TestIndexStats:
    def test_warm_requery_is_a_hit(self):
        architecture = hub_architecture(seed=7, components=6)
        index = CommunicationIndex(architecture)
        index.can_communicate("component-0", "component-3")
        cold = index.stats()
        assert cold.misses > 0
        assert cold.build_seconds > 0.0

        index.can_communicate("component-0", "component-3")
        warm = index.stats()
        assert warm.hits == cold.hits + 1
        assert warm.misses == cold.misses
        assert warm.invalidations == 0

    def test_structural_mutation_records_invalidation(self):
        architecture = hub_architecture(seed=7, components=6)
        index = CommunicationIndex(architecture)
        index.can_communicate("component-0", "component-3")
        assert index.stats().invalidations == 0

        architecture.excise_links_between("component-3", "bus")
        index.can_communicate("component-0", "component-1")
        stats = index.stats()
        assert stats.invalidations == 1
        # The rebuild after invalidation is a fresh miss, not a hit.
        assert stats.misses > 1

    def test_unmemoized_index_only_misses(self):
        architecture = hub_architecture(seed=7, components=6)
        index = CommunicationIndex(architecture, memoize=False)
        index.path("component-0", "component-3")
        index.path("component-0", "component-3")
        stats = index.stats()
        assert stats.hits == 0
        assert stats.misses >= 2

    def test_stats_snapshot_and_reset(self):
        architecture = hub_architecture(seed=7, components=4)
        index = CommunicationIndex(architecture)
        index.reachable("component-0")
        snapshot = index.stats()
        assert snapshot.to_dict()["misses"] == snapshot.misses
        assert 0.0 <= snapshot.hit_rate <= 1.0
        index.reset_stats()
        zeroed = index.stats()
        assert (zeroed.hits, zeroed.misses, zeroed.invalidations) == (0, 0, 0)
        assert zeroed.build_seconds == 0.0
        # Caches survive the reset: the next query is a pure hit.
        index.reachable("component-0")
        assert index.stats().hits == 1
        assert index.stats().misses == 0


class TestSharedIndex:
    def test_communication_index_is_cached_per_object(self):
        architecture = hub_architecture(seed=6, components=3)
        assert communication_index(architecture) is communication_index(
            architecture
        )

    def test_distinct_objects_get_distinct_indices(self):
        architecture = hub_architecture(seed=6, components=3)
        clone = architecture.clone()
        assert communication_index(architecture) is not communication_index(
            clone
        )

    def test_unknown_elements_raise(self):
        architecture = hub_architecture(seed=6, components=3)
        index = communication_index(architecture)
        with pytest.raises(ArchitectureError):
            index.path("ghost", "component-0")
        with pytest.raises(ArchitectureError):
            index.can_communicate("component-0", "ghost")
        with pytest.raises(ArchitectureError):
            index.reachable("ghost")

    def test_unknown_via_waypoint_returns_none(self):
        architecture = hub_architecture(seed=6, components=3)
        index = communication_index(architecture)
        assert (
            index.path("component-0", "component-1", via=["nonexistent"])
            is None
        )
