"""Tests for the PIMS behavioral model and dynamic execution."""

from __future__ import annotations

from repro.adl.behavior import Statechart
from repro.core.dynamic import DynamicEvaluator
from repro.sim.network import ChannelPolicy
from repro.sim.runtime import RuntimeConfig
from repro.systems.pims import (
    CURRENT_SHARE_PRICES,
    DATA_ACCESS,
    DATA_REPOSITORY,
    GET_SHARE_PRICES,
    LOADER,
    MASTER_CONTROLLER,
    PRICE_QUERY,
    REMOTE_SHARE_DB,
    STORE_RECORD,
    build_pims,
    build_pims_bindings,
)


def evaluator_for(pims, latency: float = 1.0, bindings=None):
    return DynamicEvaluator(
        pims.architecture,
        bindings or pims.bindings,
        config=RuntimeConfig(policy=ChannelPolicy(latency=latency)),
    )


class TestBehavioralModel:
    def test_charts_attached(self, pims):
        for element in (LOADER, REMOTE_SHARE_DB, DATA_ACCESS, MASTER_CONTROLLER):
            assert isinstance(pims.architecture.behavior(element), Statechart)

    def test_loader_chart_round_trips_through_xadl(self, pims):
        from repro.adl.xadl import parse_xadl, to_xadl_xml

        parsed = parse_xadl(to_xadl_xml(pims.architecture))
        chart = parsed.behavior(LOADER)
        assert isinstance(chart, Statechart)
        publish = next(
            action
            for transition in chart.transitions
            for action in transition.actions
            if action.message == CURRENT_SHARE_PRICES
        )
        assert publish.message_kind == "notification"


class TestDynamicShareFlow:
    def test_full_flow_passes_on_fast_network(self, pims):
        verdict = evaluator_for(pims).evaluate(
            pims.scenarios.get(GET_SHARE_PRICES), pims.scenarios
        )
        assert verdict.passed, verdict.render()

    def test_messages_reach_all_stations(self, pims):
        verdict = evaluator_for(pims).evaluate(
            pims.scenarios.get(GET_SHARE_PRICES), pims.scenarios
        )
        trace = verdict.trace
        assert trace.was_delivered(PRICE_QUERY, REMOTE_SHARE_DB)
        assert trace.was_delivered(CURRENT_SHARE_PRICES, MASTER_CONTROLLER)
        assert trace.was_delivered(STORE_RECORD, DATA_REPOSITORY)

    def test_performance_requirement_fails_on_slow_network(self, pims):
        verdict = evaluator_for(pims, latency=6.0).evaluate(
            pims.scenarios.get(GET_SHARE_PRICES), pims.scenarios
        )
        assert not verdict.passed
        assert any(
            "performance requirement" in finding.message
            for finding in verdict.findings
        )

    def test_deadline_is_configurable(self, pims):
        generous = build_pims_bindings(display_deadline=1000.0)
        verdict = evaluator_for(pims, latency=6.0, bindings=generous).evaluate(
            pims.scenarios.get(GET_SHARE_PRICES), pims.scenarios
        )
        assert verdict.passed

    def test_excised_architecture_fails_dynamically_at_save(self, pims):
        """The dynamic counterpart of Fig. 4: on the fault-seeded
        architecture the prices are downloaded and displayed but never
        persisted."""
        evaluator = DynamicEvaluator(
            pims.excised_architecture(),
            pims.bindings,
            config=RuntimeConfig(policy=ChannelPolicy(latency=1.0)),
        )
        verdict = evaluator.evaluate(
            pims.scenarios.get(GET_SHARE_PRICES), pims.scenarios
        )
        assert not verdict.passed
        (finding,) = verdict.findings
        assert finding.event_label == "4"
        assert "never persisted" in finding.message
        # The earlier steps still succeeded at run time.
        assert verdict.trace.was_delivered(
            CURRENT_SHARE_PRICES, MASTER_CONTROLLER
        )

    def test_other_scenarios_unaffected_by_bindings(self, pims):
        """Scenarios without bound share-price events trivially pass the
        dynamic check (their display/save expectations are guarded)."""
        verdict = evaluator_for(pims).evaluate(
            pims.scenarios.get("login"), pims.scenarios
        )
        assert verdict.passed

    def test_replies_do_not_traverse_forbidden_forward_links(self, pims):
        """Direction fidelity: the published notification reaches the
        Master Controller by flowing back along invocation links, but no
        request ever flows from a lower layer up into the controller."""
        verdict = evaluator_for(pims).evaluate(
            pims.scenarios.get(GET_SHARE_PRICES), pims.scenarios
        )
        upward_requests = [
            event
            for event in verdict.trace.deliveries_to(MASTER_CONTROLLER)
            if event.message is not None and event.message.kind == "request"
        ]
        assert upward_requests == []
