"""Unit tests for entity-based mapping (paper §8 future work)."""

from __future__ import annotations

import pytest

from repro.core.entity_mapping import EntityMapping
from repro.core.mapping import Mapping
from repro.errors import MappingError
from repro.scenarioml.events import TypedEvent
from repro.scenarioml.scenario import Scenario, ScenarioSet


class TestEntityMapping:
    def test_map_entity_requires_known_entity(
        self, small_ontology, chain_architecture
    ):
        mapping = EntityMapping(small_ontology, chain_architecture)
        with pytest.raises(MappingError):
            mapping.map_entity("ghost", "ui")

    def test_map_entity_requires_known_component(
        self, small_ontology, chain_architecture
    ):
        mapping = EntityMapping(small_ontology, chain_architecture)
        with pytest.raises(MappingError):
            mapping.map_entity("alice", "ghost")

    def test_map_entity_requires_components(
        self, small_ontology, chain_architecture
    ):
        mapping = EntityMapping(small_ontology, chain_architecture)
        with pytest.raises(MappingError):
            mapping.map_entity("alice")

    def test_individual_mapping(self, small_ontology, chain_architecture):
        mapping = EntityMapping(small_ontology, chain_architecture)
        mapping.map_entity("alice", "ui")
        assert mapping.components_for_entity("alice") == ("ui",)

    def test_individual_inherits_class_mapping(
        self, small_ontology, chain_architecture
    ):
        mapping = EntityMapping(small_ontology, chain_architecture)
        mapping.map_entity("Human", "ui")
        assert mapping.components_for_entity("alice") == ("ui",)

    def test_individual_inherits_superclass_mapping(
        self, small_ontology, chain_architecture
    ):
        mapping = EntityMapping(small_ontology, chain_architecture)
        mapping.map_entity("Actor", "logic")
        assert mapping.components_for_entity("alice") == ("logic",)
        assert mapping.components_for_entity("backend") == ("logic",)

    def test_own_mapping_combines_with_inherited(
        self, small_ontology, chain_architecture
    ):
        mapping = EntityMapping(small_ontology, chain_architecture)
        mapping.map_entity("alice", "ui")
        mapping.map_entity("Actor", "logic")
        assert mapping.components_for_entity("alice") == ("ui", "logic")

    def test_components_for_event(self, small_ontology, chain_architecture):
        mapping = EntityMapping(small_ontology, chain_architecture)
        mapping.map_entity("alice", "ui")
        event = TypedEvent(type_name="notify", arguments={"who": "alice"})
        assert mapping.components_for_event(event) == ("ui",)

    def test_components_for_event_ignores_literals(
        self, small_ontology, chain_architecture
    ):
        mapping = EntityMapping(small_ontology, chain_architecture)
        mapping.map_entity("alice", "ui")
        event = TypedEvent(
            type_name="notify", arguments={"who": "unmodeled person"}
        )
        assert mapping.components_for_event(event) == ()

    def test_derive_event_mapping(self, small_ontology, chain_architecture):
        entity_mapping = EntityMapping(small_ontology, chain_architecture)
        entity_mapping.map_entity("alice", "ui")
        scenarios = ScenarioSet(small_ontology)
        scenarios.add(
            Scenario(
                name="s",
                events=(
                    TypedEvent(type_name="notify", arguments={"who": "alice"}),
                ),
            )
        )
        derived = entity_mapping.derive_event_mapping(scenarios)
        assert derived.components_for("notify") == ("ui",)

    def test_derive_with_base_mapping_merges(
        self, small_ontology, chain_architecture
    ):
        base = Mapping(small_ontology, chain_architecture)
        base.map_event("notify", "logic")
        entity_mapping = EntityMapping(small_ontology, chain_architecture)
        entity_mapping.map_entity("alice", "ui")
        scenarios = ScenarioSet(small_ontology)
        scenarios.add(
            Scenario(
                name="s",
                events=(
                    TypedEvent(type_name="notify", arguments={"who": "alice"}),
                ),
            )
        )
        derived = entity_mapping.derive_event_mapping(scenarios, base=base)
        assert derived.components_for("notify") == ("logic", "ui")

    def test_new_event_type_over_known_entities_needs_no_new_links(
        self, small_ontology, chain_architecture
    ):
        """The paper's evolution hypothesis: introducing a new event type
        that talks about already-mapped entities requires no mapping
        work."""
        small_ontology.define_event_type(
            "escort", "The system escorts [who]", parameters=["who"]
        )
        entity_mapping = EntityMapping(small_ontology, chain_architecture)
        entity_mapping.map_entity("alice", "ui")
        scenarios = ScenarioSet(small_ontology)
        scenarios.add(
            Scenario(
                name="s",
                events=(
                    TypedEvent(type_name="escort", arguments={"who": "alice"}),
                ),
            )
        )
        derived = entity_mapping.derive_event_mapping(scenarios)
        assert derived.components_for("escort") == ("ui",)

    def test_entries_copy(self, small_ontology, chain_architecture):
        mapping = EntityMapping(small_ontology, chain_architecture)
        mapping.map_entity("alice", "ui")
        entries = mapping.entries
        entries["alice"] = ("hacked",)
        assert mapping.components_for_entity("alice") == ("ui",)
