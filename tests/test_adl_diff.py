"""Unit tests for architecture diffing."""

from __future__ import annotations

from repro.adl.diff import ArchitectureDiff, diff_architectures
from repro.adl.structure import Architecture


def base() -> Architecture:
    architecture = Architecture("base")
    architecture.add_component("a", description="first")
    architecture.add_component("b")
    architecture.add_connector("c")
    architecture.link(("a", "p"), ("c", "x"))
    architecture.link(("c", "y"), ("b", "q"))
    return architecture


class TestDiff:
    def test_identical_architectures_empty_diff(self):
        diff = diff_architectures(base(), base())
        assert diff.is_empty
        assert diff.summary() == "no structural changes"

    def test_clone_is_identical(self):
        original = base()
        assert diff_architectures(original, original.clone("copy")).is_empty

    def test_added_and_removed_components(self):
        old = base()
        new = base()
        new.add_component("extra")
        diff = diff_architectures(old, new)
        assert diff.added_components == ("extra",)
        reverse = diff_architectures(new, old)
        assert reverse.removed_components == ("extra",)

    def test_added_and_removed_connectors(self):
        old = base()
        new = base()
        new.add_connector("extra-conn")
        diff = diff_architectures(old, new)
        assert diff.added_connectors == ("extra-conn",)

    def test_link_changes_by_endpoints_not_names(self):
        old = base()
        new = base()
        # Remove and re-add the same link under a different name: no change.
        link = new.links_between("a", "c")[0]
        new.remove_link(link.name)
        new.link(("a", "p"), ("c", "x"), name="renamed")
        assert diff_architectures(old, new).is_empty

    def test_removed_link_detected(self):
        old = base()
        new = base()
        new.excise_links_between("a", "c")
        diff = diff_architectures(old, new)
        assert diff.removed_links == (("a.p", "c.x"),)
        assert not diff.added_links

    def test_description_change_detected(self):
        old = base()
        new = base()
        new.component("a").description = "changed"
        diff = diff_architectures(old, new)
        assert len(diff.changed_elements) == 1
        change = diff.changed_elements[0]
        assert change.attribute == "description"
        assert change.old_value == "first"
        assert change.new_value == "changed"

    def test_property_change_detected(self):
        old = base()
        new = base()
        new.component("a").properties["layer"] = "9"
        diff = diff_architectures(old, new)
        assert any(c.attribute == "layer" for c in diff.changed_elements)

    def test_interface_change_detected(self):
        old = base()
        new = base()
        new.component("b").add_interface("extra")
        diff = diff_architectures(old, new)
        assert any(c.attribute == "interfaces" for c in diff.changed_elements)

    def test_responsibility_change_detected(self):
        old = base()
        new = base()
        object.__setattr__  # no-op hint: responsibilities are plain attrs
        new.component("a").responsibilities = ("new duty",)
        diff = diff_architectures(old, new)
        assert any(
            c.attribute == "responsibilities" for c in diff.changed_elements
        )

    def test_touched_elements_cover_links_and_changes(self):
        old = base()
        new = base()
        new.excise_links_between("a", "c")
        new.component("b").description = "changed"
        new.add_component("fresh")
        touched = diff_architectures(old, new).touched_elements()
        assert touched == {"a", "b", "c", "fresh"}

    def test_summary_mentions_everything(self):
        old = base()
        new = base()
        new.add_component("fresh")
        new.excise_links_between("a", "c")
        summary = diff_architectures(old, new).summary()
        assert "components added: fresh" in summary
        assert "links removed" in summary

    def test_excised_pims_differs_only_by_one_link(self, pims):
        variant = pims.excised_architecture()
        diff = diff_architectures(pims.architecture, variant)
        assert not diff.added_components
        assert not diff.removed_components
        assert not diff.changed_elements
        assert len(diff.removed_links) == 1
        assert diff.touched_elements() == {"Loader", "data-bus"}
