"""Unit tests for the static walkthrough engine."""

from __future__ import annotations

import pytest

from repro.core.consistency import InconsistencyKind, Severity
from repro.core.mapping import Mapping
from repro.core.walkthrough import WalkthroughEngine, WalkthroughOptions
from repro.errors import EvaluationError
from repro.scenarioml.events import Alternation, SimpleEvent, TypedEvent
from repro.scenarioml.scenario import Scenario, ScenarioSet


def scenario_of(*events, name="s") -> Scenario:
    return Scenario(name=name, events=tuple(events))


def typed(type_name, **arguments) -> TypedEvent:
    return TypedEvent(type_name=type_name, arguments=arguments)


class TestOptions:
    def test_rejects_unknown_policy(self):
        with pytest.raises(EvaluationError):
            WalkthroughOptions(unmapped_event_policy="explode")

    def test_direction_overrides_default_to_global(self):
        options = WalkthroughOptions(respect_directions=True)
        assert options.intra_event_directed
        assert options.inter_event_directed

    def test_direction_overrides_can_split(self):
        options = WalkthroughOptions(
            respect_directions=False, intra_event_respect_directions=True
        )
        assert options.intra_event_directed
        assert not options.inter_event_directed


class TestBasicWalkthrough:
    def test_connected_chain_passes(
        self, small_ontology, chain_architecture, chain_mapping
    ):
        scenarios = ScenarioSet(small_ontology)
        scenarios.add(
            scenario_of(
                typed("notify", who="alice"),
                typed("create", subject="w"),
            )
        )
        engine = WalkthroughEngine(chain_architecture, chain_mapping)
        verdict = engine.walk_scenario(scenarios.get("s"), scenarios)
        assert verdict.passed
        steps = verdict.traces[0].steps
        assert steps[0].components == ("ui",)
        assert steps[1].path is not None

    def test_missing_inter_event_link_fails(
        self, small_ontology, chain_architecture, chain_mapping
    ):
        chain_architecture.excise_links_between("ui", "ui-logic")
        scenarios = ScenarioSet(small_ontology)
        scenarios.add(
            scenario_of(
                typed("notify", who="alice"),
                typed("create", subject="w"),
            )
        )
        engine = WalkthroughEngine(chain_architecture, chain_mapping)
        verdict = engine.walk_scenario(scenarios.get("s"), scenarios)
        assert not verdict.passed
        findings = verdict.all_inconsistencies()
        assert any(
            f.kind is InconsistencyKind.MISSING_LINK for f in findings
        )

    def test_intra_event_chain_break_fails(
        self, small_ontology, chain_architecture, chain_mapping
    ):
        chain_architecture.excise_links_between("logic", "logic-store")
        scenarios = ScenarioSet(small_ontology)
        scenarios.add(scenario_of(typed("create", subject="w")))
        engine = WalkthroughEngine(chain_architecture, chain_mapping)
        verdict = engine.walk_scenario(scenarios.get("s"), scenarios)
        assert not verdict.passed
        (finding,) = verdict.all_inconsistencies()
        assert finding.kind is InconsistencyKind.MISSING_LINK
        assert "logic" in finding.message and "store" in finding.message

    def test_intra_event_check_disabled(
        self, small_ontology, chain_architecture, chain_mapping
    ):
        chain_architecture.excise_links_between("logic", "logic-store")
        scenarios = ScenarioSet(small_ontology)
        scenarios.add(scenario_of(typed("create", subject="w")))
        engine = WalkthroughEngine(
            chain_architecture,
            chain_mapping,
            WalkthroughOptions(check_intra_event_chain=False),
        )
        assert engine.walk_scenario(scenarios.get("s"), scenarios).passed

    def test_inter_event_check_disabled(
        self, small_ontology, chain_architecture, chain_mapping
    ):
        chain_architecture.excise_links_between("ui", "ui-logic")
        scenarios = ScenarioSet(small_ontology)
        scenarios.add(
            scenario_of(
                typed("notify", who="alice"), typed("create", subject="w")
            )
        )
        engine = WalkthroughEngine(
            chain_architecture,
            chain_mapping,
            WalkthroughOptions(check_inter_event=False),
        )
        assert engine.walk_scenario(scenarios.get("s"), scenarios).passed

    def test_shared_component_between_events_is_trivially_connected(
        self, small_ontology, chain_architecture, chain_mapping
    ):
        scenarios = ScenarioSet(small_ontology)
        scenarios.add(
            scenario_of(
                typed("create", subject="w"), typed("destroy", subject="w")
            )
        )
        engine = WalkthroughEngine(chain_architecture, chain_mapping)
        verdict = engine.walk_scenario(scenarios.get("s"), scenarios)
        assert verdict.passed
        assert verdict.traces[0].steps[1].path == ("logic",)

    def test_isolated_shared_component_passes_with_trivial_path(
        self, small_ontology, chain_architecture, chain_mapping
    ):
        """Consecutive events on the same component pass with the trivial
        one-element path even when that component has no links at all —
        the report's path must agree with the ok verdict."""
        chain_architecture.excise_links_between("ui", "ui-logic")
        chain_mapping.unmap_event("create")
        chain_mapping.unmap_event("destroy")
        chain_mapping.map_event("create", "ui")
        chain_mapping.map_event("destroy", "ui")
        scenarios = ScenarioSet(small_ontology)
        scenarios.add(
            scenario_of(
                typed("create", subject="w"), typed("destroy", subject="w")
            )
        )
        engine = WalkthroughEngine(chain_architecture, chain_mapping)
        verdict = engine.walk_scenario(scenarios.get("s"), scenarios)
        assert verdict.passed
        step = verdict.traces[0].steps[1]
        assert step.ok
        assert step.path == ("ui",)

    def test_directed_inter_event_check(
        self, small_ontology, chain_architecture, chain_mapping
    ):
        scenarios = ScenarioSet(small_ontology)
        # notify maps to ui; create maps to logic,store. With directions,
        # logic cannot reach ui (store->ui impossible), so reversed order
        # fails while forward order passes.
        scenarios.add(
            scenario_of(
                typed("create", subject="w"),
                typed("notify", who="alice"),
                name="reversed",
            )
        )
        engine = WalkthroughEngine(
            chain_architecture,
            chain_mapping,
            WalkthroughOptions(respect_directions=True),
        )
        verdict = engine.walk_scenario(scenarios.get("reversed"), scenarios)
        assert not verdict.passed


class TestPolicies:
    def test_simple_event_warns_by_default(
        self, small_ontology, chain_architecture, chain_mapping
    ):
        scenarios = ScenarioSet(small_ontology)
        scenarios.add(scenario_of(SimpleEvent(text="just prose")))
        engine = WalkthroughEngine(chain_architecture, chain_mapping)
        verdict = engine.walk_scenario(scenarios.get("s"), scenarios)
        assert verdict.passed
        (finding,) = verdict.all_inconsistencies()
        assert finding.severity is Severity.WARNING

    def test_simple_event_error_policy(
        self, small_ontology, chain_architecture, chain_mapping
    ):
        scenarios = ScenarioSet(small_ontology)
        scenarios.add(scenario_of(SimpleEvent(text="just prose")))
        engine = WalkthroughEngine(
            chain_architecture,
            chain_mapping,
            WalkthroughOptions(simple_event_policy="error"),
        )
        verdict = engine.walk_scenario(scenarios.get("s"), scenarios)
        assert not verdict.passed

    def test_simple_event_ignore_policy(
        self, small_ontology, chain_architecture, chain_mapping
    ):
        scenarios = ScenarioSet(small_ontology)
        scenarios.add(scenario_of(SimpleEvent(text="just prose")))
        engine = WalkthroughEngine(
            chain_architecture,
            chain_mapping,
            WalkthroughOptions(simple_event_policy="ignore"),
        )
        verdict = engine.walk_scenario(scenarios.get("s"), scenarios)
        assert verdict.passed
        assert verdict.all_inconsistencies() == ()

    def test_unmapped_event_warns_by_default(
        self, small_ontology, chain_architecture
    ):
        mapping = Mapping(small_ontology, chain_architecture)
        scenarios = ScenarioSet(small_ontology)
        scenarios.add(scenario_of(typed("create", subject="w")))
        engine = WalkthroughEngine(chain_architecture, mapping)
        verdict = engine.walk_scenario(scenarios.get("s"), scenarios)
        assert verdict.passed
        (finding,) = verdict.all_inconsistencies()
        assert finding.kind is InconsistencyKind.UNMAPPED_EVENT
        assert finding.severity is Severity.WARNING

    def test_unmapped_event_error_policy(
        self, small_ontology, chain_architecture
    ):
        mapping = Mapping(small_ontology, chain_architecture)
        scenarios = ScenarioSet(small_ontology)
        scenarios.add(scenario_of(typed("create", subject="w")))
        engine = WalkthroughEngine(
            chain_architecture,
            mapping,
            WalkthroughOptions(unmapped_event_policy="error"),
        )
        verdict = engine.walk_scenario(scenarios.get("s"), scenarios)
        assert not verdict.passed

    def test_unmapped_event_does_not_update_focus(
        self, small_ontology, chain_architecture, chain_mapping
    ):
        """An unmapped event is skipped; connectivity is checked from the
        last mapped event, not from nothing."""
        chain_mapping.unmap_event("destroy")
        scenarios = ScenarioSet(small_ontology)
        scenarios.add(
            scenario_of(
                typed("notify", who="alice"),
                typed("destroy", subject="w"),
                typed("create", subject="w"),
            )
        )
        engine = WalkthroughEngine(chain_architecture, chain_mapping)
        verdict = engine.walk_scenario(scenarios.get("s"), scenarios)
        steps = verdict.traces[0].steps
        assert steps[2].path is not None
        assert steps[2].path[0] == "ui"


class TestTracesAndSupertypes:
    def test_all_alternation_branches_walked(
        self, small_ontology, chain_architecture, chain_mapping
    ):
        scenarios = ScenarioSet(small_ontology)
        scenarios.add(
            scenario_of(
                Alternation(
                    branches=(
                        typed("create", subject="w"),
                        typed("destroy", subject="w"),
                    )
                )
            )
        )
        engine = WalkthroughEngine(chain_architecture, chain_mapping)
        verdict = engine.walk_scenario(scenarios.get("s"), scenarios)
        assert len(verdict.traces) == 2
        assert verdict.passed

    def test_one_failing_branch_fails_scenario(
        self, small_ontology, chain_architecture, chain_mapping
    ):
        chain_mapping.unmap_event("destroy")
        chain_mapping.map_event("destroy", "ui", "store")
        chain_architecture.excise_links_between("ui", "ui-logic")
        scenarios = ScenarioSet(small_ontology)
        scenarios.add(
            scenario_of(
                Alternation(
                    branches=(
                        typed("create", subject="w"),
                        typed("destroy", subject="w"),
                    )
                )
            )
        )
        engine = WalkthroughEngine(chain_architecture, chain_mapping)
        verdict = engine.walk_scenario(scenarios.get("s"), scenarios)
        assert not verdict.passed
        passed_by_trace = [t.passed for t in verdict.traces]
        assert True in passed_by_trace and False in passed_by_trace

    def test_supertype_mapping_used_in_walkthrough(
        self, small_ontology, chain_architecture
    ):
        mapping = Mapping(small_ontology, chain_architecture)
        mapping.map_event("act", "logic")
        scenarios = ScenarioSet(small_ontology)
        scenarios.add(scenario_of(typed("create", subject="w")))
        engine = WalkthroughEngine(chain_architecture, mapping)
        verdict = engine.walk_scenario(scenarios.get("s"), scenarios)
        assert verdict.passed
        assert verdict.traces[0].steps[0].components == ("logic",)

    def test_walk_all_covers_every_scenario(
        self, small_scenarios, chain_architecture, chain_mapping
    ):
        engine = WalkthroughEngine(chain_architecture, chain_mapping)
        verdicts = engine.walk_all(small_scenarios)
        assert [v.scenario for v in verdicts] == [
            "make-widget",
            "drop-widget",
        ]

    def test_mapping_rebound_to_new_architecture_object(
        self, small_ontology, chain_architecture, chain_mapping
    ):
        clone = chain_architecture.clone("clone")
        engine = WalkthroughEngine(clone, chain_mapping)
        assert engine.mapping.architecture is clone

    def test_step_rendering_mentions_status(
        self, small_ontology, chain_architecture, chain_mapping
    ):
        scenarios = ScenarioSet(small_ontology)
        scenarios.add(scenario_of(typed("notify", who="alice")))
        engine = WalkthroughEngine(chain_architecture, chain_mapping)
        verdict = engine.walk_scenario(scenarios.get("s"), scenarios)
        rendered = verdict.render()
        assert rendered.startswith("PASS s")
        assert "[ok]" in rendered
