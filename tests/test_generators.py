"""Unit tests for the synthetic system generator."""

from __future__ import annotations

import pytest

from repro.core.walkthrough import WalkthroughEngine
from repro.scenarioml.query import reuse_factor
from repro.scenarioml.validation import IssueSeverity, validate_scenario_set
from repro.systems.generators import SyntheticSpec, build_synthetic


class TestSpec:
    def test_rejects_zero_sizes(self):
        with pytest.raises(ValueError):
            SyntheticSpec(event_types=0)
        with pytest.raises(ValueError):
            SyntheticSpec(components=0)
        with pytest.raises(ValueError):
            SyntheticSpec(scenarios=0)
        with pytest.raises(ValueError):
            SyntheticSpec(events_per_scenario=0)

    def test_rejects_negative_reuse(self):
        with pytest.raises(ValueError):
            SyntheticSpec(reuse=-1.0)


class TestGeneration:
    def test_sizes_match_spec(self):
        spec = SyntheticSpec(
            event_types=12, components=7, scenarios=5, events_per_scenario=6
        )
        system = build_synthetic(spec)
        assert len(system.ontology.event_types) == 12
        assert len(system.architecture.components) == 7
        assert len(system.scenarios) == 5
        for scenario in system.scenarios:
            assert len(scenario.events) == 6

    def test_deterministic_for_same_seed(self):
        spec = SyntheticSpec(seed=42)
        first = build_synthetic(spec)
        second = build_synthetic(spec)
        assert first.mapping.entries == second.mapping.entries
        first_types = [
            e.type_name
            for s in first.scenarios
            for e in s.typed_events()
        ]
        second_types = [
            e.type_name
            for s in second.scenarios
            for e in s.typed_events()
        ]
        assert first_types == second_types

    def test_different_seeds_differ(self):
        first = build_synthetic(SyntheticSpec(seed=1))
        second = build_synthetic(SyntheticSpec(seed=2))
        first_types = [
            e.type_name for s in first.scenarios for e in s.typed_events()
        ]
        second_types = [
            e.type_name for s in second.scenarios for e in s.typed_events()
        ]
        assert first_types != second_types

    def test_scenarios_validate(self):
        system = build_synthetic(SyntheticSpec())
        issues = validate_scenario_set(system.scenarios)
        assert [i for i in issues if i.severity is IssueSeverity.ERROR] == []

    def test_architecture_fully_connected(self):
        system = build_synthetic(SyntheticSpec(components=9))
        from repro.adl.graph import is_fully_connected

        assert is_fully_connected(system.architecture)

    def test_every_event_type_mapped(self):
        system = build_synthetic(SyntheticSpec())
        assert system.mapping.unmapped_event_types() == ()

    def test_higher_reuse_skew_increases_reuse_factor(self):
        flat = build_synthetic(
            SyntheticSpec(reuse=0.0, scenarios=20, events_per_scenario=10)
        )
        skewed = build_synthetic(
            SyntheticSpec(reuse=2.0, scenarios=20, events_per_scenario=10)
        )
        assert reuse_factor(skewed.scenarios.scenarios) > reuse_factor(
            flat.scenarios.scenarios
        )

    def test_walkthrough_passes_on_generated_system(self):
        system = build_synthetic(SyntheticSpec(scenarios=5))
        engine = WalkthroughEngine(system.architecture, system.mapping)
        verdicts = engine.walk_all(system.scenarios)
        assert all(v.passed for v in verdicts)

    def test_fan_out_capped_by_component_count(self):
        system = build_synthetic(
            SyntheticSpec(components=2, components_per_event_type=5)
        )
        for components in system.mapping.entries.values():
            assert len(components) <= 2
