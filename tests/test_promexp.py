"""Tests for the Prometheus text exposition renderer."""

from __future__ import annotations

import math
import re

import pytest

from repro.errors import ReproError
from repro.obs import (
    MetricsRegistry,
    PromSample,
    bounded_label_values,
    prometheus_metric_name,
    render_prometheus,
)
from repro.obs.promexp import CONTENT_TYPE

_NAME_LINE = re.compile(
    r"^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? (-?[0-9.e+-]+|NaN|[+-]Inf)$"
)


def _registry():
    registry = MetricsRegistry()
    registry.counter("walk.steps").inc(7)
    registry.gauge("index.entries").set(42.0)
    histogram = registry.histogram("walk.seconds")
    for value in (0.1, 0.2, 0.3, 0.4):
        histogram.observe(value)
    return registry


class TestMetricNames:
    def test_dots_collapse_to_underscores_with_prefix(self):
        assert (
            prometheus_metric_name("walkthrough.scenario_seconds")
            == "sosae_walkthrough_scenario_seconds"
        )

    def test_result_always_matches_the_grammar(self):
        for raw in ("a b", "9lives", "sim/queue", "höhe", ""):
            name = prometheus_metric_name(raw)
            assert re.match(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$", name)

    def test_custom_prefix(self):
        assert prometheus_metric_name("x", prefix="app_") == "app_x"


class TestRenderSnapshot:
    def test_counter_becomes_total_counter_family(self):
        text = render_prometheus(_registry().to_dict())
        assert "# TYPE sosae_walk_steps_total counter" in text
        assert "sosae_walk_steps_total 7" in text

    def test_gauge_family(self):
        text = render_prometheus(_registry().to_dict())
        assert "# TYPE sosae_index_entries gauge" in text
        assert "sosae_index_entries 42" in text

    def test_histogram_becomes_summary_with_quantiles(self):
        text = render_prometheus(_registry().to_dict())
        assert "# TYPE sosae_walk_seconds summary" in text
        assert 'sosae_walk_seconds{quantile="0.5"}' in text
        assert 'sosae_walk_seconds{quantile="0.95"}' in text
        assert 'sosae_walk_seconds{quantile="0.99"}' in text
        assert "sosae_walk_seconds_sum 1" in text
        assert "sosae_walk_seconds_count 4" in text

    def test_every_sample_line_is_well_formed(self):
        text = render_prometheus(
            _registry().to_dict(),
            extra=[PromSample("serve.up", 1.0)],
        )
        for line in text.splitlines():
            if line.startswith("#"):
                assert line.startswith(("# HELP ", "# TYPE "))
            else:
                assert _NAME_LINE.match(line), line

    def test_families_sort_by_rendered_name(self):
        text = render_prometheus(_registry().to_dict())
        headers = [
            line.split()[2]
            for line in text.splitlines()
            if line.startswith("# TYPE")
        ]
        assert headers == sorted(headers)

    def test_empty_snapshot_renders_empty(self):
        assert render_prometheus({}) == ""

    def test_ends_with_newline(self):
        assert render_prometheus(_registry().to_dict()).endswith("\n")

    def test_unknown_snapshot_type_is_an_error(self):
        with pytest.raises(ReproError, match="unknown snapshot type"):
            render_prometheus({"m": {"type": "mystery"}})


class TestExtraSamples:
    def test_labels_render_and_escape(self):
        text = render_prometheus(
            {},
            extra=[
                PromSample(
                    "serve.stage_wall_seconds",
                    1.5,
                    labels={"stage": 'wa"lk\nthrough\\'},
                )
            ],
        )
        assert (
            'stage="wa\\"lk\\nthrough\\\\"' in text
        )

    def test_counter_samples_get_total_suffix(self):
        text = render_prometheus(
            {},
            extra=[
                PromSample("serve.runs", 3, type="counter", help="Runs.")
            ],
        )
        assert "# HELP sosae_serve_runs_total Runs." in text
        assert "sosae_serve_runs_total 3" in text

    def test_same_name_samples_merge_into_one_family(self):
        text = render_prometheus(
            {},
            extra=[
                PromSample("alerts.active", 1, labels={"severity": "info"}),
                PromSample(
                    "alerts.active", 2, labels={"severity": "critical"}
                ),
            ],
        )
        assert text.count("# TYPE sosae_alerts_active gauge") == 1
        assert 'sosae_alerts_active{severity="info"} 1' in text
        assert 'sosae_alerts_active{severity="critical"} 2' in text

    def test_type_conflict_is_an_error(self):
        with pytest.raises(ReproError, match="declared both"):
            render_prometheus(
                {},
                extra=[
                    PromSample("x", 1, type="gauge"),
                    PromSample("x", 2, type="summary"),
                ],
            )

    def test_invalid_label_name_is_an_error(self):
        with pytest.raises(ReproError, match="invalid Prometheus label"):
            render_prometheus(
                {}, extra=[PromSample("x", 1, labels={"bad-key": "v"})]
            )

    def test_special_float_values(self):
        text = render_prometheus(
            {},
            extra=[
                PromSample("inf", math.inf),
                PromSample("ninf", -math.inf),
                PromSample("nan", math.nan),
            ],
        )
        assert "sosae_inf +Inf" in text
        assert "sosae_ninf -Inf" in text
        assert "sosae_nan NaN" in text

    def test_content_type_names_the_text_format(self):
        assert "version=0.0.4" in CONTENT_TYPE


class TestQuantileEdgeCases:
    """Histogram summary rendering at the reservoir's degenerate ends."""

    def test_empty_histogram_renders_no_quantile_lines(self):
        registry = MetricsRegistry()
        registry.histogram("idle_seconds")
        text = render_prometheus(registry.to_dict())
        assert 'quantile="' not in text
        assert "sosae_idle_seconds_count 0" in text
        assert "sosae_idle_seconds_sum 0" in text

    def test_single_sample_pins_every_quantile(self):
        registry = MetricsRegistry()
        registry.histogram("one_seconds").observe(0.25)
        text = render_prometheus(registry.to_dict())
        for quantile in ("0.5", "0.95", "0.99"):
            assert f'sosae_one_seconds{{quantile="{quantile}"}} 0.25' in text
        assert "sosae_one_seconds_count 1" in text

    def test_identical_samples_collapse_quantiles(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("same_seconds")
        for _ in range(32):
            histogram.observe(2.0)
        text = render_prometheus(registry.to_dict())
        for quantile in ("0.5", "0.95", "0.99"):
            assert f'sosae_same_seconds{{quantile="{quantile}"}} 2' in text
        assert "sosae_same_seconds_count 32" in text
        assert "sosae_same_seconds_sum 64" in text

    def test_merged_registry_summary_spans_both_shards(self):
        """A collector-merged registry's summary reflects the union of
        worker reservoirs, not either shard alone."""
        from repro.obs import MetricsRegistry as Registry

        low, high = Registry(), Registry()
        for value in (0.1, 0.1, 0.1):
            low.histogram("walk_seconds").observe(value)
        for value in (0.9, 0.9, 0.9):
            high.histogram("walk_seconds").observe(value)
        merged = Registry()
        merged.merge_state(low.state_dict())
        merged.merge_state(high.state_dict())
        text = render_prometheus(merged.to_dict())
        assert "sosae_walk_seconds_count 6" in text
        assert 'sosae_walk_seconds{quantile="0.5"}' in text
        assert 'sosae_walk_seconds{quantile="0.99"} 0.9' in text
        snapshot = merged.to_dict()["walk_seconds"]
        assert snapshot["min"] == pytest.approx(0.1)
        assert snapshot["max"] == pytest.approx(0.9)


class TestBoundedLabelValues:
    def test_top_k_keeps_the_heaviest_keys(self):
        weights = {"a": 1.0, "b": 5.0, "c": 3.0, "d": 2.0}
        mapping = bounded_label_values(weights, top=2)
        assert mapping == {"b": "b", "c": "c", "a": "other", "d": "other"}

    def test_ties_break_alphabetically(self):
        mapping = bounded_label_values({"z": 1.0, "a": 1.0, "m": 1.0}, top=2)
        assert mapping == {"a": "a", "m": "m", "z": "other"}

    def test_population_within_the_cap_is_untouched(self):
        weights = {"a": 1.0, "b": 2.0}
        assert bounded_label_values(weights, top=8) == {"a": "a", "b": "b"}

    def test_custom_overflow_value(self):
        mapping = bounded_label_values({"a": 2.0, "b": 1.0}, top=1,
                                       overflow="rest")
        assert mapping["b"] == "rest"

    def test_top_must_be_positive(self):
        with pytest.raises(ReproError, match=">= 1"):
            bounded_label_values({"a": 1.0}, top=0)
