"""Quickstart: evaluate a small architecture against two scenarios.

Walks through all four steps of the approach on a toy order-processing
system:

1. define an ontology and requirements-level scenarios (ScenarioML);
2. describe the architecture (components, connectors, links);
3. map ontology event types to components;
4. walk the scenarios through the architecture and read the report.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import (
    Architecture,
    Mapping,
    Ontology,
    Scenario,
    ScenarioSet,
    Sosae,
    TypedEvent,
    render_report,
)


def build_ontology() -> Ontology:
    """Step 1a: domain concepts and generalized, parameterized actions."""
    ontology = Ontology("shop-ontology")
    ontology.define_term("order", "A customer's request for goods.")
    ontology.define_instance_type("Actor")
    ontology.define_instance("Customer", "Actor")
    ontology.define_event_type(
        "submitOrder",
        "The customer submits an order for [item]",
        actor="Customer",
        parameters=["item"],
    )
    ontology.define_event_type(
        "chargeCard",
        "The system charges the customer's card",
        actor="System",
    )
    ontology.define_event_type(
        "persistOrder",
        "The system stores the order",
        actor="System",
    )
    ontology.define_event_type(
        "confirmOrder",
        "The system shows the order confirmation",
        actor="System",
    )
    ontology.validate()
    return ontology


def build_scenarios(ontology: Ontology) -> ScenarioSet:
    """Step 1b: scenarios written by instantiating the event types."""
    scenarios = ScenarioSet(ontology, name="shop")
    scenarios.add(
        Scenario(
            name="place-order",
            title="Place an order",
            events=(
                TypedEvent(
                    type_name="submitOrder",
                    arguments={"item": "a book"},
                    label="1",
                ),
                TypedEvent(type_name="chargeCard", label="2"),
                TypedEvent(type_name="persistOrder", label="3"),
                TypedEvent(type_name="confirmOrder", label="4"),
            ),
        )
    )
    scenarios.add(
        Scenario(
            name="browse-and-order",
            title="Browse, then order",
            events=(
                TypedEvent(
                    type_name="submitOrder",
                    arguments={"item": "a lamp"},
                    label="1",
                ),
                TypedEvent(type_name="persistOrder", label="2"),
                TypedEvent(type_name="confirmOrder", label="3"),
            ),
        )
    )
    return scenarios


def build_architecture() -> Architecture:
    """Step 2: a three-tier structure with explicit links."""
    architecture = Architecture("shop-arch")
    architecture.add_component(
        "web-ui", responsibilities=("Interact with the customer",)
    )
    architecture.add_component(
        "order-service",
        responsibilities=("Validate and process orders",),
    )
    architecture.add_component(
        "payment-gateway", responsibilities=("Charge cards",)
    )
    architecture.add_component(
        "order-db", responsibilities=("Persist orders",)
    )
    architecture.add_connector("http")
    architecture.add_connector("backend-bus")
    architecture.link(("web-ui", "calls"), ("http", "in"))
    architecture.link(("http", "out"), ("order-service", "api"))
    architecture.link(("order-service", "calls"), ("backend-bus", "svc"))
    architecture.link(("backend-bus", "pay"), ("payment-gateway", "api"))
    architecture.link(("backend-bus", "db"), ("order-db", "api"))
    architecture.validate()
    return architecture


def build_mapping(ontology: Ontology, architecture: Architecture) -> Mapping:
    """Step 3: the many-to-many event-type -> component mapping."""
    mapping = Mapping(ontology, architecture)
    mapping.update(
        {
            "submitOrder": ["web-ui"],
            "chargeCard": ["order-service", "payment-gateway"],
            "persistOrder": ["order-service", "order-db"],
            "confirmOrder": ["web-ui"],
        }
    )
    return mapping


def main() -> None:
    ontology = build_ontology()
    scenarios = build_scenarios(ontology)
    architecture = build_architecture()
    mapping = build_mapping(ontology, architecture)

    print("The mapping table (paper Table 1 style):")
    print(mapping.table(scenarios).render())
    print()

    # Step 4: evaluate.
    report = Sosae(scenarios, architecture, mapping).evaluate()
    print(render_report(report))

    # Now seed a fault: cut the order service off from the database.
    faulty = architecture.clone("shop-arch-faulty")
    faulty.excise_links_between("backend-bus", "order-db")
    faulty_mapping = mapping.rebind(faulty)
    report = Sosae(scenarios, faulty, faulty_mapping).evaluate()
    print(render_report(report))
    assert not report.consistent
    print("The excised link broke both order scenarios, as expected.")


if __name__ == "__main__":
    main()
