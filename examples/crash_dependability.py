"""CRASH: evaluating dependability qualities by simulated execution.

Reproduces the paper's §4.2 analysis on the decentralized CRASH system:

* **availability** — the "Entity Availability" scenario shuts down the
  Police Department's Command and Control and checks whether the Fire
  Department learns about it. With a failure-detection mechanism the
  alert arrives (and is pushed to the Fire Department's Display); without
  one, silence — the architecture fails the availability requirement;
* **reliability** — the "Message Sequence" scenario sends two requests
  and checks arrival order. FIFO channels preserve it; a jittery
  non-FIFO network does not always;
* **security** — the negative "unauthorized access" scenario is blocked
  by the shipped architecture and succeeds (flagging insecurity) on a
  variant that links a rogue entity into the network.

Run with::

    python examples/crash_dependability.py
"""

from __future__ import annotations

from repro import (
    ChannelPolicy,
    DynamicEvaluator,
    RuntimeConfig,
    WalkthroughEngine,
    evaluate_negative_scenario,
)
from repro.systems.crash import (
    ENTITY_AVAILABILITY,
    MESSAGE_SEQUENCE,
    UNAUTHORIZED_ACCESS,
    build_crash,
    build_crash_mapping,
    display,
    insecure_crash_architecture,
)


def availability(crash) -> None:
    print("=== Availability: Entity Availability scenario ===")
    scenario = crash.scenarios.get(ENTITY_AVAILABILITY)
    print(scenario.render(crash.ontology))
    for detection in (True, False):
        evaluator = DynamicEvaluator(
            crash.architecture,
            crash.bindings,
            config=RuntimeConfig(
                policy=ChannelPolicy(latency=1.0, failure_detection=detection)
            ),
        )
        verdict = evaluator.evaluate(scenario, crash.scenarios)
        label = "with" if detection else "without"
        print(f"\n{label} failure detection: {verdict.render()}")
        if detection:
            alerted = verdict.trace.was_delivered(
                "availability-alert", display("Fire Department")
            )
            print(f"  operator display alerted: {alerted}")
    print()


def reliability(crash) -> None:
    print("=== Reliability: Message Sequence scenario ===")
    scenario = crash.scenarios.get(MESSAGE_SEQUENCE)
    print(scenario.render(crash.ontology))
    print()
    fifo = DynamicEvaluator(
        crash.architecture,
        crash.bindings,
        config=RuntimeConfig(policy=ChannelPolicy(latency=1.0, fifo=True)),
    ).evaluate(scenario, crash.scenarios)
    print(f"FIFO network:      {fifo.render()}")
    reordered = 0
    runs = 20
    for seed in range(runs):
        verdict = DynamicEvaluator(
            crash.architecture,
            crash.bindings,
            config=RuntimeConfig(
                policy=ChannelPolicy(latency=1.0, jitter=40.0, fifo=False),
                seed=seed,
            ),
        ).evaluate(scenario, crash.scenarios)
        if not verdict.passed:
            reordered += 1
    print(
        f"jittery non-FIFO network: order violated in {reordered}/{runs} runs"
    )
    print()


def security(crash) -> None:
    print("=== Security: negative unauthorized-access scenario ===")
    scenario = crash.scenarios.get(UNAUTHORIZED_ACCESS)
    print(scenario.render(crash.ontology))
    print()
    secure_engine = WalkthroughEngine(
        crash.architecture, crash.mapping, crash.options
    )
    verdict = evaluate_negative_scenario(
        secure_engine, scenario, crash.scenarios
    )
    print(f"shipped architecture:  {'secure' if verdict.passed else 'INSECURE'}")
    insecure = insecure_crash_architecture()
    insecure_engine = WalkthroughEngine(
        insecure, build_crash_mapping(crash.ontology, insecure), crash.options
    )
    verdict = evaluate_negative_scenario(
        insecure_engine, scenario, crash.scenarios
    )
    print(
        f"rogue-link variant:    {'secure' if verdict.passed else 'INSECURE'}"
    )
    for finding in verdict.all_inconsistencies():
        print(f"  ! {finding}")


def main() -> None:
    crash = build_crash()
    availability(crash)
    reliability(crash)
    security(crash)


if __name__ == "__main__":
    main()
