"""Evolution with traceability: localize what to re-evaluate.

The paper argues (§5) that the ontology-mediated mapping yields
traceability links that "assist developers in locating other artifacts
that also need modifications" when requirements or architecture evolve.

This script plays out one maintenance episode on PIMS:

1. the architecture evolves (the Data Access <-> Loader link disappears);
2. the structural diff names the touched elements;
3. the traceability matrix maps them back to the affected scenarios;
4. only those scenarios are re-walked — and the re-evaluation finds the
   same failure a full evaluation would, at a fraction of the work.

It then goes the other direction: a requirements change (a new scenario
reusing existing event types) needs *zero* new mapping links.

Run with::

    python examples/evolution_traceability.py
"""

from __future__ import annotations

from repro import Scenario, TypedEvent, WalkthroughEngine, diff_architectures
from repro.core.traceability import TraceabilityMatrix
from repro.systems.pims import build_pims


def main() -> None:
    pims = build_pims()
    matrix = TraceabilityMatrix(pims.scenarios, pims.mapping)

    print("Trace links (scenario x component):")
    print(matrix.render())
    print()

    # --- architecture evolved ------------------------------------------
    evolved = pims.excised_architecture()
    diff = diff_architectures(pims.architecture, evolved)
    print(f"architecture change: {diff.summary()}")
    impacted = matrix.impacted_scenarios(diff)
    print(
        f"impacted scenarios ({len(impacted)} of {len(pims.scenarios)}): "
        + ", ".join(impacted)
    )

    mapping = pims.mapping.rebind(evolved)
    engine = WalkthroughEngine(evolved, mapping, pims.options)
    print("re-evaluating only the impacted scenarios:")
    for name in impacted:
        verdict = engine.walk_scenario(pims.scenarios.get(name), pims.scenarios)
        print(f"  {'PASS' if verdict.passed else 'FAIL'} {name}")
    print()

    # --- requirements evolved ------------------------------------------
    print("requirements change: a new scenario reusing existing event types")
    new_scenario = Scenario(
        name="re-download-prices",
        title="Refresh share prices after a stale session",
        events=(
            TypedEvent(
                type_name="initiateFunction",
                arguments={"function": "refresh prices"},
                label="1",
            ),
            TypedEvent(type_name="downloadSharePrices", label="2"),
            TypedEvent(
                type_name="saveData",
                arguments={"data": "refreshed share prices"},
                label="3",
            ),
        ),
    )
    pims.scenarios.add(new_scenario)
    links_before = pims.mapping.link_count()
    # No mapping work needed: the event types are already mapped.
    assert pims.mapping.unmapped_event_types(pims.scenarios) == ()
    print(
        f"  mapping links before: {links_before}, after: "
        f"{pims.mapping.link_count()} (unchanged — the ontology absorbed "
        "the change)"
    )
    engine = WalkthroughEngine(pims.architecture, pims.mapping, pims.options)
    verdict = engine.walk_scenario(new_scenario, pims.scenarios)
    print(
        f"  new scenario on the intact architecture: "
        f"{'PASS' if verdict.passed else 'FAIL'}"
    )
    components = TraceabilityMatrix(
        pims.scenarios, pims.mapping
    ).impacted_components("re-download-prices")
    print(f"  components it traces to: {', '.join(components)}")


if __name__ == "__main__":
    main()
