"""Advanced analyses: ranking, implied scenarios, OWL, DOT, and MSC.

This example tours the library's extensions of the paper's §8 future
work, all on the built-in case studies:

1. rank PIMS scenarios so limited evaluation time goes to the most
   important ones (§3.2's open problem);
2. detect implied scenarios — behaviors the components' local views
   admit that no stakeholder scenario specifies;
3. export the CRASH ontology to OWL and read it back with the subtype
   reasoning intact (§8: "moving toward the use of the OWL web ontology
   language");
4. render the Fig. 8 mapping as Graphviz DOT;
5. execute a dependability scenario and display its message sequence
   chart.

Run with::

    python examples/advanced_analyses.py
"""

from __future__ import annotations

from repro.adl.dot import mapping_to_dot
from repro.core.dynamic import DynamicEvaluator
from repro.core.implied import detect_implied_scenarios
from repro.core.ranking import rank_scenarios
from repro.scenarioml.owl import parse_owl_xml, to_owl_xml
from repro.sim.msc import render_msc
from repro.sim.network import ChannelPolicy
from repro.sim.runtime import RuntimeConfig
from repro.systems.crash import (
    ENTITY_AVAILABILITY,
    FIRE_CC,
    POLICE_CC,
    build_crash,
    display,
)
from repro.systems.pims import build_pims


def ranking_demo(pims) -> None:
    print("=== 1. Scenario ranking (PIMS) ===")
    for position, score in enumerate(
        rank_scenarios(pims.scenarios, pims.mapping)[:5], start=1
    ):
        print(f"  {position}. {score}")
    print()


def implied_demo(pims) -> None:
    print("=== 2. Implied scenarios (PIMS) ===")
    report = detect_implied_scenarios(
        pims.scenarios, pims.mapping, max_length=3, limit=5
    )
    for implied in report.implied:
        print(f"  {implied.render()}")
    print(
        "  -> each chain is admitted by the components' local views but "
        "specified by no use case; take them back to the stakeholders."
    )
    print()


def owl_demo(crash) -> None:
    print("=== 3. OWL round trip (CRASH ontology) ===")
    document = to_owl_xml(crash.ontology)
    recovered = parse_owl_xml(document)
    police_class = recovered.instance(POLICE_CC).type_name
    print(f"  exported {len(document)} bytes of OWL RDF/XML")
    print(
        f"  after re-import: {POLICE_CC!r} is a {police_class!r}, "
        f"subclass of Entity: "
        f"{recovered.is_subclass_of(police_class, 'Entity')}"
    )
    print()


def dot_demo(crash) -> None:
    print("=== 4. Mapping as Graphviz DOT (CRASH, Fig. 8) ===")
    dot = mapping_to_dot(crash.mapping, crash.scenarios)
    edges = [line for line in dot.splitlines() if " -> " in line]
    print(f"  {len(edges)} mapping edges; first three:")
    for line in edges[:3]:
        print(f"   {line.strip()}")
    print("  (pipe `sosae dot crash --what mapping` into Graphviz)")
    print()


def msc_demo(crash) -> None:
    print("=== 5. Message sequence chart of the availability run ===")
    evaluator = DynamicEvaluator(
        crash.architecture,
        crash.bindings,
        config=RuntimeConfig(
            policy=ChannelPolicy(latency=1.0, failure_detection=True)
        ),
    )
    verdict = evaluator.evaluate(
        crash.scenarios.get(ENTITY_AVAILABILITY), crash.scenarios
    )
    chart = render_msc(
        verdict.trace,
        nodes=[
            FIRE_CC,
            "Inter-organization Network",
            POLICE_CC,
            display("Fire Department"),
        ],
    )
    print(chart)
    print(f"\n  verdict: {'PASS' if verdict.passed else 'FAIL'}")


def main() -> None:
    pims = build_pims()
    crash = build_crash()
    ranking_demo(pims)
    implied_demo(pims)
    owl_demo(crash)
    dot_demo(crash)
    msc_demo(crash)


if __name__ == "__main__":
    main()
