"""PIMS: detecting an inconsistency between requirements and architecture.

Reproduces the paper's §4.1 experiment end to end:

* the intact PIMS layered architecture is consistent with every scenario;
* after excising the link between the "Data Access" and "Loader"
  components, the "Create portfolio" walkthrough still succeeds while
  "Get the current prices of shares" fails at its fourth event — the
  downloaded prices can no longer flow Loader -> Data Access -> Data
  Repository to be saved (Fig. 4).

Run with::

    python examples/pims_inconsistency.py
"""

from __future__ import annotations

from repro import WalkthroughEngine
from repro.systems.pims import (
    CREATE_PORTFOLIO,
    GET_SHARE_PRICES,
    build_pims,
)


def main() -> None:
    pims = build_pims()

    print("PIMS scenarios (ScenarioML):")
    print(pims.scenarios.get(CREATE_PORTFOLIO).render(pims.ontology))
    print()
    print(pims.scenarios.get(GET_SHARE_PRICES).render(pims.ontology))
    print()

    print("Mapping between ontology event types and components (Table 1):")
    print(pims.mapping.table(pims.scenarios).render())
    print()

    print("=== Walkthrough on the intact architecture ===")
    engine = WalkthroughEngine(pims.architecture, pims.mapping, pims.options)
    for verdict in engine.walk_all(pims.scenarios):
        status = "PASS" if verdict.passed else "FAIL"
        print(f"  {status} {verdict.scenario}")
    print()

    print(
        "=== Walkthrough after excising the Data Access <-> Loader link ==="
    )
    excised = pims.excised_architecture()
    engine = WalkthroughEngine(excised, pims.mapping, pims.options)
    for verdict in engine.walk_all(pims.scenarios):
        status = "PASS" if verdict.passed else "FAIL"
        print(f"  {status} {verdict.scenario}")
    print()

    print("Failed walkthrough in detail (the paper's Fig. 4):")
    verdict = engine.walk_scenario(
        pims.scenarios.get(GET_SHARE_PRICES), pims.scenarios
    )
    print(verdict.render())


if __name__ == "__main__":
    main()
