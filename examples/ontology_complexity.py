"""Measure the ontology's mapping-complexity reduction.

The paper's §1 claim: "Without the ontology, each appearance of a scenario
element is linked individually to all relevant architecture elements; with
the ontology, the appearances are linked to its definition in the
ontology, and only that definition is linked to the architecture elements.
The more extensive the reuse of the ontology definitions in the scenarios,
the greater is the reduction in complexity."

This script sweeps the reuse skew of synthetic requirements and prints the
number of mapping links needed with and without the ontology, then reports
the same figures for the two case studies.

Run with::

    python examples/ontology_complexity.py
"""

from __future__ import annotations

from repro.scenarioml.query import reuse_factor
from repro.systems.crash import build_crash
from repro.systems.generators import SyntheticSpec, build_synthetic
from repro.systems.pims import build_pims


def main() -> None:
    print("Synthetic sweep: reuse skew vs mapping link counts")
    print(
        f"{'reuse skew':>10} {'reuse factor':>13} {'ontology links':>15} "
        f"{'direct links':>13} {'reduction':>10}"
    )
    for reuse in (0.0, 0.5, 1.0, 1.5, 2.0, 3.0):
        system = build_synthetic(
            SyntheticSpec(
                event_types=30,
                components=12,
                scenarios=40,
                events_per_scenario=10,
                reuse=reuse,
                seed=7,
            )
        )
        used = set()
        for scenario in system.scenarios:
            used.update(scenario.event_type_names())
        mediated = sum(
            len(system.mapping.components_for(name)) for name in used
        )
        direct = system.mapping.direct_link_count(system.scenarios)
        print(
            f"{reuse:>10.1f} "
            f"{reuse_factor(system.scenarios.scenarios):>13.2f} "
            f"{mediated:>15} {direct:>13} {direct / mediated:>9.1f}x"
        )

    print()
    print("Case studies:")
    pims = build_pims()
    crash = build_crash()
    for name, system in (("PIMS", pims), ("CRASH", crash)):
        reduction = system.mapping.complexity_reduction(system.scenarios)
        print(
            f"  {name}: ontology links={system.mapping.link_count()}, "
            f"direct links={system.mapping.direct_link_count(system.scenarios)}, "
            f"reduction={reduction:.1f}x"
        )


if __name__ == "__main__":
    main()
